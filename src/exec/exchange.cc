#include <condition_variable>
#include <deque>
#include <mutex>

#include "exec/parallel.h"
#include "exec/task_pool.h"
#include "obs/metrics.h"

namespace orq {

namespace {

/// Bounded N-producer / 1-consumer queue of row batches. Producers block
/// when the queue is full; the consumer blocks until a batch arrives or
/// every producer has finished. Cancel() (consumer abandoning the stream)
/// unblocks producers: their next Push returns false and they wind down.
/// The first producer error is latched and surfaces from Pop.
class BatchQueue {
 public:
  void Reset(int producers, size_t capacity) {
    std::lock_guard<std::mutex> lock(mu_);
    items_.clear();
    capacity_ = capacity;
    producers_left_ = producers;
    cancelled_ = false;
    status_ = Status::OK();
    batches_ = 0;
  }

  /// False when the consumer cancelled; the producer should stop draining.
  bool Push(std::vector<Row> rows) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [this] { return items_.size() < capacity_ || cancelled_; });
    if (cancelled_) return false;
    items_.push_back(std::move(rows));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// True with a batch in `out`, false at end of stream (all producers
  /// done, queue drained), or the first producer error.
  Result<bool> Pop(std::vector<Row>* out) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] {
      return !items_.empty() || producers_left_ == 0 || !status_.ok();
    });
    if (!status_.ok()) return status_;
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    ++batches_;
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  /// The producer's LAST touch of the queue. The notifies happen under the
  /// mutex deliberately: WaitAllDone's waiter may destroy this object as
  /// soon as it observes producers_left_ == 0, which it can only do after
  /// this thread releases mu_ — notifying first keeps the condition
  /// variables alive for the broadcast. (Notifying after unlock here is a
  /// use-after-free that corrupts the futex and hangs the whole gang.)
  void ProducerDone(const Status& status) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!status.ok() && status_.ok()) status_ = status;
    --producers_left_;
    not_empty_.notify_all();
    all_done_.notify_all();
  }

  void Cancel() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      cancelled_ = true;
    }
    not_full_.notify_all();
  }

  void WaitAllDone() {
    std::unique_lock<std::mutex> lock(mu_);
    all_done_.wait(lock, [this] { return producers_left_ == 0; });
  }

  int64_t batches() const {
    std::lock_guard<std::mutex> lock(mu_);
    return batches_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable not_full_, not_empty_, all_done_;
  std::deque<std::vector<Row>> items_;
  size_t capacity_ = 1;
  int producers_left_ = 0;
  bool cancelled_ = false;
  Status status_;
  int64_t batches_ = 0;
};

/// Re-serialization point above a parallel region: Open launches one pool
/// task per plan instance; each task drains its instance into the bounded
/// queue, and the consumer thread pulls batches out in arrival order.
/// Batch *contents* are deterministic as a bag (every instance computes a
/// disjoint morsel partition of the same subtree); arrival order is not,
/// which is why order-sensitive operators (Sort/Top, correlated Apply)
/// always sit above the exchange.
///
/// Workers execute with private ExecContexts. When the parent execution is
/// instrumented, each worker also gets private StatsCollector/
/// MetricsRegistry shards; CloseImpl — which runs on the consumer thread
/// strictly after every producer finished — merges shards and the workers'
/// rows_produced back into the parent context. That keeps the stats
/// invariant TotalRowsOut == rows_produced exact in parallel mode without
/// any atomics on operator hot paths.
class ExchangeOp : public PhysicalOp {
 public:
  ExchangeOp(std::vector<PhysicalOpPtr> instances,
             std::vector<SharedRegionStatePtr> shared,
             std::vector<ColumnId> layout)
      : shared_(std::move(shared)) {
    layout_ = std::move(layout);
    for (PhysicalOpPtr& instance : instances) {
      children_.push_back(std::move(instance));
    }
  }

  ~ExchangeOp() override {
    // A plan can be destroyed without Close after a mid-execution error
    // (ExecuteToVector does not close a plan whose Open failed). Producers
    // hold `this`, so wind them down before members are destroyed. The
    // parent context may already be gone here; Shutdown never touches it.
    Shutdown();
  }

  Status OpenImpl(ExecContext* ctx) override {
    const int instances = static_cast<int>(children_.size());
    if (ctx->pool == nullptr) {
      return Status::Internal("parallel plan executed without a task pool");
    }
    if (ctx->pool->num_threads() < instances) {
      // A gang smaller than the pool is fine (idle threads steal); a gang
      // larger than the pool could deadlock on the build barriers.
      return Status::Internal("exchange gang exceeds task pool size");
    }
    // Re-open without an intervening Close (Volcano rebind convention):
    // wind down the previous gang completely before resetting any state
    // it might still touch.
    Shutdown();
    for (const SharedRegionStatePtr& state : shared_) state->Reset();
    queue_.Reset(instances, /*capacity=*/4 * static_cast<size_t>(instances));
    staging_.clear();
    staging_pos_ = 0;
    parent_ctx_ = ctx;
    pool_ = ctx->pool;
    steals_at_open_ = pool_->steals();
    worker_rows_.assign(children_.size(), 0);
    const bool shard_instruments = ctx->instruments != nullptr;
    worker_stats_.clear();
    worker_metrics_.clear();
    if (shard_instruments) {
      worker_stats_.resize(children_.size());
      worker_metrics_.resize(children_.size());
    }
    worker_params_ = ctx->params;
    worker_batched_ = ctx->batched;
    worker_batch_size_ = ctx->batch_size;
    worker_morsel_rows_ = ctx->morsel_rows;
    worker_cancel_ = ctx->cancel;
    // Gang admission: concurrent queries may share this pool, and two
    // gangs splitting it deadlock on their build barriers. Holding the
    // slot for the gang's whole lifetime (released in Shutdown) keeps the
    // pool's deques single-gang. The wait polls the query's cancel token,
    // so a deadline fires even while parked behind another gang.
    ORQ_RETURN_IF_ERROR(pool_->AcquireGangSlot(ctx->cancel));
    running_ = true;
    for (size_t i = 0; i < children_.size(); ++i) {
      ctx->pool->Submit([this, i] { RunInstance(i); });
    }
    return Status::OK();
  }

  Result<bool> NextImpl(ExecContext*, Row* row) override {
    while (staging_pos_ >= staging_.size()) {
      staging_.clear();
      staging_pos_ = 0;
      ORQ_ASSIGN_OR_RETURN(bool more, queue_.Pop(&staging_));
      if (!more) return false;
    }
    *row = std::move(staging_[staging_pos_++]);
    return true;
  }

  Status NextBatchImpl(ExecContext*, RowBatch* out) override {
    while (!out->full()) {
      if (staging_pos_ >= staging_.size()) {
        staging_.clear();
        staging_pos_ = 0;
        ORQ_ASSIGN_OR_RETURN(bool more, queue_.Pop(&staging_));
        if (!more) break;
        continue;
      }
      out->PushRow() = std::move(staging_[staging_pos_++]);
    }
    return Status::OK();
  }

  void CloseImpl() override {
    Shutdown();
    staging_.clear();
    staging_pos_ = 0;
    if (parent_ctx_ != nullptr) {
      for (int64_t rows : worker_rows_) parent_ctx_->rows_produced += rows;
      if (parent_ctx_->instruments != nullptr) {
        if (StatsCollector* stats = parent_ctx_->instruments->stats) {
          for (const StatsCollector& shard : worker_stats_) {
            stats->MergeFrom(shard);
          }
        }
        if (MetricsRegistry* m = parent_ctx_->instruments->metrics) {
          for (const MetricsRegistry& shard : worker_metrics_) {
            m->MergeFrom(shard);
          }
          m->Add(MetricCounter::kExchangeBatches, queue_.batches());
          m->Add(MetricCounter::kTaskSteals,
                 pool_->steals() - steals_at_open_);
        }
      }
      parent_ctx_ = nullptr;
    }
    worker_rows_.assign(worker_rows_.size(), 0);
    worker_stats_.clear();
    worker_metrics_.clear();
    // Release the merged hash tables / morsel cursors now rather than at
    // plan destruction.
    for (const SharedRegionStatePtr& state : shared_) state->Reset();
  }

  std::string name() const override {
    return "Exchange(" + std::to_string(children_.size()) + ")";
  }

 private:
  /// Producer body, run on a pool thread. Drains instance `i` into the
  /// queue with a private context; always signals ProducerDone, carrying
  /// the first error. Build barriers inside the instance complete even
  /// when the consumer cancels, because deposits happen during Open —
  /// before any Push — so a cancelled gang still winds down cleanly.
  void RunInstance(size_t i) {
    ExecContext wctx;
    wctx.params = worker_params_;
    wctx.batched = worker_batched_;
    wctx.batch_size = worker_batch_size_;
    wctx.morsel_rows = worker_morsel_rows_;
    // Every producer polls the same token, so a deadline or cancel stops
    // the whole gang; the first failing worker's status surfaces from Pop.
    wctx.cancel = worker_cancel_;
    ExecInstruments winstruments;
    if (!worker_stats_.empty()) {
      winstruments.stats = &worker_stats_[i];
      winstruments.metrics = &worker_metrics_[i];
      wctx.instruments = &winstruments;
    }
    PhysicalOp* op = children_[i].get();
    Status status = op->Open(&wctx);
    if (status.ok()) {
      RowBatch batch(wctx.batch_size);
      while (true) {
        status = op->NextBatch(&wctx, &batch);
        if (!status.ok() || batch.empty()) break;
        std::vector<Row> rows;
        rows.reserve(batch.size());
        for (size_t r = 0; r < batch.size(); ++r) {
          rows.push_back(std::move(batch.row(r)));
        }
        if (!queue_.Push(std::move(rows))) break;  // consumer cancelled
      }
      op->Close();
    }
    worker_rows_[i] = wctx.rows_produced;
    queue_.ProducerDone(status);
  }

  /// Idempotent producer wind-down: cancel the queue so blocked Pushes
  /// return, then wait until every producer task has signalled done.
  void Shutdown() {
    if (!running_) return;
    queue_.Cancel();
    queue_.WaitAllDone();
    running_ = false;
    pool_->ReleaseGangSlot();
  }

  std::vector<SharedRegionStatePtr> shared_;
  BatchQueue queue_;
  bool running_ = false;
  ExecContext* parent_ctx_ = nullptr;
  TaskPool* pool_ = nullptr;
  int64_t steals_at_open_ = 0;
  /// Context snapshot workers copy (captured at Open on the consumer
  /// thread; read-only afterwards).
  std::unordered_map<ColumnId, Value> worker_params_;
  bool worker_batched_ = true;
  int worker_batch_size_ = kDefaultBatchRows;
  int worker_morsel_rows_ = kDefaultMorselRows;
  const CancelToken* worker_cancel_ = nullptr;
  /// Per-worker output (rows_produced) and instrumentation shards; slot i
  /// is written only by producer i, and read only after WaitAllDone.
  std::vector<int64_t> worker_rows_;
  std::vector<StatsCollector> worker_stats_;
  std::vector<MetricsRegistry> worker_metrics_;
  /// Consumer-side staging: the batch currently being handed out.
  std::vector<Row> staging_;
  size_t staging_pos_ = 0;
};

}  // namespace

PhysicalOpPtr MakeExchangeOp(std::vector<PhysicalOpPtr> instances,
                             std::vector<SharedRegionStatePtr> shared,
                             std::vector<ColumnId> layout) {
  return std::make_unique<ExchangeOp>(std::move(instances), std::move(shared),
                                      std::move(layout));
}

}  // namespace orq
