#include <atomic>

#include "exec/evaluator.h"
#include "exec/ops.h"
#include "exec/parallel.h"
#include "obs/metrics.h"

namespace orq {

namespace {

/// Atomic claim cursor shared by the N MorselScan instances of one table
/// scan. fetch_add partitions the row space into disjoint ranges with no
/// locks; the scan that claims past the end simply finishes.
class MorselSource final : public SharedRegionState {
 public:
  void Reset() override { next_.store(0, std::memory_order_relaxed); }

  /// Claims the next `morsel_rows` range; false when `total` is exhausted.
  bool Claim(size_t total, size_t morsel_rows, size_t* begin, size_t* end) {
    const size_t start =
        static_cast<size_t>(next_.fetch_add(static_cast<int64_t>(morsel_rows),
                                            std::memory_order_relaxed));
    if (start >= total) return false;
    *begin = start;
    *end = start + morsel_rows < total ? start + morsel_rows : total;
    return true;
  }

 private:
  std::atomic<int64_t> next_{0};
};

/// One worker's instance of a parallel table scan: claims morsels from the
/// shared source and emits their rows. The union of all instances is
/// exactly one full scan.
class MorselScanOp : public PhysicalOp {
 public:
  MorselScanOp(const Table* table, std::vector<int> ordinals,
               std::vector<ColumnId> layout, SharedRegionStatePtr source)
      : table_(table),
        ordinals_(std::move(ordinals)),
        source_(std::static_pointer_cast<MorselSource>(source)) {
    layout_ = std::move(layout);
  }

  Status OpenImpl(ExecContext* ctx) override {
    pos_ = 0;
    end_ = 0;
    morsel_rows_ = ctx->morsel_rows > 0
                       ? static_cast<size_t>(ctx->morsel_rows)
                       : static_cast<size_t>(kDefaultMorselRows);
    return Status::OK();
  }

  Result<bool> NextImpl(ExecContext*, Row* row) override {
    if (pos_ >= end_ && !ClaimMorsel()) return false;
    const Row& src = table_->rows()[pos_++];
    row->resize(ordinals_.size());
    for (size_t i = 0; i < ordinals_.size(); ++i) {
      (*row)[i] = src[ordinals_[i]];
    }
    return true;
  }

  Status NextBatchImpl(ExecContext*, RowBatch* batch) override {
    const std::vector<Row>& rows = table_->rows();
    const size_t width = ordinals_.size();
    while (!batch->full()) {
      if (pos_ >= end_ && !ClaimMorsel()) break;
      while (pos_ < end_ && !batch->full()) {
        const Row& src = rows[pos_++];
        Row& slot = batch->PushRow();
        slot.resize(width);
        for (size_t i = 0; i < width; ++i) {
          slot[i] = src[ordinals_[i]];
        }
      }
    }
    return Status::OK();
  }

  void CloseImpl() override {}
  std::string name() const override {
    return "MorselScan(" + table_->name() + ")";
  }

 private:
  bool ClaimMorsel() {
    if (!source_->Claim(table_->num_rows(), morsel_rows_, &pos_, &end_)) {
      return false;
    }
    if (MetricsRegistry* m = metrics()) {
      m->Add(MetricCounter::kMorselsClaimed, 1);
    }
    return true;
  }

  const Table* table_;
  std::vector<int> ordinals_;
  std::shared_ptr<MorselSource> source_;
  size_t pos_ = 0;
  size_t end_ = 0;
  size_t morsel_rows_ = kDefaultMorselRows;
};

class TableScanOp : public PhysicalOp {
 public:
  TableScanOp(const Table* table, std::vector<int> ordinals,
              std::vector<ColumnId> layout)
      : table_(table), ordinals_(std::move(ordinals)) {
    layout_ = std::move(layout);
    columnar_capable_ = true;
  }

  Status OpenImpl(ExecContext*) override {
    pos_ = 0;
    recorded_enc_ = false;
    return Status::OK();
  }

  Result<bool> NextImpl(ExecContext*, Row* row) override {
    if (pos_ >= table_->num_rows()) return false;
    const Row& src = table_->rows()[pos_++];
    row->resize(ordinals_.size());
    for (size_t i = 0; i < ordinals_.size(); ++i) {
      (*row)[i] = src[ordinals_[i]];
    }
    return true;
  }

  Status NextBatchImpl(ExecContext*, RowBatch* batch) override {
    const std::vector<Row>& rows = table_->rows();
    const size_t end = table_->num_rows();
    const size_t width = ordinals_.size();
    while (pos_ < end && !batch->full()) {
      const Row& src = rows[pos_++];
      Row& slot = batch->PushRow();
      slot.resize(width);
      for (size_t i = 0; i < width; ++i) {
        slot[i] = src[ordinals_[i]];
      }
    }
    return Status::OK();
  }

  /// Zero-copy columnar scan: each output column is a view into the
  /// table's columnar chunk cache, windowed at the current position. No
  /// per-row work at all — the batch is pointers plus a row count. Under
  /// an encoded table_encoding the views carry the chunk's physical form
  /// (dict codes / RLE runs) instead of decoding; downstream kernels
  /// decide per column whether to exploit or transparently decode it.
  Status NextColumnsImpl(ExecContext* ctx, ColumnBatch* batch) override {
    const size_t end = table_->num_rows();
    if (pos_ >= end) return Status::OK();
    const std::vector<Table::ColumnChunk>& chunks =
        table_->ColumnarChunks(ctx->table_encoding);
    if (!recorded_enc_) RecordEncodingShape(chunks);
    const uint32_t n = static_cast<uint32_t>(
        std::min(end - pos_, static_cast<size_t>(batch->capacity())));
    batch->ResizeCols(ordinals_.size());
    for (size_t i = 0; i < ordinals_.size(); ++i) {
      const Table::ColumnChunk& chunk = chunks[ordinals_[i]];
      ColumnVec& col = batch->col(i);
      if (chunk.mixed) {
        col.SetValuesView(chunk.type, chunk.vals.data() + pos_, n);
        continue;
      }
      if (chunk.encoding == ChunkEncoding::kDict) {
        col.SetDictView(chunk.type, chunk.codes.data() + pos_,
                        chunk.ints.data(), chunk.chars.data(),
                        chunk.offsets.data(), chunk.dict_hashes.data(),
                        static_cast<uint32_t>(chunk.dict_size()),
                        chunk.any_null ? chunk.nulls.data() + pos_ : nullptr,
                        n);
        continue;
      }
      if (chunk.encoding == ChunkEncoding::kRle) {
        col.SetRleView(chunk.type, chunk.ints.data(), chunk.doubles.data(),
                       chunk.chars.data(), chunk.offsets.data(),
                       chunk.run_ends.data(),
                       chunk.any_null ? chunk.nulls.data() : nullptr,
                       static_cast<uint32_t>(chunk.num_runs()),
                       static_cast<uint32_t>(pos_), n);
        continue;
      }
      const uint8_t* nulls =
          chunk.any_null ? chunk.nulls.data() + pos_ : nullptr;
      switch (chunk.type) {
        case DataType::kDouble:
          col.SetDoubleView(chunk.doubles.data() + pos_, nulls, n);
          break;
        case DataType::kString:
          col.SetStringView(chunk.chars.data(), chunk.offsets.data() + pos_,
                            nulls, n);
          break;
        default:
          col.SetIntView(chunk.type, chunk.ints.data() + pos_, nulls, n);
          break;
      }
    }
    batch->set_num_rows(n);
    pos_ += n;
    return Status::OK();
  }

  void CloseImpl() override {}
  std::string name() const override { return "TableScan(" + table_->name() + ")"; }

 private:
  /// Once per Open, on the first columnar pull: per-scan encoding shape
  /// into OpStats (the EXPLAIN ANALYZE `encoding=` line) and the global
  /// encoding.* counters for the chunks this scan serves.
  void RecordEncodingShape(const std::vector<Table::ColumnChunk>& chunks) {
    recorded_enc_ = true;
    int64_t dict_cols = 0, rle_cols = 0, plain_cols = 0;
    int64_t bytes = 0, dict_entries = 0, rle_runs = 0;
    for (int ordinal : ordinals_) {
      const Table::ColumnChunk& chunk = chunks[ordinal];
      bytes += static_cast<int64_t>(chunk.encoded_bytes);
      switch (chunk.encoding) {
        case ChunkEncoding::kDict:
          ++dict_cols;
          dict_entries += static_cast<int64_t>(chunk.dict_size());
          break;
        case ChunkEncoding::kRle:
          ++rle_cols;
          rle_runs += static_cast<int64_t>(chunk.num_runs());
          break;
        case ChunkEncoding::kPlain:
          ++plain_cols;
          break;
      }
    }
    RecordScanEncoding(dict_cols, rle_cols, plain_cols, bytes);
    if (MetricsRegistry* m = metrics()) {
      m->Add(MetricCounter::kEncodedChunks, dict_cols + rle_cols);
      m->Add(MetricCounter::kDictEntries, dict_entries);
      m->Add(MetricCounter::kEncodedBytes, bytes);
      m->Add(MetricCounter::kRleRuns, rle_runs);
    }
  }

  const Table* table_;
  std::vector<int> ordinals_;
  size_t pos_ = 0;
  bool recorded_enc_ = false;
};

class IndexSeekOp : public PhysicalOp {
 public:
  IndexSeekOp(const Table* table, const TableIndex* index,
              std::vector<ScalarExprPtr> key_exprs, std::vector<int> ordinals,
              std::vector<ColumnId> layout, ScalarExprPtr residual)
      : table_(table), index_(index), ordinals_(std::move(ordinals)) {
    layout_ = std::move(layout);
    for (ScalarExprPtr& e : key_exprs) {
      key_evals_.emplace_back(std::move(e), std::vector<ColumnId>{});
    }
    if (residual != nullptr) {
      residual_ = Evaluator(std::move(residual), layout_);
      has_residual_ = true;
    }
  }

  Status OpenImpl(ExecContext* ctx) override {
    matches_ = nullptr;
    pos_ = 0;
    Row key(key_evals_.size());
    for (size_t i = 0; i < key_evals_.size(); ++i) {
      Result<Value> v = key_evals_[i].Eval({}, ctx);
      if (!v.ok()) return v.status();
      if (v->is_null()) return Status::OK();  // NULL never matches
      key[i] = std::move(*v);
    }
    matches_ = index_->Lookup(key);
    return Status::OK();
  }

  Result<bool> NextImpl(ExecContext* ctx, Row* row) override {
    while (matches_ != nullptr && pos_ < matches_->size()) {
      const Row& src = table_->rows()[(*matches_)[pos_++]];
      row->resize(ordinals_.size());
      for (size_t i = 0; i < ordinals_.size(); ++i) {
        (*row)[i] = src[ordinals_[i]];
      }
      if (has_residual_) {
        ORQ_ASSIGN_OR_RETURN(bool keep, residual_.EvalPredicate(*row, ctx));
        if (!keep) continue;
      }
      return true;
    }
    return false;
  }

  void CloseImpl() override {}
  std::string name() const override {
    return "IndexSeek(" + table_->name() + ")";
  }

 private:
  const Table* table_;
  const TableIndex* index_;
  std::vector<int> ordinals_;
  std::vector<Evaluator> key_evals_;
  Evaluator residual_;
  bool has_residual_ = false;
  const std::vector<size_t>* matches_ = nullptr;
  size_t pos_ = 0;
};

class SingleRowOp : public PhysicalOp {
 public:
  SingleRowOp() = default;
  Status OpenImpl(ExecContext*) override {
    done_ = false;
    return Status::OK();
  }
  Result<bool> NextImpl(ExecContext*, Row* row) override {
    if (done_) return false;
    done_ = true;
    row->clear();
    return true;
  }
  void CloseImpl() override {}
  std::string name() const override { return "SingleRow"; }

 private:
  bool done_ = false;
};

class EmptyOp : public PhysicalOp {
 public:
  explicit EmptyOp(std::vector<ColumnId> layout) {
    layout_ = std::move(layout);
  }
  Status OpenImpl(ExecContext*) override { return Status::OK(); }
  Result<bool> NextImpl(ExecContext*, Row*) override { return false; }
  void CloseImpl() override {}
  std::string name() const override { return "Empty"; }
};

class SegmentScanOp : public PhysicalOp {
 public:
  explicit SegmentScanOp(std::vector<ColumnId> layout) {
    layout_ = std::move(layout);
  }
  Status OpenImpl(ExecContext* ctx) override {
    if (ctx->segment_stack.empty()) {
      return Status::Internal("SegmentScan outside SegmentApply");
    }
    segment_ = ctx->segment_stack.back();
    pos_ = 0;
    return Status::OK();
  }
  Result<bool> NextImpl(ExecContext*, Row* row) override {
    if (pos_ >= segment_->size()) return false;
    *row = (*segment_)[pos_++];
    return true;
  }
  Status NextBatchImpl(ExecContext*, RowBatch* batch) override {
    while (pos_ < segment_->size() && !batch->full()) {
      batch->PushRow() = (*segment_)[pos_++];
    }
    return Status::OK();
  }
  void CloseImpl() override {}
  std::string name() const override { return "SegmentScan"; }

 private:
  const std::vector<Row>* segment_ = nullptr;
  size_t pos_ = 0;
};

}  // namespace

PhysicalOpPtr MakeTableScan(const Table* table, std::vector<int> ordinals,
                            std::vector<ColumnId> layout) {
  return std::make_unique<TableScanOp>(table, std::move(ordinals),
                                       std::move(layout));
}

PhysicalOpPtr MakeIndexSeek(const Table* table, const TableIndex* index,
                            std::vector<ScalarExprPtr> key_exprs,
                            std::vector<int> ordinals,
                            std::vector<ColumnId> layout,
                            ScalarExprPtr residual) {
  return std::make_unique<IndexSeekOp>(table, index, std::move(key_exprs),
                                       std::move(ordinals), std::move(layout),
                                       std::move(residual));
}

PhysicalOpPtr MakeSingleRowOp() { return std::make_unique<SingleRowOp>(); }

PhysicalOpPtr MakeEmptyOp(std::vector<ColumnId> layout) {
  return std::make_unique<EmptyOp>(std::move(layout));
}

PhysicalOpPtr MakeSegmentScanOp(std::vector<ColumnId> layout) {
  return std::make_unique<SegmentScanOp>(std::move(layout));
}

SharedRegionStatePtr MakeMorselSource() {
  return std::make_shared<MorselSource>();
}

PhysicalOpPtr MakeMorselScan(const Table* table, std::vector<int> ordinals,
                             std::vector<ColumnId> layout,
                             SharedRegionStatePtr source) {
  return std::make_unique<MorselScanOp>(table, std::move(ordinals),
                                        std::move(layout), std::move(source));
}

}  // namespace orq
