#include "exec/exec.h"

#include "obs/metrics.h"
#include "obs/spans.h"

namespace orq {

Status PhysicalOp::OpenInstrumented(ExecContext* ctx) {
  const ExecInstruments& instruments = *ctx->instruments;
  instrumented_ = true;
  stats_ = instruments.stats != nullptr ? instruments.stats->StatsFor(this)
                                        : nullptr;
  metrics_ = instruments.metrics;
  spans_ = instruments.spans;
  open_start_nanos_ = ObsNowNanos();
  Status status = OpenImpl(ctx);
  if (stats_ != nullptr) {
    ++stats_->open_calls;
    stats_->wall_nanos += ObsNowNanos() - open_start_nanos_;
  }
  return status;
}

Result<bool> PhysicalOp::NextInstrumented(ExecContext* ctx, Row* row) {
  const int64_t start = ObsNowNanos();
  Result<bool> more = NextImpl(ctx, row);
  stats_->wall_nanos += ObsNowNanos() - start;
  ++stats_->next_calls;
  if (more.ok() && *more) {
    ++stats_->rows_out;
    ++ctx->rows_produced;
  }
  return more;
}

Status PhysicalOp::NextBatchInstrumented(ExecContext* ctx, RowBatch* batch) {
  const int64_t start = ObsNowNanos();
  Status status = ctx->columnar && columnar_capable_
                      ? FillFromColumnsImpl(ctx, batch)
                      : ctx->batched ? NextBatchImpl(ctx, batch)
                                     : FillFromNextImpl(ctx, batch);
  if (stats_ != nullptr) {
    stats_->wall_nanos += ObsNowNanos() - start;
    ++stats_->next_calls;
  }
  if (status.ok()) {
    const int64_t rows = static_cast<int64_t>(batch->size());
    ctx->rows_produced += rows;
    if (rows > 0) {
      // The terminal empty pull is excluded from fill accounting: every
      // stream ends with one, so counting it only dilutes the signal.
      const int64_t slots = static_cast<int64_t>(batch->capacity());
      if (stats_ != nullptr) {
        stats_->rows_out += rows;
        stats_->batch_slots += slots;
      }
      if (metrics_ != nullptr && slots > 0) {
        metrics_->Observe(MetricHistogram::kBatchFillPercent,
                          100 * rows / slots);
      }
    }
  }
  return status;
}

Status PhysicalOp::NextColumnsInstrumented(ExecContext* ctx,
                                           ColumnBatch* batch) {
  const int64_t start = ObsNowNanos();
  Status status = columnar_capable_ ? NextColumnsImpl(ctx, batch)
                                    : FillColumnsFromRows(ctx, batch);
  if (stats_ != nullptr) {
    stats_->wall_nanos += ObsNowNanos() - start;
    ++stats_->next_calls;
  }
  if (status.ok()) {
    const int64_t rows = static_cast<int64_t>(batch->selected());
    ctx->rows_produced += rows;
    if (rows > 0) {
      const int64_t slots = static_cast<int64_t>(batch->capacity());
      if (stats_ != nullptr) {
        stats_->rows_out += rows;
        stats_->batch_slots += slots;
        ++stats_->column_batches;
      }
      if (metrics_ != nullptr && slots > 0) {
        metrics_->Add(MetricCounter::kColumnBatches, 1);
        // batch_slots counts capacity while rows counts selected, so this
        // is the selection-vector density, not physical fill.
        metrics_->Observe(MetricHistogram::kSelVectorSelectivity,
                          100 * rows / slots);
      }
    }
  }
  return status;
}

Status PhysicalOp::FillColumnsFromRows(ExecContext* ctx, ColumnBatch* batch) {
  if (adapter_rows_ == nullptr) {
    adapter_rows_ = std::make_unique<RowBatch>(batch->capacity());
  }
  adapter_rows_->Clear();
  ORQ_RETURN_IF_ERROR(ctx->batched ? NextBatchImpl(ctx, adapter_rows_.get())
                                   : FillFromNextImpl(ctx, adapter_rows_.get()));
  const RowBatch& rows = *adapter_rows_;
  const uint32_t n = static_cast<uint32_t>(rows.size());
  batch->ResizeCols(layout_.size());
  for (size_t c = 0; c < layout_.size(); ++c) {
    ColumnVec& col = batch->col(c);
    // Pick the declared type from the first row's tag (the engine is
    // dynamically typed); AppendValue degrades to boxed on a later
    // mismatch, so a wrong guess costs performance, never correctness.
    DataType type = n > 0 ? rows.row(0)[c].type() : DataType::kInt64;
    col.StartBuild(type, n);
    for (uint32_t i = 0; i < n; ++i) col.AppendValue(rows.row(i)[c]);
    col.Seal();
  }
  batch->set_num_rows(n);
  return Status::OK();
}

Status PhysicalOp::FillFromColumnsImpl(ExecContext* ctx, RowBatch* batch) {
  if (adapter_cols_ == nullptr) {
    adapter_cols_ = std::make_unique<ColumnBatch>(
        static_cast<int>(batch->capacity()));
  }
  ColumnBatch& cols = *adapter_cols_;
  cols.Clear();
  ORQ_RETURN_IF_ERROR(NextColumnsImpl(ctx, &cols));
  const uint32_t m = cols.selected();
  if (m > 0 && stats_ != nullptr) ++stats_->column_batches;
  for (uint32_t j = 0; j < m; ++j) {
    cols.DecodeRow(cols.RowAt(j), &batch->PushRow());
  }
  return Status::OK();
}

void PhysicalOp::CloseInstrumented() {
  const int64_t start = ObsNowNanos();
  CloseImpl();
  const int64_t end = ObsNowNanos();
  if (stats_ != nullptr) {
    ++stats_->close_calls;
    stats_->wall_nanos += end - start;
  }
  if (spans_ != nullptr) spans_->AddOpSpan(this, open_start_nanos_, end);
}

Result<std::vector<Row>> ExecuteToVector(PhysicalOp* plan, ExecContext* ctx) {
  std::vector<Row> rows;
  ORQ_RETURN_IF_ERROR(plan->Open(ctx));
  RowBatch batch(ctx->batch_size);
  while (true) {
    Status status = plan->NextBatch(ctx, &batch);
    if (!status.ok()) {
      plan->Close();
      return status;
    }
    if (batch.empty()) break;
    for (size_t i = 0; i < batch.size(); ++i) {
      rows.push_back(std::move(batch.row(i)));
    }
  }
  plan->Close();
  return rows;
}

namespace {

void PrintRec(const PhysicalOp& op, const ColumnManager* columns, int indent,
              std::string* out) {
  out->append(indent * 2, ' ');
  out->append(op.name());
  out->append(" [");
  const std::vector<ColumnId>& layout = op.layout();
  for (size_t i = 0; i < layout.size(); ++i) {
    if (i > 0) out->append(", ");
    if (columns != nullptr) {
      out->append(columns->name(layout[i]));
      out->push_back('#');
    }
    out->append(std::to_string(layout[i]));
  }
  out->append("]\n");
  for (const PhysicalOp* child : op.children()) {
    PrintRec(*child, columns, indent + 1, out);
  }
}

}  // namespace

std::string PrintPhysicalPlan(const PhysicalOp& plan,
                              const ColumnManager* columns) {
  std::string out;
  PrintRec(plan, columns, 0, &out);
  return out;
}

}  // namespace orq
