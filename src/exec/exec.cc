#include "exec/exec.h"

namespace orq {

Result<std::vector<Row>> ExecuteToVector(PhysicalOp* plan, ExecContext* ctx) {
  std::vector<Row> rows;
  ORQ_RETURN_IF_ERROR(plan->Open(ctx));
  RowBatch batch(ctx->batch_size);
  while (true) {
    Status status = plan->NextBatch(ctx, &batch);
    if (!status.ok()) {
      plan->Close();
      return status;
    }
    if (batch.empty()) break;
    for (size_t i = 0; i < batch.size(); ++i) {
      rows.push_back(std::move(batch.row(i)));
    }
  }
  plan->Close();
  return rows;
}

namespace {

void PrintRec(const PhysicalOp& op, const ColumnManager* columns, int indent,
              std::string* out) {
  out->append(indent * 2, ' ');
  out->append(op.name());
  out->append(" [");
  const std::vector<ColumnId>& layout = op.layout();
  for (size_t i = 0; i < layout.size(); ++i) {
    if (i > 0) out->append(", ");
    if (columns != nullptr) {
      out->append(columns->name(layout[i]));
      out->push_back('#');
    }
    out->append(std::to_string(layout[i]));
  }
  out->append("]\n");
  for (const PhysicalOp* child : op.children()) {
    PrintRec(*child, columns, indent + 1, out);
  }
}

}  // namespace

std::string PrintPhysicalPlan(const PhysicalOp& plan,
                              const ColumnManager* columns) {
  std::string out;
  PrintRec(plan, columns, 0, &out);
  return out;
}

}  // namespace orq
