#include "exec/exec.h"

#include "obs/metrics.h"
#include "obs/spans.h"

namespace orq {

Status PhysicalOp::OpenInstrumented(ExecContext* ctx) {
  const ExecInstruments& instruments = *ctx->instruments;
  instrumented_ = true;
  stats_ = instruments.stats != nullptr ? instruments.stats->StatsFor(this)
                                        : nullptr;
  metrics_ = instruments.metrics;
  spans_ = instruments.spans;
  open_start_nanos_ = ObsNowNanos();
  Status status = OpenImpl(ctx);
  if (stats_ != nullptr) {
    ++stats_->open_calls;
    stats_->wall_nanos += ObsNowNanos() - open_start_nanos_;
  }
  return status;
}

Result<bool> PhysicalOp::NextInstrumented(ExecContext* ctx, Row* row) {
  const int64_t start = ObsNowNanos();
  Result<bool> more = NextImpl(ctx, row);
  stats_->wall_nanos += ObsNowNanos() - start;
  ++stats_->next_calls;
  if (more.ok() && *more) {
    ++stats_->rows_out;
    ++ctx->rows_produced;
  }
  return more;
}

Status PhysicalOp::NextBatchInstrumented(ExecContext* ctx, RowBatch* batch) {
  const int64_t start = ObsNowNanos();
  Status status = ctx->batched ? NextBatchImpl(ctx, batch)
                               : FillFromNextImpl(ctx, batch);
  if (stats_ != nullptr) {
    stats_->wall_nanos += ObsNowNanos() - start;
    ++stats_->next_calls;
  }
  if (status.ok()) {
    const int64_t rows = static_cast<int64_t>(batch->size());
    ctx->rows_produced += rows;
    if (rows > 0) {
      // The terminal empty pull is excluded from fill accounting: every
      // stream ends with one, so counting it only dilutes the signal.
      const int64_t slots = static_cast<int64_t>(batch->capacity());
      if (stats_ != nullptr) {
        stats_->rows_out += rows;
        stats_->batch_slots += slots;
      }
      if (metrics_ != nullptr && slots > 0) {
        metrics_->Observe(MetricHistogram::kBatchFillPercent,
                          100 * rows / slots);
      }
    }
  }
  return status;
}

void PhysicalOp::CloseInstrumented() {
  const int64_t start = ObsNowNanos();
  CloseImpl();
  const int64_t end = ObsNowNanos();
  if (stats_ != nullptr) {
    ++stats_->close_calls;
    stats_->wall_nanos += end - start;
  }
  if (spans_ != nullptr) spans_->AddOpSpan(this, open_start_nanos_, end);
}

Result<std::vector<Row>> ExecuteToVector(PhysicalOp* plan, ExecContext* ctx) {
  std::vector<Row> rows;
  ORQ_RETURN_IF_ERROR(plan->Open(ctx));
  RowBatch batch(ctx->batch_size);
  while (true) {
    Status status = plan->NextBatch(ctx, &batch);
    if (!status.ok()) {
      plan->Close();
      return status;
    }
    if (batch.empty()) break;
    for (size_t i = 0; i < batch.size(); ++i) {
      rows.push_back(std::move(batch.row(i)));
    }
  }
  plan->Close();
  return rows;
}

namespace {

void PrintRec(const PhysicalOp& op, const ColumnManager* columns, int indent,
              std::string* out) {
  out->append(indent * 2, ' ');
  out->append(op.name());
  out->append(" [");
  const std::vector<ColumnId>& layout = op.layout();
  for (size_t i = 0; i < layout.size(); ++i) {
    if (i > 0) out->append(", ");
    if (columns != nullptr) {
      out->append(columns->name(layout[i]));
      out->push_back('#');
    }
    out->append(std::to_string(layout[i]));
  }
  out->append("]\n");
  for (const PhysicalOp* child : op.children()) {
    PrintRec(*child, columns, indent + 1, out);
  }
}

}  // namespace

std::string PrintPhysicalPlan(const PhysicalOp& plan,
                              const ColumnManager* columns) {
  std::string out;
  PrintRec(plan, columns, 0, &out);
  return out;
}

}  // namespace orq
