#ifndef ORQ_EXEC_PACKED_KEY_H_
#define ORQ_EXEC_PACKED_KEY_H_

#include <cstddef>
#include <utility>

#include "common/value.h"

namespace orq {

/// A hash-table key with its hash precomputed at insertion time. Buckets
/// are compared hash-first, so the common miss rehashes nothing and the
/// full Value-by-Value comparison only runs on hash collisions.
struct PackedKey {
  Row values;
  size_t hash;

  explicit PackedKey(Row v) : values(std::move(v)), hash(RowHash{}(values)) {}
};

class ColumnBatch;

/// A columnar probe key: one physical row of a ColumnBatch viewed through
/// `num_keys` column slots, with its RowHash-compatible hash precomputed
/// column-wise (see HashCombineColumn in exec/vector_kernels.h). Lets the
/// columnar aggregate/join paths probe PackedKey tables without decoding
/// the key into a Row unless the probe actually inserts.
struct ColumnKeyRef {
  const ColumnBatch* batch;
  const int* slots;
  size_t num_keys;
  uint32_t row;
  size_t hash;
};

/// Transparent functors (C++20 heterogeneous lookup): probes pass a plain
/// scratch Row (or a ColumnKeyRef) to find(), so a lookup never constructs
/// a PackedKey — and therefore never copies key values — unless it
/// actually inserts.
struct PackedKeyHash {
  using is_transparent = void;
  size_t operator()(const PackedKey& k) const { return k.hash; }
  size_t operator()(const Row& r) const { return RowHash{}(r); }
  size_t operator()(const ColumnKeyRef& r) const { return r.hash; }
};

struct PackedKeyEq {
  using is_transparent = void;
  bool operator()(const PackedKey& a, const PackedKey& b) const {
    return a.hash == b.hash && RowGroupEq{}(a.values, b.values);
  }
  bool operator()(const PackedKey& a, const Row& b) const {
    return RowGroupEq{}(a.values, b);
  }
  bool operator()(const Row& a, const PackedKey& b) const {
    return RowGroupEq{}(a, b.values);
  }
  bool operator()(const PackedKey& a, const ColumnKeyRef& b) const;
  bool operator()(const ColumnKeyRef& a, const PackedKey& b) const {
    return operator()(b, a);
  }
};

}  // namespace orq

#endif  // ORQ_EXEC_PACKED_KEY_H_
