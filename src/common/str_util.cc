#include "common/str_util.h"

#include <cctype>

namespace orq {

bool EqualsIgnoreCase(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string ToLower(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = std::tolower(static_cast<unsigned char>(c));
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

namespace {

// Recursive matcher; pattern wildcards: '%' any run, '_' single char.
bool LikeMatchAt(const std::string& text, size_t ti,
                 const std::string& pattern, size_t pi) {
  while (pi < pattern.size()) {
    char pc = pattern[pi];
    if (pc == '%') {
      // Collapse consecutive '%'.
      while (pi < pattern.size() && pattern[pi] == '%') ++pi;
      if (pi == pattern.size()) return true;
      for (size_t k = ti; k <= text.size(); ++k) {
        if (LikeMatchAt(text, k, pattern, pi)) return true;
      }
      return false;
    }
    if (ti >= text.size()) return false;
    if (pc != '_' && pc != text[ti]) return false;
    ++ti;
    ++pi;
  }
  return ti == text.size();
}

}  // namespace

bool LikeMatch(const std::string& text, const std::string& pattern) {
  return LikeMatchAt(text, 0, pattern, 0);
}

}  // namespace orq
