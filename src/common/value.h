#ifndef ORQ_COMMON_VALUE_H_
#define ORQ_COMMON_VALUE_H_

#include <cmath>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace orq {

/// Scalar column types supported by the engine. Dates are stored as days
/// since 1970-01-01 (int32) — sufficient for TPC-H date arithmetic.
enum class DataType : uint8_t {
  kBool,
  kInt64,
  kDouble,
  kString,
  kDate,
};

std::string DataTypeName(DataType type);

/// Exact int64-vs-double comparison. Promoting the int64 to double (the
/// obvious implementation) is lossy above 2^53: it made Int64(2^53 + 1)
/// compare equal to Double(2^53) while the two hashed differently, an
/// equality/hash inconsistency that corrupts hash-join and GroupBy tables.
/// NaN sorts above every numeric so the order stays total. Inline (and
/// public) so the columnar compare kernels reproduce Value::SqlCompare
/// exactly without a per-element call.
inline int CompareInt64WithDouble(int64_t i, double d) {
  constexpr double kTwo63 = 9223372036854775808.0;  // 2^63, exactly
  if (std::isnan(d)) return -1;
  if (d >= kTwo63) return -1;
  if (d < -kTwo63) return 1;
  // In-range: truncation is exact, and the truncated value converts back
  // to double exactly (either |d| < 2^53, or d is integral already).
  int64_t t = static_cast<int64_t>(d);
  if (i != t) return i < t ? -1 : 1;
  double frac = d - static_cast<double>(t);
  if (frac > 0.0) return -1;
  if (frac < 0.0) return 1;
  return 0;
}

/// SqlCompare's double ordering: NaN above everything, NaNs equal,
/// -0.0 == 0.0.
inline int CompareDoubles(double a, double b) {
  bool a_nan = std::isnan(a), b_nan = std::isnan(b);
  if (a_nan || b_nan) {
    if (a_nan && b_nan) return 0;
    return a_nan ? 1 : -1;
  }
  if (a < b) return -1;
  if (a > b) return 1;
  return 0;  // covers -0.0 == 0.0
}

/// Returns true if the type participates in numeric arithmetic/promotion.
inline bool IsNumeric(DataType type) {
  return type == DataType::kInt64 || type == DataType::kDouble;
}

/// A nullable SQL scalar value: a type tag, a null flag, and storage.
///
/// Comparison helpers come in two flavors:
///   * SqlCompare — SQL semantics: NULL compared to anything is "unknown"
///     (represented as std::nullopt).
///   * TotalCompare — a total order used for sorting and grouping, where
///     NULL sorts first and two NULLs are equal (GROUP BY / DISTINCT
///     semantics).
class Value {
 public:
  /// A NULL of the given type.
  static Value Null(DataType type = DataType::kInt64) {
    Value v;
    v.type_ = type;
    v.null_ = true;
    return v;
  }
  static Value Bool(bool b) {
    Value v;
    v.type_ = DataType::kBool;
    v.null_ = false;
    v.int_ = b ? 1 : 0;
    return v;
  }
  static Value Int64(int64_t i) {
    Value v;
    v.type_ = DataType::kInt64;
    v.null_ = false;
    v.int_ = i;
    return v;
  }
  static Value Double(double d) {
    Value v;
    v.type_ = DataType::kDouble;
    v.null_ = false;
    v.double_ = d;
    return v;
  }
  static Value String(std::string s) {
    Value v;
    v.type_ = DataType::kString;
    v.null_ = false;
    v.string_ = std::move(s);
    return v;
  }
  /// A date from days since the 1970-01-01 epoch.
  static Value Date(int32_t days) {
    Value v;
    v.type_ = DataType::kDate;
    v.null_ = false;
    v.int_ = days;
    return v;
  }

  Value() : type_(DataType::kInt64), null_(true) {}

  DataType type() const { return type_; }
  bool is_null() const { return null_; }

  bool bool_value() const { return int_ != 0; }
  int64_t int64_value() const { return int_; }
  double double_value() const { return double_; }
  const std::string& string_value() const { return string_; }
  int32_t date_value() const { return static_cast<int32_t>(int_); }

  /// Numeric value as double (int64 promoted); callers must check type.
  double AsDouble() const {
    return type_ == DataType::kDouble ? double_ : static_cast<double>(int_);
  }

  /// SQL comparison: nullopt when either side is NULL, otherwise <0/0/>0.
  /// Numeric types compare after promotion; other types must match.
  std::optional<int> SqlCompare(const Value& other) const;

  /// Total order for sort/group: NULL < everything, NULL == NULL.
  int TotalCompare(const Value& other) const;

  /// Equality under grouping semantics (NULLs equal). Used by hash tables.
  bool GroupEquals(const Value& other) const {
    return TotalCompare(other) == 0;
  }

  /// Hash consistent with GroupEquals.
  size_t Hash() const;

  std::string ToString() const;

 private:
  DataType type_;
  bool null_;
  int64_t int_ = 0;       // kBool/kInt64/kDate payload
  double double_ = 0.0;   // kDouble payload
  std::string string_;    // kString payload
};

/// Rows are flat vectors of values; operators address them positionally.
using Row = std::vector<Value>;

/// Hash/equality functors for Row keys under grouping semantics.
struct RowHash {
  size_t operator()(const Row& row) const {
    size_t h = 0x9e3779b97f4a7c15ull;
    for (const Value& v : row) h = h * 1099511628211ull + v.Hash();
    return h;
  }
};
struct RowGroupEq {
  bool operator()(const Row& a, const Row& b) const {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (!a[i].GroupEquals(b[i])) return false;
    }
    return true;
  }
};

/// Parses "YYYY-MM-DD" into days since epoch; nullopt on malformed input.
std::optional<int32_t> ParseDate(const std::string& text);
/// Formats days since epoch as "YYYY-MM-DD".
std::string FormatDate(int32_t days);

std::string RowToString(const Row& row);

}  // namespace orq

#endif  // ORQ_COMMON_VALUE_H_
