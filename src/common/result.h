#ifndef ORQ_COMMON_RESULT_H_
#define ORQ_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "common/status.h"

namespace orq {

/// A value-or-error type: either holds a T or a non-OK Status.
/// Mirrors absl::StatusOr / arrow::Result in spirit.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (the common success path).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from an error Status.
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() & { return *value_; }
  const T& value() const& { return *value_; }
  T&& value() && { return std::move(*value_); }

  T& operator*() & { return *value_; }
  const T& operator*() const& { return *value_; }
  T* operator->() { return &*value_; }
  const T* operator->() const { return &*value_; }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace orq

/// Evaluates `rexpr` (a Result<T>), propagating errors; on success binds the
/// value to `lhs`. `lhs` may include a declaration, e.g.
///   ORQ_ASSIGN_OR_RETURN(auto plan, Optimize(tree));
#define ORQ_ASSIGN_OR_RETURN(lhs, rexpr)                       \
  ORQ_ASSIGN_OR_RETURN_IMPL_(                                  \
      ORQ_CONCAT_(_orq_result, __LINE__), lhs, rexpr)

#define ORQ_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                               \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

#define ORQ_CONCAT_(a, b) ORQ_CONCAT_IMPL_(a, b)
#define ORQ_CONCAT_IMPL_(a, b) a##b

#endif  // ORQ_COMMON_RESULT_H_
