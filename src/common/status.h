#ifndef ORQ_COMMON_STATUS_H_
#define ORQ_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace orq {

/// Error categories used across the library. The library does not throw
/// exceptions; every fallible operation returns a Status or Result<T>.
enum class StatusCode {
  kOk = 0,
  /// Malformed input: SQL syntax errors, binder errors, bad arguments.
  kInvalidArgument,
  /// A named entity (table, column, index) does not exist.
  kNotFound,
  /// A run-time error raised during query execution (e.g. division by
  /// zero).
  kRuntimeError,
  /// The Max1row guard tripped: a scalar subquery returned more than one
  /// row (paper section 2.4).
  kCardinalityViolation,
  /// The construct is recognized but not supported by this build.
  kUnsupported,
  /// An internal invariant was violated; indicates a bug in the library.
  kInternal,
  /// The query was cooperatively cancelled (client disconnect, server
  /// shutdown, explicit cancel request).
  kCancelled,
  /// The query's deadline elapsed before it finished (per-query timeout).
  kDeadlineExceeded,
  /// The server declined the request up front (admission queue full).
  kUnavailable,
};

/// Lightweight status object carrying an error code and message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status RuntimeError(std::string msg) {
    return Status(StatusCode::kRuntimeError, std::move(msg));
  }
  static Status CardinalityViolation(std::string msg) {
    return Status(StatusCode::kCardinalityViolation, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return CodeName(code_) + ": " + message_;
  }

  static std::string CodeName(StatusCode code) {
    switch (code) {
      case StatusCode::kOk: return "OK";
      case StatusCode::kInvalidArgument: return "InvalidArgument";
      case StatusCode::kNotFound: return "NotFound";
      case StatusCode::kRuntimeError: return "RuntimeError";
      case StatusCode::kCardinalityViolation: return "CardinalityViolation";
      case StatusCode::kUnsupported: return "Unsupported";
      case StatusCode::kInternal: return "Internal";
      case StatusCode::kCancelled: return "Cancelled";
      case StatusCode::kDeadlineExceeded: return "DeadlineExceeded";
      case StatusCode::kUnavailable: return "Unavailable";
    }
    return "Unknown";
  }

 private:
  StatusCode code_;
  std::string message_;
};

}  // namespace orq

/// Propagates a non-OK Status from the current function.
#define ORQ_RETURN_IF_ERROR(expr)                 \
  do {                                            \
    ::orq::Status _orq_status = (expr);           \
    if (!_orq_status.ok()) return _orq_status;    \
  } while (0)

#endif  // ORQ_COMMON_STATUS_H_
