#ifndef ORQ_COMMON_STR_UTIL_H_
#define ORQ_COMMON_STR_UTIL_H_

#include <string>
#include <vector>

namespace orq {

/// Case-insensitive ASCII string equality (SQL keywords, identifiers).
bool EqualsIgnoreCase(const std::string& a, const std::string& b);

/// Lower-cases ASCII characters.
std::string ToLower(const std::string& s);

/// Joins strings with a separator.
std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// SQL LIKE matching with '%' and '_' wildcards (case-sensitive, as SQL).
bool LikeMatch(const std::string& text, const std::string& pattern);

}  // namespace orq

#endif  // ORQ_COMMON_STR_UTIL_H_
