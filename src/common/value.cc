#include "common/value.h"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <functional>

namespace orq {

namespace {

constexpr double kTwo63 = 9223372036854775808.0;  // 2^63, exactly

}  // namespace

std::string DataTypeName(DataType type) {
  switch (type) {
    case DataType::kBool: return "bool";
    case DataType::kInt64: return "int64";
    case DataType::kDouble: return "double";
    case DataType::kString: return "string";
    case DataType::kDate: return "date";
  }
  return "?";
}

std::optional<int> Value::SqlCompare(const Value& other) const {
  if (null_ || other.null_) return std::nullopt;
  if (IsNumeric(type_) && IsNumeric(other.type_)) {
    if (type_ == DataType::kInt64 && other.type_ == DataType::kInt64) {
      if (int_ < other.int_) return -1;
      if (int_ > other.int_) return 1;
      return 0;
    }
    if (type_ == DataType::kInt64) {
      return CompareInt64WithDouble(int_, other.double_);
    }
    if (other.type_ == DataType::kInt64) {
      return -CompareInt64WithDouble(other.int_, double_);
    }
    return CompareDoubles(double_, other.double_);
  }
  // Non-numeric comparisons require identical types.
  if (type_ != other.type_) return std::nullopt;
  switch (type_) {
    case DataType::kBool:
    case DataType::kDate:
      if (int_ < other.int_) return -1;
      if (int_ > other.int_) return 1;
      return 0;
    case DataType::kString: {
      int c = string_.compare(other.string_);
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    default:
      return std::nullopt;
  }
}

int Value::TotalCompare(const Value& other) const {
  if (null_ && other.null_) return 0;
  if (null_) return -1;
  if (other.null_) return 1;
  std::optional<int> c = SqlCompare(other);
  if (c.has_value()) return *c;
  // Mixed incomparable types: order by type tag to keep the order total.
  return static_cast<int>(type_) < static_cast<int>(other.type_) ? -1 : 1;
}

size_t Value::Hash() const {
  if (null_) return 0x6e756c6cull;  // all NULLs hash alike (group semantics)
  switch (type_) {
    case DataType::kBool:
    case DataType::kDate:
      return std::hash<int64_t>()(int_);
    case DataType::kInt64: {
      // Hash int64 through double when the value is exactly representable
      // so that Int64(3) and Double(3.0) — which GroupEquals — hash alike.
      // (A non-representable int64 never GroupEquals any double, so the
      // integer fallback cannot disagree with the double path.) The range
      // guard matters: for values near INT64_MAX the round-trip cast is
      // out of range, i.e. undefined behavior, not just inexact.
      double d = static_cast<double>(int_);
      if (d >= -kTwo63 && d < kTwo63 && static_cast<int64_t>(d) == int_) {
        return std::hash<double>()(d);
      }
      return std::hash<int64_t>()(int_);
    }
    case DataType::kDouble: {
      double d = double_;
      if (d == 0.0) d = 0.0;  // -0.0 GroupEquals 0.0; hash must agree
      if (std::isnan(d)) return 0x7fff8e8eull;  // any NaN payload/sign
      return std::hash<double>()(d);
    }
    case DataType::kString:
      return std::hash<std::string>()(string_);
  }
  return 0;
}

std::string Value::ToString() const {
  if (null_) return "NULL";
  switch (type_) {
    case DataType::kBool: return int_ ? "true" : "false";
    case DataType::kInt64: return std::to_string(int_);
    case DataType::kDouble: {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%g", double_);
      return buf;
    }
    case DataType::kString: return string_;
    case DataType::kDate: return FormatDate(static_cast<int32_t>(int_));
  }
  return "?";
}

namespace {

bool IsLeapYear(int y) {
  return (y % 4 == 0 && y % 100 != 0) || y % 400 == 0;
}

const int kDaysInMonth[] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};

int DaysInMonth(int y, int m) {
  if (m == 2 && IsLeapYear(y)) return 29;
  return kDaysInMonth[m - 1];
}

}  // namespace

std::optional<int32_t> ParseDate(const std::string& text) {
  int y = 0, m = 0, d = 0;
  if (std::sscanf(text.c_str(), "%d-%d-%d", &y, &m, &d) != 3) {
    return std::nullopt;
  }
  if (m < 1 || m > 12 || d < 1 || d > DaysInMonth(y, m)) return std::nullopt;
  // Count days from 1970-01-01.
  int32_t days = 0;
  if (y >= 1970) {
    for (int yy = 1970; yy < y; ++yy) days += IsLeapYear(yy) ? 366 : 365;
  } else {
    for (int yy = y; yy < 1970; ++yy) days -= IsLeapYear(yy) ? 366 : 365;
  }
  for (int mm = 1; mm < m; ++mm) days += DaysInMonth(y, mm);
  days += d - 1;
  return days;
}

std::string FormatDate(int32_t days) {
  int y = 1970;
  while (true) {
    int len = IsLeapYear(y) ? 366 : 365;
    if (days >= len) {
      days -= len;
      ++y;
    } else if (days < 0) {
      --y;
      days += IsLeapYear(y) ? 366 : 365;
    } else {
      break;
    }
  }
  int m = 1;
  while (days >= DaysInMonth(y, m)) {
    days -= DaysInMonth(y, m);
    ++m;
  }
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", y, m, days + 1);
  return buf;
}

std::string RowToString(const Row& row) {
  std::string out = "[";
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out += ", ";
    out += row[i].ToString();
  }
  out += "]";
  return out;
}

}  // namespace orq
