#!/usr/bin/env bash
# Regenerates bench/baselines/BENCH_*.json — the perf-regression gate's
# reference numbers (see scripts/ci.sh and tools/bench_compare.cc).
#
# Run this ON THE MACHINE THAT RUNS CI after any intentional performance
# change, then commit the updated baselines alongside the change. Wall
# times only gate within a tolerance, but the baselines' exact
# result_rows/rows_produced are what pin query correctness and plan work.
#
#   $ scripts/refresh_bench_baselines.sh
set -euo pipefail
cd "$(dirname "$0")/.."

cmake --preset release >/dev/null
cmake --build --preset release -j "$(nproc)" >/dev/null

# A longer timing window than the CI smoke run: baseline wall numbers
# should be the stable ones.
MIN_TIME="${ORQ_BENCH_MIN_TIME:=0.05}"

for pair in \
    bench_fig1_strategies:BENCH_fig1.json \
    bench_fig8_suite:BENCH_fig8.json \
    bench_fig9_q2:BENCH_fig9_q2.json \
    bench_fig9_q17:BENCH_fig9_q17.json \
    bench_columnar:BENCH_columnar.json \
    bench_encoding:BENCH_encoding.json; do
  bench_bin="${pair%%:*}"
  out="bench/baselines/${pair##*:}"
  echo "=== ${bench_bin} -> ${out} ==="
  "build/bench/${bench_bin}" --benchmark_min_time="${MIN_TIME}" \
    --json "${out}" >/dev/null
  build/tools/json_check "${out}"
done

# The columnar baseline must itself clear the speedup gate ci.sh enforces
# (columnar >= 1.5x over batch on >= 2 workloads): fail here at refresh
# time rather than on the next CI run.
build/tools/bench_compare --speedup bench/baselines/BENCH_columnar.json
# Likewise the encoded-storage baseline: encoded chunks >= 1.2x over plain
# columnar on >= 1 dict-friendly aggregate workload.
build/tools/bench_compare --speedup bench/baselines/BENCH_encoding.json \
  --slow /plain/ --fast /encoded/ --min-ratio 1.2 --min-pairs 1

# Morsel-parallel baseline: the Figure 8 suite again, but with every engine
# running 4 worker threads. Row counts must stay identical to the serial
# runs; the wall numbers document real thread scaling on this machine.
echo "=== bench_fig8_suite --threads 4 -> bench/baselines/BENCH_parallel.json ==="
build/bench/bench_fig8_suite --benchmark_min_time="${MIN_TIME}" \
  --threads 4 --json bench/baselines/BENCH_parallel.json >/dev/null
build/tools/json_check bench/baselines/BENCH_parallel.json

# Server-path baseline: the load generator against a self-hosted server,
# same fixed seed and session count as the CI gate. Row counts are exact
# (serial engines, deterministic streams); qps and the latency percentiles
# document server throughput on this machine.
echo "=== orq_loadgen -> bench/baselines/BENCH_serve.json ==="
build/tools/orq_loadgen --sessions 4 --queries 25 --seed 20260806 \
  --json bench/baselines/BENCH_serve.json >/dev/null
build/tools/json_check bench/baselines/BENCH_serve.json

# Plan-cache baseline: the repeated-stream workload the CI cache gate
# runs, with the same distinct-query cycle. Row counts are exact; the
# wall number documents steady-state cached throughput.
echo "=== orq_loadgen --plan-cache -> bench/baselines/BENCH_cache.json ==="
build/tools/orq_loadgen --sessions 4 --queries 60 --seed 20260806 \
  --plan-cache --distinct 5 --min-hit-rate 90 \
  --json bench/baselines/BENCH_cache.json >/dev/null
build/tools/json_check bench/baselines/BENCH_cache.json

echo "baselines refreshed; review and commit bench/baselines/"
