#!/usr/bin/env bash
# Default CI gate: build + full test suite in Release, then again under
# ASan+UBSan (including the difftest differential smoke run). Any sanitizer
# report is fatal (-fno-sanitize-recover=all), so a green run means the
# whole suite — parser, normalizer, optimizer, executor, and 500 random
# dual-executed queries — is clean of address errors and UB.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc)"

echo "=== Release build + tests ==="
cmake --preset release >/dev/null
cmake --build --preset release -j "${JOBS}"
ctest --preset release -j "${JOBS}"

echo "=== Release bench smoke (--json pipeline) ==="
# One short run of every figure suite with the machine-readable report on,
# each validated through the strict JSON checker. Guards the BENCH_*.json
# baseline format without paying full benchmark time in CI.
BENCH_SMOKE_DIR=build/bench_smoke_json
mkdir -p "${BENCH_SMOKE_DIR}"
for bench_bin in build/bench/bench_*; do
  [ -x "${bench_bin}" ] || continue
  name="$(basename "${bench_bin}")"
  "${bench_bin}" --benchmark_min_time=0.001 \
    --json "${BENCH_SMOKE_DIR}/${name}.json" >/dev/null
  build/tools/json_check "${BENCH_SMOKE_DIR}/${name}.json"
done
# The morsel-parallel report: the Figure 8 suite with 4 worker threads.
build/bench/bench_fig8_suite --benchmark_min_time=0.001 --threads 4 \
  --json "${BENCH_SMOKE_DIR}/bench_fig8_suite_parallel.json" >/dev/null
build/tools/json_check "${BENCH_SMOKE_DIR}/bench_fig8_suite_parallel.json"

echo "=== Bench baseline gate ==="
# Compares the smoke-run reports against the checked-in baselines:
# result_rows/rows_produced must match exactly (a silent correctness or
# plan change), wall time may drift up to ORQ_BENCH_TOLERANCE. The default
# is deliberately loose — the smoke run uses tiny timing windows and CI
# machines are noisy; refresh baselines with
# scripts/refresh_bench_baselines.sh after intentional perf changes.
: "${ORQ_BENCH_TOLERANCE:=4.0}"
export ORQ_BENCH_TOLERANCE
for pair in \
    bench_fig1_strategies:BENCH_fig1.json \
    bench_fig8_suite:BENCH_fig8.json \
    bench_fig9_q2:BENCH_fig9_q2.json \
    bench_fig9_q17:BENCH_fig9_q17.json \
    bench_columnar:BENCH_columnar.json \
    bench_encoding:BENCH_encoding.json; do
  bench_bin="${pair%%:*}"
  baseline="bench/baselines/${pair##*:}"
  build/tools/bench_compare "${baseline}" \
    "${BENCH_SMOKE_DIR}/${bench_bin}.json"
done

echo "=== Columnar speedup gate ==="
# The SoA engine must hold >=1.5x over row-batch execution on at least 2
# of the recorded workloads. Checked twice: against the checked-in
# baseline (the stable recorded numbers this PR ships) and against the
# fresh smoke run (the measured ratios are 2-10x, so even the short smoke
# window clears 1.5x with a wide margin).
build/tools/bench_compare --speedup bench/baselines/BENCH_columnar.json
build/tools/bench_compare --speedup "${BENCH_SMOKE_DIR}/bench_columnar.json"

echo "=== Encoded-storage speedup gate ==="
# Encoded chunks (dict/RLE under the auto heuristic) must hold >=1.2x over
# plain columnar chunks on at least one dict-friendly aggregate workload.
# Only the baseline is gated strictly; the fresh smoke run uses a timing
# window too short for a stable sub-1.5x ratio, so it rides the wall-time
# tolerance above instead.
build/tools/bench_compare --speedup bench/baselines/BENCH_encoding.json \
  --slow /plain/ --fast /encoded/ --min-ratio 1.2 --min-pairs 1
# Parallel gate: the 4-thread Figure 8 run must keep the exact row counts
# the serial engine produces (any drift is a parallel-correctness bug, not
# noise) and stay within the wall tolerance of its own parallel baseline.
build/tools/bench_compare bench/baselines/BENCH_parallel.json \
  "${BENCH_SMOKE_DIR}/bench_fig8_suite_parallel.json"

echo "=== orq_profile smoke (Chrome trace export) ==="
build/tools/orq_profile --tpch Q2 --sf 0.002 \
  --out build/profile_smoke_trace.json >/dev/null
build/tools/json_check build/profile_smoke_trace.json

echo "=== Server smoke (orq_serve + orq_client over TCP) ==="
# Boots the daemon on an ephemeral port, drives it with the client CLI
# (ping, a query, a SET, the metrics admin command), and shuts it down
# with SIGTERM. Guards the wire protocol and server lifecycle end-to-end,
# from a different process than the in-binary server tests.
SERVE_PORT_FILE=build/ci_serve.port
rm -f "${SERVE_PORT_FILE}"
build/tools/orq_serve --port 0 --port-file "${SERVE_PORT_FILE}" \
  --catalog difftest --seed 20260806 >build/ci_serve.log 2>&1 &
SERVE_PID=$!
for _ in $(seq 1 100); do
  [ -s "${SERVE_PORT_FILE}" ] && break
  sleep 0.1
done
[ -s "${SERVE_PORT_FILE}" ] || { cat build/ci_serve.log; exit 1; }
SERVE_PORT="$(cat "${SERVE_PORT_FILE}")"
build/tools/orq_client --port "${SERVE_PORT}" --ping >/dev/null
build/tools/orq_client --port "${SERVE_PORT}" \
  --sql "SELECT COUNT(*) FROM nation" >/dev/null
build/tools/orq_client --port "${SERVE_PORT}" --set "timeout_ms 1000" \
  --sql "SELECT n_name FROM nation ORDER BY n_name" >/dev/null
build/tools/orq_client --port "${SERVE_PORT}" --admin metrics \
  | grep -q "^server.sessions_active"
kill -TERM "${SERVE_PID}"
wait "${SERVE_PID}"

echo "=== Observability scrape smoke (query store + /metrics) ==="
# Boots the daemon with the Prometheus listener on, runs three queries,
# then asserts every observability surface agrees: \metrics json and
# \history parse as strict JSON, the history lists exactly the three
# queries, and the scraped /metrics text reports queries_ok == 3.
OBS_PORT_FILE=build/ci_obs_serve.port
OBS_METRICS_PORT_FILE=build/ci_obs_serve.metrics_port
rm -f "${OBS_PORT_FILE}" "${OBS_METRICS_PORT_FILE}"
build/tools/orq_serve --port 0 --port-file "${OBS_PORT_FILE}" \
  --metrics-port 0 --metrics-port-file "${OBS_METRICS_PORT_FILE}" \
  --catalog difftest --seed 20260806 >build/ci_obs_serve.log 2>&1 &
OBS_PID=$!
for _ in $(seq 1 100); do
  [ -s "${OBS_PORT_FILE}" ] && [ -s "${OBS_METRICS_PORT_FILE}" ] && break
  sleep 0.1
done
[ -s "${OBS_METRICS_PORT_FILE}" ] || { cat build/ci_obs_serve.log; exit 1; }
OBS_PORT="$(cat "${OBS_PORT_FILE}")"
OBS_METRICS_PORT="$(cat "${OBS_METRICS_PORT_FILE}")"
build/tools/orq_client --port "${OBS_PORT}" \
  --sql "SELECT COUNT(*) FROM nation" \
  --sql "SELECT COUNT(*) FROM part" \
  --sql "SELECT n_name FROM nation ORDER BY n_name" >/dev/null
build/tools/orq_client --port "${OBS_PORT}" --admin "metrics json" \
  >build/ci_obs_metrics.json
build/tools/json_check build/ci_obs_metrics.json
build/tools/orq_client --port "${OBS_PORT}" --admin "history 10" \
  >build/ci_obs_history.json
build/tools/json_check build/ci_obs_history.json
# The JSON is a single physical line, so count matches, not lines.
HISTORY_COUNT="$(grep -o '"query_id"' build/ci_obs_history.json | wc -l)" \
  || HISTORY_COUNT=0
[ "${HISTORY_COUNT}" -eq 3 ] || {
  echo "history lists ${HISTORY_COUNT} queries, expected 3"
  cat build/ci_obs_history.json
  exit 1
}
build/tools/orq_client --port "${OBS_PORT}" --scrape "${OBS_METRICS_PORT}" \
  >build/ci_obs_scrape.txt
grep -q '^orq_server_queries_ok_total 3$' build/ci_obs_scrape.txt || {
  echo "scraped /metrics does not report queries_ok == 3"
  cat build/ci_obs_scrape.txt
  exit 1
}
kill -TERM "${OBS_PID}"
wait "${OBS_PID}"

echo "=== Load-generator smoke + serve bench gate ==="
# Self-hosted load run: deterministic per-session query streams against an
# in-process server. result_rows/rows_produced are exact (serial engines,
# fixed seed), so bench_compare pins server-path correctness the same way
# the figure suites pin the engine; qps/p50/p95/p99 ride along untyped.
build/tools/orq_loadgen --sessions 4 --queries 25 --seed 20260806 \
  --json build/BENCH_serve.json >/dev/null
build/tools/json_check build/BENCH_serve.json
build/tools/bench_compare bench/baselines/BENCH_serve.json \
  build/BENCH_serve.json

echo "=== Plan-cache load smoke + cache bench gate ==="
# Repeated-stream workload (each session cycles 5 distinct queries) with
# the server-side plan cache on: steady state must serve at least 90% of
# executions from cache, or the run fails. Row counts gate through
# bench_compare like every other BENCH_*.json, so a cache that changes
# results (not just speed) also fails here.
build/tools/orq_loadgen --sessions 4 --queries 60 --seed 20260806 \
  --plan-cache --distinct 5 --min-hit-rate 90 \
  --json build/BENCH_cache.json >/dev/null
build/tools/json_check build/BENCH_cache.json
build/tools/bench_compare bench/baselines/BENCH_cache.json \
  build/BENCH_cache.json
# Prepared-statement fast path: PREPARE warms the cache, so every EXECUTE
# must hit it.
build/tools/orq_loadgen --sessions 4 --queries 50 --seed 20260806 \
  --prepared --min-hit-rate 99 >/dev/null

echo "=== ASan+UBSan build + tests ==="
cmake --preset asan >/dev/null
cmake --build --preset asan -j "${JOBS}"
ctest --preset asan -j "${JOBS}"

if [ "${ORQ_CI_TSAN:-0}" = "1" ]; then
  echo "=== TSan build + parallel-execution tests ==="
  # Optional (TSan triples build time and ~10x's the parallel suite):
  # builds the thread-sanitized tree and runs exactly the tests that
  # exercise threaded code — the morsel-parallel engine suites plus the
  # engine re-entrancy, cancellation, and network-server tests.
  cmake --preset tsan >/dev/null
  cmake --build --preset tsan -j "${JOBS}"
  ctest --preset tsan -j "${JOBS}" \
    -R 'difftest_smoke_parallel|parallel_exec_test|batch_exec_test|engine_concurrency_test|cancel_test|server_smoke_test|query_store_test'
  echo "CI: all suites passed (release + asan/ubsan + tsan)."
else
  echo "CI: all suites passed (release + asan/ubsan); set ORQ_CI_TSAN=1 to add the TSan pass."
fi
