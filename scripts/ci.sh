#!/usr/bin/env bash
# Default CI gate: build + full test suite in Release, then again under
# ASan+UBSan (including the difftest differential smoke run). Any sanitizer
# report is fatal (-fno-sanitize-recover=all), so a green run means the
# whole suite — parser, normalizer, optimizer, executor, and 500 random
# dual-executed queries — is clean of address errors and UB.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc)"

echo "=== Release build + tests ==="
cmake --preset release >/dev/null
cmake --build --preset release -j "${JOBS}"
ctest --preset release -j "${JOBS}"

echo "=== Release bench smoke (--json pipeline) ==="
# One short run of every figure suite with the machine-readable report on,
# each validated through the strict JSON checker. Guards the BENCH_*.json
# baseline format without paying full benchmark time in CI.
BENCH_SMOKE_DIR=build/bench_smoke_json
mkdir -p "${BENCH_SMOKE_DIR}"
for bench_bin in build/bench/bench_*; do
  [ -x "${bench_bin}" ] || continue
  name="$(basename "${bench_bin}")"
  "${bench_bin}" --benchmark_min_time=0.001 \
    --json "${BENCH_SMOKE_DIR}/${name}.json" >/dev/null
  build/tools/json_check "${BENCH_SMOKE_DIR}/${name}.json"
done

echo "=== ASan+UBSan build + tests ==="
cmake --preset asan >/dev/null
cmake --build --preset asan -j "${JOBS}"
ctest --preset asan -j "${JOBS}"

echo "CI: all suites passed (release + asan/ubsan)."
