#!/usr/bin/env bash
# Default CI gate: build + full test suite in Release, then again under
# ASan+UBSan (including the difftest differential smoke run). Any sanitizer
# report is fatal (-fno-sanitize-recover=all), so a green run means the
# whole suite — parser, normalizer, optimizer, executor, and 500 random
# dual-executed queries — is clean of address errors and UB.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc)"

echo "=== Release build + tests ==="
cmake --preset release >/dev/null
cmake --build --preset release -j "${JOBS}"
ctest --preset release -j "${JOBS}"

echo "=== ASan+UBSan build + tests ==="
cmake --preset asan >/dev/null
cmake --build --preset asan -j "${JOBS}"
ctest --preset asan -j "${JOBS}"

echo "CI: all suites passed (release + asan/ubsan)."
