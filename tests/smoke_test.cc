// End-to-end smoke tests: tiny database, core query shapes through the full
// parse -> bind -> normalize -> optimize -> execute pipeline.
#include <gtest/gtest.h>

#include "engine/engine.h"
#include "tpch/tpch_gen.h"

namespace orq {
namespace {

class SmokeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Table* customer =
        *catalog_.CreateTable("customer", {{"c_custkey", DataType::kInt64, false},
                                           {"c_name", DataType::kString, false},
                                           {"c_nationkey", DataType::kInt64, false}});
    customer->SetPrimaryKey({0});
    ASSERT_TRUE(customer->Append({Value::Int64(1), Value::String("alice"),
                                  Value::Int64(10)}).ok());
    ASSERT_TRUE(customer->Append({Value::Int64(2), Value::String("bob"),
                                  Value::Int64(20)}).ok());
    ASSERT_TRUE(customer->Append({Value::Int64(3), Value::String("carol"),
                                  Value::Int64(10)}).ok());

    Table* orders =
        *catalog_.CreateTable("orders", {{"o_orderkey", DataType::kInt64, false},
                                         {"o_custkey", DataType::kInt64, false},
                                         {"o_totalprice", DataType::kDouble, false}});
    orders->SetPrimaryKey({0});
    ASSERT_TRUE(orders->Append({Value::Int64(100), Value::Int64(1),
                                Value::Double(50.0)}).ok());
    ASSERT_TRUE(orders->Append({Value::Int64(101), Value::Int64(1),
                                Value::Double(75.0)}).ok());
    ASSERT_TRUE(orders->Append({Value::Int64(102), Value::Int64(2),
                                Value::Double(10.0)}).ok());
    orders->BuildIndex({1});
  }

  QueryResult MustExecute(const std::string& sql) {
    QueryEngine engine(&catalog_);
    Result<QueryResult> result = engine.Execute(sql);
    EXPECT_TRUE(result.ok()) << sql << " -> " << result.status().ToString();
    return result.ok() ? *result : QueryResult{};
  }

  Catalog catalog_;
};

TEST_F(SmokeTest, SimpleScan) {
  QueryResult r = MustExecute("select c_custkey from customer");
  EXPECT_EQ(r.rows.size(), 3u);
}

TEST_F(SmokeTest, FilterAndProject) {
  QueryResult r = MustExecute(
      "select c_name from customer where c_nationkey = 10");
  EXPECT_EQ(r.rows.size(), 2u);
}

TEST_F(SmokeTest, JoinWhere) {
  QueryResult r = MustExecute(
      "select c_name, o_totalprice from customer, orders "
      "where o_custkey = c_custkey");
  EXPECT_EQ(r.rows.size(), 3u);
}

TEST_F(SmokeTest, VectorAggregate) {
  QueryResult r = MustExecute(
      "select c_nationkey, count(*) from customer group by c_nationkey "
      "order by c_nationkey");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].int64_value(), 10);
  EXPECT_EQ(r.rows[0][1].int64_value(), 2);
}

TEST_F(SmokeTest, ScalarAggregateOnEmptyInput) {
  QueryResult r = MustExecute(
      "select count(*), sum(o_totalprice) from orders where o_custkey = 99");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].int64_value(), 0);
  EXPECT_TRUE(r.rows[0][1].is_null());
}

TEST_F(SmokeTest, CorrelatedScalarSubquery) {
  // The paper's Q1 shape (section 1.1).
  QueryResult r = MustExecute(
      "select c_custkey from customer "
      "where 100 < (select sum(o_totalprice) from orders "
      "             where o_custkey = c_custkey)");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].int64_value(), 1);
}

TEST_F(SmokeTest, ExistsSubquery) {
  QueryResult r = MustExecute(
      "select c_name from customer where exists "
      "(select * from orders where o_custkey = c_custkey) order by c_name");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].string_value(), "alice");
  EXPECT_EQ(r.rows[1][0].string_value(), "bob");
}

TEST_F(SmokeTest, NotExistsSubquery) {
  QueryResult r = MustExecute(
      "select c_name from customer where not exists "
      "(select * from orders where o_custkey = c_custkey)");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].string_value(), "carol");
}

TEST_F(SmokeTest, InSubquery) {
  QueryResult r = MustExecute(
      "select c_name from customer where c_custkey in "
      "(select o_custkey from orders where o_totalprice > 40)");
  EXPECT_EQ(r.rows.size(), 1u);
}

TEST_F(SmokeTest, QuantifiedAll) {
  QueryResult r = MustExecute(
      "select c_custkey from customer where c_custkey > all "
      "(select o_custkey from orders)");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].int64_value(), 3);
}

TEST_F(SmokeTest, ScalarSubqueryInSelectList) {
  QueryResult r = MustExecute(
      "select c_name, (select sum(o_totalprice) from orders "
      "where o_custkey = c_custkey) as total from customer order by c_name");
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_DOUBLE_EQ(r.rows[0][1].double_value(), 125.0);
  EXPECT_TRUE(r.rows[2][1].is_null());  // carol has no orders
}

TEST_F(SmokeTest, OuterJoinFormulation) {
  // Dayal's strategy written directly (section 1.1) — must give the same
  // answer as the subquery form.
  QueryResult r = MustExecute(
      "select c_custkey from customer left outer join orders "
      "on o_custkey = c_custkey "
      "group by c_custkey having 100 < sum(o_totalprice)");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].int64_value(), 1);
}

TEST_F(SmokeTest, DerivedTableFormulation) {
  // Kim's strategy (section 1.1).
  QueryResult r = MustExecute(
      "select c_custkey from customer, "
      "(select o_custkey from orders group by o_custkey "
      " having 100 < sum(o_totalprice)) as aggresult "
      "where o_custkey = c_custkey");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].int64_value(), 1);
}

TEST_F(SmokeTest, UnionAll) {
  QueryResult r = MustExecute(
      "select c_custkey from customer union all "
      "select o_custkey from orders");
  EXPECT_EQ(r.rows.size(), 6u);
}

TEST_F(SmokeTest, TpchGeneratorWorks) {
  Catalog tpch;
  TpchGenOptions options;
  options.scale_factor = 0.001;
  ASSERT_TRUE(GenerateTpch(&tpch, options).ok());
  QueryEngine engine(&tpch);
  Result<QueryResult> r =
      engine.Execute("select count(*) from lineitem");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r->rows[0][0].int64_value(), 100);
}

}  // namespace
}  // namespace orq
