// Unit tests for ColumnSet algebra and expression utilities.
#include <gtest/gtest.h>

#include "algebra/expr_util.h"
#include "algebra/scalar_expr.h"

namespace orq {
namespace {

TEST(ColumnSetTest, NormalizesOnConstruction) {
  ColumnSet set({5, 1, 3, 1, 5});
  EXPECT_EQ(set.size(), 3u);
  EXPECT_EQ(set.ids(), (std::vector<ColumnId>{1, 3, 5}));
}

TEST(ColumnSetTest, MembershipAndSubset) {
  ColumnSet a{1, 2, 3};
  ColumnSet b{2, 3};
  EXPECT_TRUE(a.Contains(2));
  EXPECT_FALSE(a.Contains(9));
  EXPECT_TRUE(b.IsSubsetOf(a));
  EXPECT_FALSE(a.IsSubsetOf(b));
  EXPECT_TRUE(ColumnSet().IsSubsetOf(b));
}

TEST(ColumnSetTest, SetAlgebra) {
  ColumnSet a{1, 2, 3};
  ColumnSet b{3, 4};
  EXPECT_EQ(a.Union(b), (ColumnSet{1, 2, 3, 4}));
  EXPECT_EQ(a.Intersect(b), (ColumnSet{3}));
  EXPECT_EQ(a.Minus(b), (ColumnSet{1, 2}));
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(ColumnSet{7, 8}));
}

TEST(ColumnSetTest, AddRemove) {
  ColumnSet set;
  set.Add(5);
  set.Add(2);
  set.Add(5);
  EXPECT_EQ(set.size(), 2u);
  set.Remove(5);
  EXPECT_FALSE(set.Contains(5));
  set.Remove(99);  // no-op
  EXPECT_EQ(set.size(), 1u);
}

TEST(ColumnManagerTest, SequentialIds) {
  ColumnManager mgr;
  ColumnId a = mgr.NewColumn("a", DataType::kInt64, false);
  ColumnId b = mgr.NewColumn("b", DataType::kString, true);
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);
  EXPECT_EQ(mgr.name(b), "b");
  EXPECT_EQ(mgr.type(a), DataType::kInt64);
  EXPECT_FALSE(mgr.def(a).nullable);
}

TEST(ExprUtilTest, SplitConjunctsFlattensNestedAnds) {
  ScalarExprPtr e = MakeAnd2(
      MakeAnd2(LitBool(true), Eq(LitInt(1), LitInt(1))),
      MakeAnd2(Eq(LitInt(2), LitInt(2)), Eq(LitInt(3), LitInt(3))));
  // TRUE literals are dropped.
  EXPECT_EQ(SplitConjuncts(e).size(), 3u);
  EXPECT_TRUE(SplitConjuncts(TrueLiteral()).empty());
  EXPECT_TRUE(SplitConjuncts(nullptr).empty());
}

TEST(ExprUtilTest, MakeAndCollapsesTrivialCases) {
  EXPECT_TRUE(IsTrueLiteral(MakeAnd({})));
  ScalarExprPtr single = Eq(LitInt(1), LitInt(2));
  EXPECT_EQ(MakeAnd({single}), single);
}

TEST(ExprUtilTest, RemapColumnsRewritesOnlyMappedRefs) {
  ScalarExprPtr e = MakeAnd2(Eq(CRef(1, DataType::kInt64), LitInt(5)),
                             Eq(CRef(2, DataType::kInt64), LitInt(6)));
  ScalarExprPtr remapped = RemapColumns(e, {{1, 10}});
  ColumnSet refs;
  CollectColumnRefs(remapped, &refs);
  EXPECT_TRUE(refs.Contains(10));
  EXPECT_TRUE(refs.Contains(2));
  EXPECT_FALSE(refs.Contains(1));
  // The original tree is untouched (persistent rewriting).
  ColumnSet orig_refs;
  CollectColumnRefs(e, &orig_refs);
  EXPECT_TRUE(orig_refs.Contains(1));
}

TEST(ExprUtilTest, SubstituteColumnsInlinesExpressions) {
  ScalarExprPtr sum = MakeArith(ArithOp::kAdd, CRef(1, DataType::kInt64),
                                LitInt(1));
  ScalarExprPtr e =
      MakeCompare(CompareOp::kGt, CRef(7, DataType::kInt64), LitInt(0));
  ScalarExprPtr substituted = SubstituteColumns(e, {{7, sum}});
  EXPECT_EQ(substituted->children[0]->kind, ScalarKind::kArith);
}

TEST(ExprUtilTest, ScalarEqualsStructural) {
  ScalarExprPtr a = Eq(CRef(1, DataType::kInt64), LitInt(5));
  ScalarExprPtr b = Eq(CRef(1, DataType::kInt64), LitInt(5));
  ScalarExprPtr c = Eq(CRef(2, DataType::kInt64), LitInt(5));
  ScalarExprPtr d =
      MakeCompare(CompareOp::kNe, CRef(1, DataType::kInt64), LitInt(5));
  EXPECT_TRUE(ScalarEquals(a, b));
  EXPECT_FALSE(ScalarEquals(a, c));
  EXPECT_FALSE(ScalarEquals(a, d));
  EXPECT_EQ(ScalarHash(a), ScalarHash(b));
}

TEST(ExprUtilTest, ScalarToStringReadable) {
  ScalarExprPtr e = MakeAnd2(
      Eq(CRef(1, DataType::kInt64), LitInt(5)),
      MakeIsNull(CRef(2, DataType::kString)));
  std::string text = ScalarToString(e, nullptr);
  EXPECT_NE(text.find("#1"), std::string::npos);
  EXPECT_NE(text.find("AND"), std::string::npos);
  EXPECT_NE(text.find("IS NULL"), std::string::npos);
}

TEST(CompareOpTest, FlipAndNegate) {
  EXPECT_EQ(FlipCompare(CompareOp::kLt), CompareOp::kGt);
  EXPECT_EQ(FlipCompare(CompareOp::kEq), CompareOp::kEq);
  EXPECT_EQ(NegateCompare(CompareOp::kLt), CompareOp::kGe);
  EXPECT_EQ(NegateCompare(CompareOp::kEq), CompareOp::kNe);
  for (CompareOp op : {CompareOp::kEq, CompareOp::kNe, CompareOp::kLt,
                       CompareOp::kLe, CompareOp::kGt, CompareOp::kGe}) {
    EXPECT_EQ(NegateCompare(NegateCompare(op)), op);
    EXPECT_EQ(FlipCompare(FlipCompare(op)), op);
  }
}

}  // namespace
}  // namespace orq
