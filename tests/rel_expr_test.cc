// Unit tests for the logical operator representation: output-column
// contracts per operator and the tree cloning/remapping utilities that
// class-2 decorrelation and SegmentApply depend on.
#include <gtest/gtest.h>

#include <map>

#include "algebra/expr_util.h"
#include "algebra/props.h"
#include "catalog/catalog.h"

namespace orq {
namespace {

class RelExprTest : public ::testing::Test {
 protected:
  void SetUp() override {
    columns_ = std::make_shared<ColumnManager>();
    t_ = *catalog_.CreateTable("t", {{"a", DataType::kInt64, false},
                                     {"b", DataType::kInt64, true}});
    t_->SetPrimaryKey({0});
  }

  RelExprPtr Get(std::map<std::string, ColumnId>* ids) {
    std::vector<ColumnId> cols;
    for (const ColumnSpec& spec : t_->columns()) {
      ColumnId id = columns_->NewColumn(spec.name, spec.type, spec.nullable);
      cols.push_back(id);
      (*ids)[spec.name] = id;
    }
    return MakeGet(t_, std::move(cols));
  }

  Catalog catalog_;
  ColumnManagerPtr columns_;
  Table* t_ = nullptr;
};

TEST_F(RelExprTest, GetOutputsItsColumns) {
  std::map<std::string, ColumnId> t;
  RelExprPtr get = Get(&t);
  EXPECT_EQ(get->OutputColumns(),
            (std::vector<ColumnId>{t.at("a"), t.at("b")}));
}

TEST_F(RelExprTest, ProjectOutputsPassthroughThenItems) {
  std::map<std::string, ColumnId> t;
  RelExprPtr get = Get(&t);
  ColumnId computed = columns_->NewColumn("c", DataType::kInt64, true);
  RelExprPtr project = MakeProject(
      get,
      {ProjectItem{computed,
                   MakeArith(ArithOp::kAdd, CRef(*columns_, t.at("a")),
                             LitInt(1))}},
      ColumnSet{t.at("b")});
  EXPECT_EQ(project->OutputColumns(),
            (std::vector<ColumnId>{t.at("b"), computed}));
}

TEST_F(RelExprTest, SemiJoinOutputsLeftOnly) {
  std::map<std::string, ColumnId> l, r;
  RelExprPtr left = Get(&l);
  RelExprPtr right = Get(&r);
  RelExprPtr semi =
      MakeJoin(JoinKind::kLeftSemi, left, right, TrueLiteral());
  EXPECT_EQ(semi->OutputColumns(), left->OutputColumns());
  RelExprPtr inner =
      MakeJoin(JoinKind::kInner, left, right, TrueLiteral());
  EXPECT_EQ(inner->OutputColumns().size(), 4u);
}

TEST_F(RelExprTest, SemiApplyOutputsLeftOnly) {
  std::map<std::string, ColumnId> l, r;
  RelExprPtr left = Get(&l);
  RelExprPtr right = Get(&r);
  EXPECT_EQ(MakeApply(ApplyKind::kSemi, left, right)->OutputColumns(),
            left->OutputColumns());
  EXPECT_EQ(
      MakeApply(ApplyKind::kCross, left, right)->OutputColumns().size(),
      4u);
}

TEST_F(RelExprTest, GroupByOutputsGroupColsThenAggs) {
  std::map<std::string, ColumnId> t;
  RelExprPtr get = Get(&t);
  ColumnId sum = columns_->NewColumn("s", DataType::kInt64, true);
  RelExprPtr group = MakeGroupBy(
      get, ColumnSet{t.at("a")},
      {AggItem{AggFunc::kSum, CRef(*columns_, t.at("b")), sum, false}});
  EXPECT_EQ(group->OutputColumns(),
            (std::vector<ColumnId>{t.at("a"), sum}));
  RelExprPtr scalar = MakeScalarGroupBy(
      get, {AggItem{AggFunc::kSum, CRef(*columns_, t.at("b")), sum, false}});
  EXPECT_EQ(scalar->OutputColumns(), (std::vector<ColumnId>{sum}));
}

TEST_F(RelExprTest, SegmentApplyOutputsSegmentKeysThenInner) {
  std::map<std::string, ColumnId> t;
  RelExprPtr get = Get(&t);
  ColumnId s1 = columns_->NewColumn("s1a", DataType::kInt64, true);
  ColumnId s2 = columns_->NewColumn("s1b", DataType::kInt64, true);
  RelExprPtr inner = MakeSegmentRef({s1, s2});
  RelExprPtr sa = MakeSegmentApply(get, inner, ColumnSet{t.at("a")},
                                   {s1, s2});
  EXPECT_EQ(sa->OutputColumns(),
            (std::vector<ColumnId>{t.at("a"), s1, s2}));
}

TEST_F(RelExprTest, CloneRelTreeAllocatesFreshDefinedIds) {
  std::map<std::string, ColumnId> t;
  RelExprPtr get = Get(&t);
  RelExprPtr tree = MakeSelect(
      get, MakeCompare(CompareOp::kGt, CRef(*columns_, t.at("b")),
                       LitInt(3)));
  std::map<ColumnId, ColumnId> mapping;
  RelExprPtr clone = CloneRelTree(tree, columns_.get(), &mapping);
  // Every defined column got a fresh id...
  EXPECT_EQ(mapping.size(), 2u);
  for (const auto& [old_id, new_id] : mapping) {
    EXPECT_NE(old_id, new_id);
  }
  // ...and internal references were rewritten to the fresh ids.
  ColumnSet refs;
  CollectColumnRefs(clone->predicate, &refs);
  EXPECT_TRUE(refs.Contains(mapping.at(t.at("b"))));
  EXPECT_FALSE(refs.Contains(t.at("b")));
}

TEST_F(RelExprTest, CloneRelTreeLeavesFreeVariablesAlone) {
  std::map<std::string, ColumnId> t;
  RelExprPtr get = Get(&t);
  ColumnId outer_param = columns_->NewColumn("p", DataType::kInt64, false);
  RelExprPtr tree = MakeSelect(
      get, Eq(CRef(*columns_, t.at("a")),
              CRef(outer_param, DataType::kInt64)));
  std::map<ColumnId, ColumnId> mapping;
  RelExprPtr clone = CloneRelTree(tree, columns_.get(), &mapping);
  // The correlated parameter is not defined inside: it must survive.
  EXPECT_TRUE(FreeVariables(*clone).Contains(outer_param));
  EXPECT_EQ(mapping.count(outer_param), 0u);
}

TEST_F(RelExprTest, RemapRelTreeRewritesReferences) {
  std::map<std::string, ColumnId> t;
  RelExprPtr get = Get(&t);
  ColumnId param = columns_->NewColumn("p", DataType::kInt64, false);
  ColumnId new_param = columns_->NewColumn("p2", DataType::kInt64, false);
  RelExprPtr tree = MakeSelect(
      get,
      Eq(CRef(*columns_, t.at("a")), CRef(param, DataType::kInt64)));
  RelExprPtr remapped = RemapRelTree(tree, {{param, new_param}});
  EXPECT_TRUE(FreeVariables(*remapped).Contains(new_param));
  EXPECT_FALSE(FreeVariables(*remapped).Contains(param));
  // Original untouched.
  EXPECT_TRUE(FreeVariables(*tree).Contains(param));
}

TEST_F(RelExprTest, CloneWithChildrenSharesPayload) {
  std::map<std::string, ColumnId> t;
  RelExprPtr get = Get(&t);
  RelExprPtr select = MakeSelect(get, TrueLiteral());
  std::map<std::string, ColumnId> t2;
  RelExprPtr other = Get(&t2);
  RelExprPtr clone = CloneWithChildren(*select, {other});
  EXPECT_EQ(clone->predicate, select->predicate);
  EXPECT_EQ(clone->children[0], other);
  EXPECT_EQ(select->children[0], get);  // original intact
}

TEST_F(RelExprTest, AggNullOnEmptyClassification) {
  EXPECT_FALSE(AggNullOnEmpty(AggFunc::kCountStar));
  EXPECT_FALSE(AggNullOnEmpty(AggFunc::kCount));
  EXPECT_TRUE(AggNullOnEmpty(AggFunc::kSum));
  EXPECT_TRUE(AggNullOnEmpty(AggFunc::kMin));
  EXPECT_TRUE(AggNullOnEmpty(AggFunc::kMax));
  EXPECT_TRUE(AggNullOnEmpty(AggFunc::kMax1Row));
}

}  // namespace
}  // namespace orq
