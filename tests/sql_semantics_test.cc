// End-to-end SQL semantics tests: the NULL/three-valued-logic and
// empty-input corner cases the paper's rewrites must preserve, verified
// through the full engine (and therefore through decorrelation).
#include <gtest/gtest.h>

#include "engine/engine.h"

namespace orq {
namespace {

class SqlSemanticsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // t(k, v): v has NULLs.   s(w): contains a NULL.   empty(x): no rows.
    Table* t = *catalog_.CreateTable("t", {{"k", DataType::kInt64, false},
                                           {"v", DataType::kInt64, true}});
    t->SetPrimaryKey({0});
    ASSERT_TRUE(t->Append({Value::Int64(1), Value::Int64(10)}).ok());
    ASSERT_TRUE(t->Append({Value::Int64(2), Value::Null()}).ok());
    ASSERT_TRUE(t->Append({Value::Int64(3), Value::Int64(30)}).ok());

    Table* s = *catalog_.CreateTable("s", {{"w", DataType::kInt64, true}});
    ASSERT_TRUE(s->Append({Value::Int64(10)}).ok());
    ASSERT_TRUE(s->Append({Value::Null()}).ok());

    (void)*catalog_.CreateTable("empty", {{"x", DataType::kInt64, true}});
  }

  QueryResult Run(const std::string& sql) {
    QueryEngine engine(&catalog_);
    Result<QueryResult> result = engine.Execute(sql);
    EXPECT_TRUE(result.ok()) << sql << ": " << result.status().ToString();
    return result.ok() ? *result : QueryResult{};
  }

  Catalog catalog_;
};

TEST_F(SqlSemanticsTest, WhereDropsUnknown) {
  // v = 10 is unknown for the NULL row: only k=1 survives.
  EXPECT_EQ(Run("select k from t where v = 10").rows.size(), 1u);
  // NOT (v = 10) is also unknown for NULL: only k=3.
  EXPECT_EQ(Run("select k from t where not v = 10").rows.size(), 1u);
}

TEST_F(SqlSemanticsTest, InListWithNull) {
  // v in (10): k=1 only. v in (10, NULL): still only k=1 in WHERE context.
  EXPECT_EQ(Run("select k from t where v in (10, null)").rows.size(), 1u);
  // not in with NULL in the list filters everything (always unknown or
  // false).
  EXPECT_EQ(Run("select k from t where v not in (10, null)").rows.size(),
            0u);
}

TEST_F(SqlSemanticsTest, NotInSubqueryWithNullInResult) {
  // s contains NULL: x NOT IN s is never TRUE -> empty result. This is the
  // classic trap that the antijoin rewrite must preserve (section 2.4).
  EXPECT_EQ(Run("select k from t where k not in (select w from s)")
                .rows.size(),
            0u);
  // Against an empty subquery, NOT IN is TRUE for every row.
  EXPECT_EQ(Run("select k from t where k not in (select x from empty)")
                .rows.size(),
            3u);
}

TEST_F(SqlSemanticsTest, NotInWithNullProbeNeverPasses) {
  // The probe side carries the NULL this time: v NOT IN {10} is UNKNOWN
  // for the v=NULL row, so only k=3 (v=30) survives. The antijoin rewrite
  // must not let the NULL probe row slip through (a NULL on either side of
  // the anti-join comparison may not admit the outer row).
  EXPECT_EQ(Run("select k from t where v not in "
                "(select w from s where w is not null)")
                .rows.size(),
            1u);
  // Same probe against an empty set: NOT IN is TRUE for every row,
  // including the NULL probe.
  EXPECT_EQ(Run("select k from t where v not in (select x from empty)")
                .rows.size(),
            3u);
}

TEST_F(SqlSemanticsTest, NotExistsPassesWhereNotInDoesNot) {
  // Contrast with NOT IN: NOT EXISTS is purely two-valued. For the v=NULL
  // row the correlated comparison matches nothing, so NOT EXISTS is TRUE
  // and k=2 passes — as does k=3 (30 matches no w). Only k=1 matches.
  EXPECT_EQ(Run("select k from t where not exists "
                "(select * from s where s.w = t.v)")
                .rows.size(),
            2u);
}

TEST_F(SqlSemanticsTest, NotInCorrelatedWithNullsOnBothSides) {
  // Correlated NOT IN where both the probe (v) and the subquery rows (w)
  // carry NULLs. Subquery per outer row: {w : w IS NULL OR w >= v}.
  // k=1 (v=10):   {NULL, 10} -> 10 NOT IN: matches 10 -> FALSE -> drop.
  // k=2 (v=NULL): {NULL}     -> NULL NOT IN {NULL} -> UNKNOWN -> drop.
  // k=3 (v=30):   {NULL}     -> 30 NOT IN {NULL} -> UNKNOWN -> drop.
  // Every row drops, each for a different three-valued-logic reason.
  EXPECT_EQ(Run("select k from t where v not in "
                "(select w from s where s.w is null or s.w >= t.v)")
                .rows.size(),
            0u);
  // Flip to IN: only k=1 has a definite match.
  QueryResult in_result = Run(
      "select k from t where v in "
      "(select w from s where s.w is null or s.w >= t.v)");
  ASSERT_EQ(in_result.rows.size(), 1u);
  EXPECT_EQ(in_result.rows[0][0].int64_value(), 1);
}

TEST_F(SqlSemanticsTest, NotEqualAllIsNotInDual) {
  // x <> ALL (...) is exactly NOT IN: NULL in the subquery result poisons
  // every definite pass.
  EXPECT_EQ(Run("select k from t where k <> all (select w from s)")
                .rows.size(),
            0u);
  EXPECT_EQ(Run("select k from t where k <> all "
                "(select w from s where w is not null)")
                .rows.size(),
            3u);  // k values {1,2,3} never equal w=10
  EXPECT_EQ(Run("select k from t where v <> all "
                "(select w from s where w is not null)")
                .rows.size(),
            1u);  // v=10 fails, v=NULL unknown, v=30 passes
}

TEST_F(SqlSemanticsTest, InSubqueryMatchesThroughNull) {
  // k=1... v values {10, NULL, 30}; w values {10, NULL}.
  EXPECT_EQ(Run("select k from t where v in (select w from s)").rows.size(),
            1u);
}

TEST_F(SqlSemanticsTest, QuantifiedOverEmptyIsTrueForAll) {
  // > ALL over the empty set is TRUE for every row.
  EXPECT_EQ(
      Run("select k from t where v > all (select x from empty)").rows.size(),
      3u);
  // > ANY over the empty set is FALSE.
  EXPECT_EQ(
      Run("select k from t where v > any (select x from empty)").rows.size(),
      0u);
}

TEST_F(SqlSemanticsTest, QuantifiedWithNulls) {
  // v > ALL (select w from s): s contains NULL, so the comparison can
  // never be definitely true.
  EXPECT_EQ(Run("select k from t where v > all (select w from s)")
                .rows.size(),
            0u);
  // v > ANY: 30 > 10 is definitely true; NULL w contributes unknown.
  EXPECT_EQ(Run("select k from t where v > any (select w from s)")
                .rows.size(),
            1u);
}

TEST_F(SqlSemanticsTest, ScalarVsVectorAggregateOnEmpty) {
  // Section 1.1: scalar aggregation returns exactly one row on empty
  // input; vector aggregation returns none.
  QueryResult scalar = Run("select sum(x), count(*) from empty");
  ASSERT_EQ(scalar.rows.size(), 1u);
  EXPECT_TRUE(scalar.rows[0][0].is_null());
  EXPECT_EQ(scalar.rows[0][1].int64_value(), 0);

  QueryResult vector = Run("select x, sum(x) from empty group by x");
  EXPECT_EQ(vector.rows.size(), 0u);
}

TEST_F(SqlSemanticsTest, EmptyScalarSubqueryIsNull) {
  QueryResult result =
      Run("select k, (select x from empty) from t order by k");
  ASSERT_EQ(result.rows.size(), 3u);
  for (const Row& row : result.rows) EXPECT_TRUE(row[1].is_null());
}

TEST_F(SqlSemanticsTest, Max1rowErrorSurfacesThroughSql) {
  QueryEngine engine(&catalog_);
  // s has two rows: the scalar subquery must raise the run-time error.
  Result<QueryResult> result =
      engine.Execute("select k, (select w from s) from t");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCardinalityViolation);
}

TEST_F(SqlSemanticsTest, Max1rowCorrelatedCardinalityViolation) {
  // Correlated scalar subquery that returns two rows for the v=10 outer
  // row: the Max1row guard must raise kCardinalityViolation at run time —
  // through the Volcano Next chain and out of QueryEngine::Execute — and
  // must do so on the decorrelated plan as well as the literal Apply plan
  // (no silent truncation to the first row on either path).
  Table* dup = *catalog_.CreateTable("dup", {{"d", DataType::kInt64, true}});
  ASSERT_TRUE(dup->Append({Value::Int64(10)}).ok());
  ASSERT_TRUE(dup->Append({Value::Int64(10)}).ok());

  const std::string sql = "select k, (select d from dup where d = t.v) from t";
  QueryEngine full(&catalog_);
  Result<QueryResult> full_result = full.Execute(sql);
  ASSERT_FALSE(full_result.ok());
  EXPECT_EQ(full_result.status().code(), StatusCode::kCardinalityViolation);

  QueryEngine correlated(&catalog_, EngineOptions::CorrelatedOnly());
  Result<QueryResult> apply_result = correlated.Execute(sql);
  ASSERT_FALSE(apply_result.ok());
  EXPECT_EQ(apply_result.status().code(), StatusCode::kCardinalityViolation);

  // A key-pinned correlation stays within one row and must not error.
  Result<QueryResult> pinned =
      full.Execute("select k, (select v from t t2 where t2.k = t.k) from t");
  ASSERT_TRUE(pinned.ok()) << pinned.status().ToString();
  EXPECT_EQ(pinned->rows.size(), 3u);
}

TEST_F(SqlSemanticsTest, DivisionByZeroSurfaces) {
  QueryEngine engine(&catalog_);
  Result<QueryResult> result = engine.Execute("select k / 0 from t");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kRuntimeError);
}

TEST_F(SqlSemanticsTest, AvgIgnoresNullsAndHandlesAllNull) {
  QueryResult result = Run("select avg(v) from t");
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_DOUBLE_EQ(result.rows[0][0].double_value(), 20.0);  // (10+30)/2

  QueryResult all_null = Run("select avg(v) from t where v is null");
  ASSERT_EQ(all_null.rows.size(), 1u);
  EXPECT_TRUE(all_null.rows[0][0].is_null());
}

TEST_F(SqlSemanticsTest, CountDistinctIgnoresNulls) {
  QueryResult result = Run("select count(distinct w) from s");
  EXPECT_EQ(result.rows[0][0].int64_value(), 1);
}

TEST_F(SqlSemanticsTest, GroupByTreatsNullsAsOneGroup) {
  QueryResult result =
      Run("select v, count(*) from t group by v order by v");
  ASSERT_EQ(result.rows.size(), 3u);
  EXPECT_TRUE(result.rows[0][0].is_null());  // NULL group sorts first
  EXPECT_EQ(result.rows[0][1].int64_value(), 1);
}

TEST_F(SqlSemanticsTest, ExceptAllRespectsMultiplicity) {
  QueryResult result = Run(
      "select k from t union all select k from t "
      "except all select k from t");
  EXPECT_EQ(result.rows.size(), 3u);
}

TEST_F(SqlSemanticsTest, CaseWhenGuardsEvaluation) {
  // The guarded division must not run for k = 0 denominators.
  QueryResult result = Run(
      "select case when v is null then -1 else 100 / v end from t "
      "order by k");
  ASSERT_EQ(result.rows.size(), 3u);
  EXPECT_EQ(result.rows[0][0].int64_value(), 10);
  EXPECT_EQ(result.rows[1][0].int64_value(), -1);
}

TEST_F(SqlSemanticsTest, OuterJoinPadsAndCounts) {
  QueryResult result = Run(
      "select k, count(w) from t left outer join s on w = v "
      "group by k order by k");
  ASSERT_EQ(result.rows.size(), 3u);
  EXPECT_EQ(result.rows[0][1].int64_value(), 1);  // k=1 matches w=10
  EXPECT_EQ(result.rows[1][1].int64_value(), 0);  // k=2 unmatched
  EXPECT_EQ(result.rows[2][1].int64_value(), 0);  // k=3 unmatched
}

}  // namespace
}  // namespace orq
