// Tests for the differential-testing subsystem itself, plus minimized
// regression queries for the rewrite bugs the harness has found. Each
// regression test runs a query on the naive reference configuration and
// the full pipeline and requires identical bags — the exact oracle check
// that originally failed.
#include <gtest/gtest.h>

#include "difftest/dataset.h"
#include "difftest/harness.h"
#include "difftest/minimize.h"
#include "difftest/oracle.h"
#include "difftest/qgen.h"

namespace orq {
namespace {

class DifftestRegressionTest : public ::testing::Test {
 protected:
  void Check(uint64_t dataset_seed, const std::string& sql) {
    Catalog catalog;
    ASSERT_TRUE(BuildDifftestCatalog(&catalog, dataset_seed).ok());
    DualOracle oracle(&catalog);
    DualOutcome outcome = oracle.Run(sql);
    EXPECT_EQ(outcome.verdict, Verdict::kMatch)
        << VerdictName(outcome.verdict) << "\n"
        << outcome.detail << "\nnaive: " << outcome.naive_status.ToString()
        << "\nfull:  " << outcome.full_status.ToString();
  }
};

// Found by difftest (seed 20260806, query #348): GroupByPushBelowOuterJoin
// added every ON-predicate column to the pushed grouping. The range
// predicate on l_shipdate — merged into the outer join's ON clause by
// predicate pushdown — became a grouping key, so each outer row matched
// one group per distinct shipdate: counts came out per (orderkey,
// shipdate) and rows were duplicated.
TEST_F(DifftestRegressionTest, EagerAggregationMustNotGroupByRangeColumns) {
  Check(20260806,
        "select t2.l_extendedprice from lineitem t0 "
        "left outer join part t1 on t1.p_partkey = t0.l_partkey "
        "join lineitem t2 on t2.l_partkey = t1.p_partkey "
        "where t2.l_quantity <> (select count(q.l_quantity) from lineitem q "
        "where q.l_orderkey = t0.l_orderkey and q.l_shipdate < "
        "date '1997-03-15')");
}

// Found by difftest (seed 2, query #172): outer-join simplification
// derived null-rejection through a scalar aggregate's arguments. With no
// grouping (or non-key grouping), a NULL-padded row shares its group with
// real rows, min() skips its NULLs, and turning the outer join into an
// inner join wrongly dropped lineitem-less orders from avg().
TEST_F(DifftestRegressionTest, ScalarAggregateHavingMustKeepOuterJoin) {
  Check(2,
        "select avg(t1.o_orderkey) from customer t0 "
        "join orders t1 on t1.o_custkey = t0.c_custkey "
        "left outer join lineitem t2 on t2.l_orderkey = t1.o_orderkey "
        "having min(t2.l_quantity) < 100.0");
}

// Same shape with vector grouping on non-key columns: groups still mix
// padded and real rows, so the simplification must stay off.
TEST_F(DifftestRegressionTest, NonKeyGroupingMustKeepOuterJoin) {
  Check(2,
        "select t0.c_mktsegment, avg(t1.o_orderkey) from customer t0 "
        "join orders t1 on t1.o_custkey = t0.c_custkey "
        "left outer join lineitem t2 on t2.l_orderkey = t1.o_orderkey "
        "group by t0.c_mktsegment having min(t2.l_quantity) < 100.0");
}

// Control: grouping on the preserved side's key makes the aggregate-based
// derivation sound again, and both paths must still agree (the rewrite may
// or may not fire; the oracle only checks semantics).
TEST_F(DifftestRegressionTest, KeyGroupingStillAgrees) {
  Check(2,
        "select t1.o_orderkey, count(t2.l_linenumber) from customer t0 "
        "join orders t1 on t1.o_custkey = t0.c_custkey "
        "left outer join lineitem t2 on t2.l_orderkey = t1.o_orderkey "
        "group by t1.o_orderkey having min(t2.l_quantity) < 100.0");
}

TEST(DifftestHarnessTest, TinyRunIsCleanAndDeterministic) {
  HarnessOptions options;
  options.seed = 5;
  options.num_queries = 60;
  Result<HarnessReport> a = RunDifftest(options);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  EXPECT_TRUE(a->ok()) << a->Summary();
  EXPECT_EQ(a->executed, 60);

  // Same seed, same tally: the generator and dataset are deterministic.
  Result<HarnessReport> b = RunDifftest(options);
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(a->matches, b->matches);
  EXPECT_EQ(a->both_error, b->both_error);
  EXPECT_EQ(a->cardinality_tolerated, b->cardinality_tolerated);
}

TEST(DifftestQgenTest, RenderSkipsDisabledPieces) {
  QuerySpec spec;
  spec.base_table = "orders";
  spec.base_alias = "t0";
  spec.select_items.push_back({"t0.o_orderkey", true});
  spec.select_items.push_back({"t0.o_totalprice", false});
  spec.where.push_back({"t0.o_orderkey > 3", true});
  spec.where.push_back({"t0.o_custkey is null", false});
  spec.order_by.push_back({"t0.o_orderkey desc", false});
  EXPECT_EQ(RenderSql(spec),
            "select t0.o_orderkey from orders t0 where t0.o_orderkey > 3");
}

TEST(DifftestMinimizeTest, ShrinksToTheFaultyPieces) {
  // Synthetic bug: a query "diverges" iff its SQL mentions c_acctbal. The
  // minimizer must strip every removable piece and keep exactly the
  // conjunct (and one mandatory select item).
  QuerySpec spec;
  spec.base_table = "customer";
  spec.base_alias = "t0";
  spec.distinct = true;
  spec.select_items.push_back({"t0.c_custkey", true});
  spec.select_items.push_back({"t0.c_name", true});
  spec.joins.push_back(
      {false, "orders", "t1", "t1.o_custkey = t0.c_custkey", true});
  spec.where.push_back({"t0.c_custkey > 1", true});
  spec.where.push_back({"t0.c_acctbal > 0.0", true});
  spec.where.push_back({"t1.o_orderkey < 100", true});
  spec.order_by.push_back({"t0.c_custkey", true});

  int evals = 0;
  QuerySpec minimized = MinimizeDivergence(
      spec,
      [](const QuerySpec& candidate) {
        return RenderSql(candidate).find("c_acctbal") != std::string::npos;
      },
      &evals);

  // The first select item is dropped (the divergence doesn't need it); the
  // second survives only because a select list cannot be empty.
  EXPECT_EQ(RenderSql(minimized),
            "select t0.c_name from customer t0 where t0.c_acctbal > 0.0");
  EXPECT_GT(evals, 0);
}

TEST(DifftestOracleTest, CanonicalRowConflatesNumericsAndZeros) {
  Row a = {Value::Int64(5), Value::Double(-0.0), Value::Null()};
  Row b = {Value::Double(5.0), Value::Double(0.0), Value::Null()};
  EXPECT_EQ(CanonicalRow(a), CanonicalRow(b));
  Row c = {Value::Double(5.0000001)};
  EXPECT_NE(CanonicalRow({Value::Int64(5)}), CanonicalRow(c));
}

}  // namespace
}  // namespace orq
