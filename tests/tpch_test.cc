// Integration tests over generated TPC-H data: every evaluation query must
// run under every engine configuration and produce identical results —
// correctness of each rewrite and the paper's syntax-independence claim.
#include <algorithm>
#include <gtest/gtest.h>

#include "engine/engine.h"
#include "tpch/tpch_gen.h"
#include "tpch/tpch_queries.h"

namespace orq {
namespace {

Catalog* SharedTpch() {
  static Catalog* catalog = [] {
    auto* c = new Catalog();
    TpchGenOptions options;
    options.scale_factor = 0.005;
    Status s = GenerateTpch(c, options);
    if (!s.ok()) {
      ADD_FAILURE() << s.ToString();
    }
    return c;
  }();
  return catalog;
}

std::vector<std::string> Canonical(const QueryResult& result) {
  std::vector<std::string> rows;
  rows.reserve(result.rows.size());
  for (const Row& row : result.rows) {
    // Round doubles so plans that reassociate float additions agree.
    std::string line;
    for (const Value& v : row) {
      if (!v.is_null() && v.type() == DataType::kDouble) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.4f|", v.double_value());
        line += buf;
      } else {
        line += v.ToString() + "|";
      }
    }
    rows.push_back(std::move(line));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

class TpchQueryTest : public ::testing::TestWithParam<TpchQuery> {};

TEST_P(TpchQueryTest, AllConfigurationsAgree) {
  const TpchQuery& query = GetParam();
  Catalog* catalog = SharedTpch();

  QueryEngine reference(catalog, EngineOptions::Full());
  Result<QueryResult> expected = reference.Execute(query.sql);
  ASSERT_TRUE(expected.ok()) << query.id << ": "
                             << expected.status().ToString();
  std::vector<std::string> expected_rows = Canonical(*expected);

  struct NamedConfig {
    const char* name;
    EngineOptions options;
  };
  const NamedConfig configs[] = {
      {"correlated-only", EngineOptions::CorrelatedOnly()},
      {"no-groupby-opts", EngineOptions::NoGroupByOptimizations()},
      {"no-segment-apply", EngineOptions::NoSegmentApply()},
  };
  for (const NamedConfig& config : configs) {
    // Q18's IN-with-HAVING subquery is uncorrelated inside; the
    // correlated-only configuration re-aggregates all of lineitem per
    // outer row (minutes even at this scale). That gap *is* the paper's
    // point — it is measured in bench_fig8_suite, not re-verified here.
    if (query.id == "Q18" &&
        std::string(config.name) == "correlated-only") {
      continue;
    }
    QueryEngine engine(catalog, config.options);
    Result<QueryResult> actual = engine.Execute(query.sql);
    ASSERT_TRUE(actual.ok()) << query.id << " [" << config.name
                             << "]: " << actual.status().ToString();
    EXPECT_EQ(Canonical(*actual), expected_rows)
        << query.id << " differs under " << config.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Tpch, TpchQueryTest, ::testing::ValuesIn(TpchQuerySet()),
    [](const ::testing::TestParamInfo<TpchQuery>& info) {
      return info.param.id;
    });

TEST(TpchData, GeneratorIsDeterministic) {
  Catalog a, b;
  TpchGenOptions options;
  options.scale_factor = 0.001;
  options.build_indexes = false;
  ASSERT_TRUE(GenerateTpch(&a, options).ok());
  ASSERT_TRUE(GenerateTpch(&b, options).ok());
  for (const std::string& name : a.TableNames()) {
    Table* ta = a.FindTable(name);
    Table* tb = b.FindTable(name);
    ASSERT_EQ(ta->num_rows(), tb->num_rows()) << name;
    for (size_t i = 0; i < ta->num_rows(); ++i) {
      ASSERT_EQ(RowToString(ta->rows()[i]), RowToString(tb->rows()[i]))
          << name << " row " << i;
    }
  }
}

TEST(TpchData, ReferentialIntegrity) {
  Catalog* catalog = SharedTpch();
  QueryEngine engine(catalog);
  // Every order references an existing customer.
  Result<QueryResult> r = engine.Execute(
      "select count(*) from orders where o_custkey not in "
      "(select c_custkey from customer)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows[0][0].int64_value(), 0);
  // Every lineitem references an existing order.
  r = engine.Execute(
      "select count(*) from lineitem where l_orderkey not in "
      "(select o_orderkey from orders)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0].int64_value(), 0);
}

}  // namespace
}  // namespace orq
