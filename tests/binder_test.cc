// Unit tests for the binder: name resolution, scoping/correlation,
// aggregate handling, DISTINCT normalization, error reporting.
#include <gtest/gtest.h>

#include "algebra/props.h"
#include "catalog/catalog.h"
#include "sql/binder.h"
#include "sql/parser.h"

namespace orq {
namespace {

class BinderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Table* t = *catalog_.CreateTable("t", {{"a", DataType::kInt64, false},
                                           {"b", DataType::kString, true},
                                           {"c", DataType::kDouble, true}});
    t->SetPrimaryKey({0});
    Table* u = *catalog_.CreateTable("u", {{"a", DataType::kInt64, false},
                                           {"d", DataType::kInt64, true}});
    u->SetPrimaryKey({0});
  }

  Result<BoundQuery> Bind(const std::string& sql) {
    columns_ = std::make_shared<ColumnManager>();
    auto stmt = ParseSql(sql);
    if (!stmt.ok()) return stmt.status();
    Binder binder(&catalog_, columns_);
    return binder.Bind(**stmt);
  }

  Catalog catalog_;
  ColumnManagerPtr columns_;
};

TEST_F(BinderTest, ResolvesColumns) {
  auto bound = Bind("select a, b from t");
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  EXPECT_EQ(bound->output_names, (std::vector<std::string>{"a", "b"}));
}

TEST_F(BinderTest, UnknownColumnFails) {
  auto bound = Bind("select nope from t");
  EXPECT_FALSE(bound.ok());
  EXPECT_EQ(bound.status().code(), StatusCode::kNotFound);
}

TEST_F(BinderTest, UnknownTableFails) {
  EXPECT_FALSE(Bind("select 1 from nothere").ok());
}

TEST_F(BinderTest, AmbiguousColumnFails) {
  // Both t and u define column `a`.
  auto bound = Bind("select a from t, u");
  EXPECT_FALSE(bound.ok());
  EXPECT_EQ(bound.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(BinderTest, QualifierDisambiguates) {
  EXPECT_TRUE(Bind("select t.a, u.a from t, u").ok());
}

TEST_F(BinderTest, SelfJoinGetsDistinctColumnIds) {
  auto bound = Bind("select t1.a, t2.a from t t1, t t2");
  ASSERT_TRUE(bound.ok());
  EXPECT_NE(bound->output_cols[0], bound->output_cols[1]);
  // The two Get instances must not share ids.
  const RelExpr* join = bound->root.get();
  while (join->kind != RelKind::kJoin) join = join->children[0].get();
  EXPECT_NE(join->children[0]->OutputColumns()[0],
            join->children[1]->OutputColumns()[0]);
}

TEST_F(BinderTest, CorrelationIsOuterReference) {
  auto bound = Bind(
      "select a from t where exists (select * from u where d = t.a)");
  ASSERT_TRUE(bound.ok());
  // The subquery's relational tree must have a free variable: t.a.
  const RelExpr* select = bound->root->children[0].get();
  ASSERT_EQ(select->kind, RelKind::kSelect);
  ASSERT_NE(select->predicate->rel, nullptr);
  EXPECT_FALSE(FreeVariables(*select->predicate->rel).empty());
}

TEST_F(BinderTest, AggregateQueryValidatesGrouping) {
  EXPECT_TRUE(Bind("select a, count(*) from t group by a").ok());
  // b is neither grouped nor aggregated.
  auto bad = Bind("select b, count(*) from t group by a");
  EXPECT_FALSE(bad.ok());
}

TEST_F(BinderTest, AggregateInWhereFails) {
  EXPECT_FALSE(Bind("select a from t where sum(a) > 1").ok());
}

TEST_F(BinderTest, NestedAggregateFails) {
  EXPECT_FALSE(Bind("select sum(count(a)) from t").ok());
}

TEST_F(BinderTest, AvgDecomposesToSumCount) {
  auto bound = Bind("select avg(c) from t");
  ASSERT_TRUE(bound.ok());
  // Walk to the GroupBy: it must carry sum and count, not a native avg.
  const RelExpr* node = bound->root.get();
  while (node->kind != RelKind::kGroupBy) node = node->children[0].get();
  ASSERT_EQ(node->aggs.size(), 2u);
  EXPECT_EQ(node->aggs[0].func, AggFunc::kSum);
  EXPECT_EQ(node->aggs[1].func, AggFunc::kCount);
}

TEST_F(BinderTest, SharedAggregatesAreDeduplicated) {
  auto bound = Bind("select sum(a), sum(a) + 1, avg(a) from t");
  ASSERT_TRUE(bound.ok());
  const RelExpr* node = bound->root.get();
  while (node->kind != RelKind::kGroupBy) node = node->children[0].get();
  // sum(a) shared by all three expressions; count(a) added by avg.
  EXPECT_EQ(node->aggs.size(), 2u);
}

TEST_F(BinderTest, DistinctBecomesGroupBy) {
  auto bound = Bind("select distinct b from t");
  ASSERT_TRUE(bound.ok());
  EXPECT_EQ(bound->root->kind, RelKind::kGroupBy);
  EXPECT_TRUE(bound->root->aggs.empty());
}

TEST_F(BinderTest, ScalarSubqueryArityEnforced) {
  EXPECT_FALSE(Bind("select (select a, d from u) from t").ok());
}

TEST_F(BinderTest, GroupByExpressionGetsPreProject) {
  auto bound = Bind("select a + 1, count(*) from t group by a + 1");
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
}

TEST_F(BinderTest, StarExpansion) {
  auto bound = Bind("select * from t");
  ASSERT_TRUE(bound.ok());
  EXPECT_EQ(bound->output_names,
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST_F(BinderTest, SetOperationArityMismatchFails) {
  EXPECT_FALSE(Bind("select a, b from t union all select a from u").ok());
}

TEST_F(BinderTest, OrderByOrdinalOutOfRangeFails) {
  EXPECT_FALSE(Bind("select a from t order by 2").ok());
}

TEST_F(BinderTest, SubqueryInOnClauseUnsupported) {
  auto bound = Bind(
      "select t.a from t join u on t.a = (select max(d) from u)");
  EXPECT_FALSE(bound.ok());
  EXPECT_EQ(bound.status().code(), StatusCode::kUnsupported);
}

TEST_F(BinderTest, BoundOutputMatchesRootColumns) {
  auto bound = Bind("select a as x, c from t where b = 'k'");
  ASSERT_TRUE(bound.ok());
  EXPECT_EQ(bound->root->OutputColumns(), bound->output_cols);
}

}  // namespace
}  // namespace orq
