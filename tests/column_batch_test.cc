// Columnar (SoA) execution unit tests: ColumnVec build/view mechanics and
// boundary cases (empty batches, all-null columns, string-arena growth,
// boxed degradation), selection-vector behavior including all-filtered
// batches, column-wise hashing against RowHash, batch_size validation, and
// end-to-end row-vs-columnar equivalence at awkward batch boundaries.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "engine/engine.h"
#include "exec/column_batch.h"
#include "exec/exec.h"
#include "exec/vector_kernels.h"
#include "obs/report.h"
#include "server/session.h"
#include "tests/test_util.h"

namespace orq {
namespace {

TEST(ColumnVecTest, TypedBuildRoundTrips) {
  ColumnVec col;
  col.StartBuild(DataType::kInt64, 4);
  col.AppendInt(7);
  col.AppendNull();
  col.AppendInt(-3);
  col.Seal();
  ASSERT_EQ(col.size(), 3u);
  EXPECT_EQ(col.rep(), ColumnRep::kInts);
  EXPECT_FALSE(col.IsNull(0));
  EXPECT_TRUE(col.IsNull(1));
  EXPECT_EQ(col.IntAt(2), -3);
  EXPECT_EQ(col.GetValue(0).int64_value(), 7);
  EXPECT_TRUE(col.GetValue(1).is_null());
  EXPECT_EQ(col.GetValue(1).type(), DataType::kInt64);
}

TEST(ColumnVecTest, StringArenaGrowthKeepsAllValues) {
  // Enough variable-length strings to force several arena reallocations
  // during the build; Seal must leave every offset/byte pair consistent.
  ColumnVec col;
  const int n = 2000;
  col.StartBuild(DataType::kString, 4);  // deliberately tiny reserve
  std::vector<std::string> expect;
  for (int i = 0; i < n; ++i) {
    std::string s(static_cast<size_t>(i % 97), 'a' + i % 26);
    s += std::to_string(i);
    expect.push_back(s);
    col.AppendStr(s);
  }
  col.Seal();
  ASSERT_EQ(col.size(), static_cast<uint32_t>(n));
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(std::string(col.StrAt(i)), expect[i]) << i;
  }
}

TEST(ColumnVecTest, AppendValueDegradesToBoxedOnMixedTags) {
  ColumnVec col;
  col.StartBuild(DataType::kInt64, 4);
  col.AppendValue(Value::Int64(3));
  col.AppendValue(Value::Null(DataType::kInt64));
  col.AppendValue(Value::Double(3.0));  // first off-type tag
  col.Seal();
  ASSERT_EQ(col.rep(), ColumnRep::kValues);
  ASSERT_EQ(col.size(), 3u);
  // Exact tags survive the degradation — Int64(3) stays distinguishable
  // from Double(3.0), and the null keeps reading as null.
  EXPECT_EQ(col.ValAt(0).type(), DataType::kInt64);
  EXPECT_TRUE(col.IsNull(1));
  EXPECT_EQ(col.ValAt(2).type(), DataType::kDouble);
}

TEST(ColumnBatchTest, EmptyBatchHasNoSelectedRows) {
  ColumnBatch batch(16);
  EXPECT_EQ(batch.selected(), 0u);
  batch.ResizeCols(2);
  EXPECT_EQ(batch.selected(), 0u);
  batch.Clear();
  EXPECT_EQ(batch.num_cols(), 2u);  // columns survive Clear for reuse
  EXPECT_EQ(batch.selected(), 0u);
}

TEST(ColumnBatchTest, SelectionVectorRestrictsRowAt) {
  ColumnBatch batch(8);
  batch.ResizeCols(1);
  ColumnVec& col = batch.col(0);
  col.StartBuild(DataType::kInt64, 4);
  for (int i = 0; i < 4; ++i) col.AppendInt(i * 10);
  col.Seal();
  batch.set_num_rows(4);
  EXPECT_FALSE(batch.has_selection());
  EXPECT_EQ(batch.selected(), 4u);
  EXPECT_EQ(batch.RowAt(2), 2u);

  std::vector<uint32_t>* sel = batch.MutableSelection();
  sel->assign({1, 3});
  EXPECT_TRUE(batch.has_selection());
  EXPECT_EQ(batch.selected(), 2u);
  EXPECT_EQ(batch.RowAt(1), 3u);
  EXPECT_EQ(batch.col(0).IntAt(batch.RowAt(0)), 10);

  Row row;
  batch.DecodeRow(batch.RowAt(1), &row);
  ASSERT_EQ(row.size(), 1u);
  EXPECT_EQ(row[0].int64_value(), 30);
}

TEST(ColumnBatchTest, AllNullColumnHashesLikeRowHash) {
  // An all-null key column must bucket exactly like the row engine's
  // RowHash over decoded rows — nulls included.
  ColumnBatch batch(8);
  batch.ResizeCols(1);
  ColumnVec& col = batch.col(0);
  col.StartBuild(DataType::kInt64, 3);
  for (int i = 0; i < 3; ++i) col.AppendNull();
  col.Seal();
  batch.set_num_rows(3);

  std::vector<size_t> hashes;
  InitKeyHashes(batch, &hashes);
  HashCombineColumn(batch, batch.col(0), &hashes);
  ASSERT_EQ(hashes.size(), 3u);
  Row decoded;
  for (uint32_t j = 0; j < 3; ++j) {
    batch.DecodeRow(batch.RowAt(j), &decoded);
    EXPECT_EQ(hashes[j], RowHash{}(decoded)) << j;
    EXPECT_TRUE(decoded[0].is_null());
  }
  // Null refs group-compare equal regardless of declared type.
  EXPECT_TRUE(GroupEqualsRefs(LoadElem(col, 0),
                              LoadValue(Value::Null(DataType::kString))));
}

TEST(ColumnBatchTest, MixedTypeHashesMatchRowHash) {
  ColumnBatch batch(8);
  batch.ResizeCols(2);
  ColumnVec& a = batch.col(0);
  a.StartBuild(DataType::kInt64, 3);
  a.AppendInt(42);
  a.AppendNull();
  a.AppendInt(-7);
  a.Seal();
  ColumnVec& b = batch.col(1);
  b.StartBuild(DataType::kString, 3);
  b.AppendStr("x");
  b.AppendStr("");
  b.AppendNull();
  b.Seal();
  batch.set_num_rows(3);

  std::vector<size_t> hashes;
  InitKeyHashes(batch, &hashes);
  HashCombineColumn(batch, batch.col(0), &hashes);
  HashCombineColumn(batch, batch.col(1), &hashes);
  Row decoded;
  for (uint32_t j = 0; j < 3; ++j) {
    batch.DecodeRow(batch.RowAt(j), &decoded);
    EXPECT_EQ(hashes[j], RowHash{}(decoded)) << j;
  }
}

TEST(ValidateBatchSizeTest, RejectsOutOfRangeCleanly) {
  EXPECT_TRUE(ValidateBatchSize(1).ok());
  EXPECT_TRUE(ValidateBatchSize(1024).ok());
  EXPECT_TRUE(ValidateBatchSize(kMaxBatchRows).ok());
  for (int bad : {0, -1, kMaxBatchRows + 1, 1 << 20}) {
    Status status = ValidateBatchSize(bad);
    EXPECT_FALSE(status.ok()) << bad;
    EXPECT_NE(status.ToString().find("batch_size"), std::string::npos);
  }
}

TEST(ValidateBatchSizeTest, SessionSetAndEngineShareTheCheck) {
  Session session(1, EngineOptions::Full(), 0);
  EXPECT_TRUE(session.ApplySet("batch_size 65536").ok());
  EXPECT_FALSE(session.ApplySet("batch_size 0").ok());
  EXPECT_FALSE(session.ApplySet("batch_size 65537").ok());
  EXPECT_TRUE(session.ApplySet("exec columnar").ok());
  EXPECT_TRUE(session.engine_options().exec.columnar);
  EXPECT_TRUE(session.ApplySet("exec row").ok());
  EXPECT_FALSE(session.engine_options().exec.columnar);
  EXPECT_FALSE(session.ApplySet("exec vector").ok());

  // The engine applies the same predicate at execution time, so an
  // out-of-range value set programmatically still fails cleanly.
  Catalog catalog;
  Result<Table*> t = catalog.CreateTable(
      "t", {{"k", DataType::kInt64, false}});
  ASSERT_TRUE(t.ok());
  EngineOptions options = EngineOptions::Full();
  options.exec.batch_size = 0;
  QueryEngine engine(&catalog, options);
  Result<QueryResult> result = engine.Execute("select k from t");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().ToString().find("batch_size"),
            std::string::npos);
}

TEST(ValidateExecOptionsTest, RejectsColumnarWithThreads) {
  ExecOptions exec;
  exec.batched = true;
  exec.columnar = true;
  exec.num_threads = 0;
  EXPECT_TRUE(ValidateExecOptions(exec).ok());
  exec.num_threads = 4;
  Status status = ValidateExecOptions(exec);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("columnar"), std::string::npos);

  // The session rejects the combination in either SET order, leaving the
  // previous options intact.
  Session session(1, EngineOptions::Full(), 0);
  EXPECT_TRUE(session.ApplySet("exec columnar").ok());
  EXPECT_FALSE(session.ApplySet("threads 4").ok());
  EXPECT_EQ(session.engine_options().exec.num_threads, 0);
  EXPECT_TRUE(session.ApplySet("exec batch").ok());
  EXPECT_TRUE(session.ApplySet("threads 4").ok());
  EXPECT_FALSE(session.ApplySet("exec columnar").ok());
  EXPECT_FALSE(session.engine_options().exec.columnar);

  // And the engine applies the same predicate to programmatic options, so
  // there is no silent single-thread fallback path left.
  Catalog catalog;
  Result<Table*> t =
      catalog.CreateTable("t", {{"k", DataType::kInt64, false}});
  ASSERT_TRUE(t.ok());
  EngineOptions options = EngineOptions::Full();
  options.exec.batched = true;
  options.exec.columnar = true;
  options.exec.num_threads = 2;
  QueryEngine engine(&catalog, options);
  Result<QueryResult> result = engine.Execute("select k from t");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().ToString().find("columnar"), std::string::npos);
}

TEST(ValidateExecOptionsTest, TableEncodingKnobParsesAndRejects) {
  Session session(1, EngineOptions::Full(), 0);
  EXPECT_EQ(session.engine_options().exec.table_encoding,
            TableEncoding::kPlain);
  EXPECT_TRUE(session.ApplySet("table_encoding auto").ok());
  EXPECT_EQ(session.engine_options().exec.table_encoding,
            TableEncoding::kAuto);
  EXPECT_TRUE(session.ApplySet("table_encoding dict").ok());
  EXPECT_TRUE(session.ApplySet("table_encoding rle").ok());
  EXPECT_TRUE(session.ApplySet("table_encoding plain").ok());
  Status status = session.ApplySet("table_encoding zip");
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("table_encoding"), std::string::npos);
}

/// Builds a ColumnVec view over `chunk` windowed at [pos, pos + n), the
/// same dispatch TableScanOp::NextColumnsImpl performs.
void SetViewFromChunk(const Table::ColumnChunk& chunk, size_t pos,
                      uint32_t n, ColumnVec* col) {
  if (chunk.mixed) {
    col->SetValuesView(chunk.type, chunk.vals.data() + pos, n);
    return;
  }
  if (chunk.encoding == ChunkEncoding::kDict) {
    col->SetDictView(chunk.type, chunk.codes.data() + pos, chunk.ints.data(),
                     chunk.chars.data(), chunk.offsets.data(),
                     chunk.dict_hashes.data(),
                     static_cast<uint32_t>(chunk.dict_size()),
                     chunk.any_null ? chunk.nulls.data() + pos : nullptr, n);
    return;
  }
  if (chunk.encoding == ChunkEncoding::kRle) {
    col->SetRleView(chunk.type, chunk.ints.data(), chunk.doubles.data(),
                    chunk.chars.data(), chunk.offsets.data(),
                    chunk.run_ends.data(),
                    chunk.any_null ? chunk.nulls.data() : nullptr,
                    static_cast<uint32_t>(chunk.num_runs()),
                    static_cast<uint32_t>(pos), n);
    return;
  }
  const uint8_t* nulls = chunk.any_null ? chunk.nulls.data() + pos : nullptr;
  switch (chunk.type) {
    case DataType::kDouble:
      col->SetDoubleView(chunk.doubles.data() + pos, nulls, n);
      break;
    case DataType::kString:
      col->SetStringView(chunk.chars.data(), chunk.offsets.data() + pos,
                         nulls, n);
      break;
    default:
      col->SetIntView(chunk.type, chunk.ints.data() + pos, nulls, n);
      break;
  }
}

class EncodedChunkTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // 40 rows: id unique (stays plain under auto), grp clustered in runs
    // of 8 (RLE under auto), tag low-cardinality strings with nulls (dict
    // under auto).
    table_ = *catalog_.CreateTable(
        "e", {{"id", DataType::kInt64, false},
              {"grp", DataType::kInt64, false},
              {"tag", DataType::kString, true}});
    for (int i = 0; i < 40; ++i) {
      ASSERT_TRUE(table_
                      ->Append({Value::Int64(i * 7 % 41),
                                Value::Int64(i / 8),
                                i % 11 == 0
                                    ? Value::Null(DataType::kString)
                                    : Value::String("group_name_" +
                                                    std::to_string(i % 3))})
                      .ok());
    }
  }

  /// Asserts the windowed view decodes to exactly the table rows
  /// [pos, pos + n) for column `c` — the chunk-boundary resume a scan
  /// performs when a batch ends mid-table.
  void ExpectWindowRoundTrips(const Table::ColumnChunk& chunk, int c,
                              size_t pos, uint32_t n) {
    ColumnVec col;
    SetViewFromChunk(chunk, pos, n, &col);
    for (uint32_t i = 0; i < n; ++i) {
      const Value& want = table_->rows()[pos + i][c];
      Value got = col.GetValue(i);
      EXPECT_EQ(want.is_null(), got.is_null()) << "col " << c << " row " << i;
      if (!want.is_null()) {
        EXPECT_EQ(want.TotalCompare(got), 0) << "col " << c << " row " << i;
      }
    }
  }

  Catalog catalog_;
  Table* table_ = nullptr;
};

TEST_F(EncodedChunkTest, AutoHeuristicPicksPerColumn) {
  const std::vector<Table::ColumnChunk>& chunks =
      table_->ColumnarChunks(TableEncoding::kAuto);
  ASSERT_EQ(chunks.size(), 3u);
  EXPECT_EQ(chunks[0].encoding, ChunkEncoding::kPlain);  // unique ints
  EXPECT_EQ(chunks[1].encoding, ChunkEncoding::kRle);    // 5 runs of 8
  EXPECT_EQ(chunks[1].num_runs(), 5u);
  EXPECT_EQ(chunks[2].encoding, ChunkEncoding::kDict);   // 3 distinct + null
  EXPECT_EQ(chunks[2].dict_size(), 4u);  // null rows intern ""
  // The encoded forms actually compress: RLE collapses the runs, dict
  // shares the long string payloads.
  EXPECT_LT(chunks[1].encoded_bytes, chunks[1].plain_bytes);
  EXPECT_LT(chunks[2].encoded_bytes, chunks[2].plain_bytes);
  // The plain cache is a distinct, unencoded chunk set.
  const std::vector<Table::ColumnChunk>& plain =
      table_->ColumnarChunks(TableEncoding::kPlain);
  EXPECT_EQ(plain[1].encoding, ChunkEncoding::kPlain);
  EXPECT_EQ(plain[2].encoding, ChunkEncoding::kPlain);
}

TEST_F(EncodedChunkTest, EncodedViewsRoundTripWithWindows) {
  for (TableEncoding mode : {TableEncoding::kDict, TableEncoding::kRle,
                             TableEncoding::kAuto}) {
    const std::vector<Table::ColumnChunk>& chunks =
        table_->ColumnarChunks(mode);
    for (int c = 0; c < 3; ++c) {
      ExpectWindowRoundTrips(chunks[c], c, 0, 40);
      ExpectWindowRoundTrips(chunks[c], c, 7, 33);   // mid-run resume
      ExpectWindowRoundTrips(chunks[c], c, 39, 1);   // last row
    }
  }
  // Forced modes encode every eligible column.
  EXPECT_EQ(table_->ColumnarChunks(TableEncoding::kDict)[0].encoding,
            ChunkEncoding::kDict);
  EXPECT_EQ(table_->ColumnarChunks(TableEncoding::kRle)[2].encoding,
            ChunkEncoding::kRle);
}

TEST_F(EncodedChunkTest, RleCursorHandlesBackwardJumps) {
  const Table::ColumnChunk& chunk =
      table_->ColumnarChunks(TableEncoding::kRle)[1];
  ASSERT_EQ(chunk.encoding, ChunkEncoding::kRle);
  ColumnVec col;
  SetViewFromChunk(chunk, 0, 40, &col);
  // Monotone forward, then a backward jump: the cached run cursor must
  // reseek, not walk off the run array.
  EXPECT_EQ(col.IntAt(30), 3);
  EXPECT_EQ(col.IntAt(39), 4);
  EXPECT_EQ(col.IntAt(2), 0);
  EXPECT_EQ(col.IntAt(17), 2);
}

TEST_F(EncodedChunkTest, MixedTagColumnStaysBoxedUnderEveryEncoding) {
  Table* m = *catalog_.CreateTable("m", {{"x", DataType::kInt64, true}});
  for (int i = 0; i < 40; ++i) {
    // Value tags disagree with the declared type on some rows, so the
    // chunk must degrade to boxed values — and encoding must leave it
    // alone under every requested mode.
    ASSERT_TRUE(
        m->Append({i % 2 == 0 ? Value::Int64(7) : Value::String("seven")})
            .ok());
  }
  for (TableEncoding mode : {TableEncoding::kPlain, TableEncoding::kDict,
                             TableEncoding::kRle, TableEncoding::kAuto}) {
    const Table::ColumnChunk& chunk = m->ColumnarChunks(mode)[0];
    EXPECT_TRUE(chunk.mixed);
    EXPECT_EQ(chunk.encoding, ChunkEncoding::kPlain);
    ASSERT_EQ(chunk.vals.size(), 40u);
    ColumnVec col;
    SetViewFromChunk(chunk, 0, 40, &col);
    EXPECT_EQ(col.rep(), ColumnRep::kValues);
    EXPECT_EQ(col.GetValue(1).string_value(), "seven");
  }
}

TEST_F(EncodedChunkTest, EncodedHashParityWithRowHash) {
  // Column-wise hashing over dict codes and RLE runs must equal RowHash
  // over the decoded rows — the invariant that lets encoded probes share
  // hash tables with row-built PackedKeys.
  for (TableEncoding mode : {TableEncoding::kPlain, TableEncoding::kDict,
                             TableEncoding::kRle, TableEncoding::kAuto}) {
    const std::vector<Table::ColumnChunk>& chunks =
        table_->ColumnarChunks(mode);
    ColumnBatch batch(64);
    batch.ResizeCols(3);
    for (int c = 0; c < 3; ++c) {
      SetViewFromChunk(chunks[c], 0, 40, &batch.col(c));
    }
    batch.set_num_rows(40);
    std::vector<size_t> hashes;
    InitKeyHashes(batch, &hashes);
    for (int c = 0; c < 3; ++c) {
      HashCombineColumn(batch, batch.col(c), &hashes);
    }
    Row decoded;
    for (uint32_t j = 0; j < 40; ++j) {
      batch.DecodeRow(batch.RowAt(j), &decoded);
      EXPECT_EQ(hashes[j], RowHash{}(decoded))
          << "mode " << static_cast<int>(mode) << " row " << j;
    }
  }
}

class ColumnarExecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // 16 rows and batch_size 8: scans hit the batch capacity exactly, so
    // every boundary (full batch, exact multiple, EOS-on-empty) is
    // exercised. Includes nulls, strings, doubles, and negatives.
    Table* t = *catalog_.CreateTable("t", {{"k", DataType::kInt64, false},
                                           {"v", DataType::kInt64, true},
                                           {"d", DataType::kDouble, true},
                                           {"s", DataType::kString, true}});
    for (int i = 0; i < 16; ++i) {
      Row row{Value::Int64(i),
              i % 5 == 0 ? Value::Null(DataType::kInt64)
                         : Value::Int64(i * 3 - 20),
              i % 7 == 0 ? Value::Null(DataType::kDouble)
                         : Value::Double(i * 0.5),
              i % 4 == 0 ? Value::Null(DataType::kString)
                         : Value::String("s" + std::to_string(i % 3))};
      ASSERT_TRUE(t->Append(std::move(row)).ok());
    }
    Table* u = *catalog_.CreateTable("u", {{"fk", DataType::kInt64, false},
                                           {"w", DataType::kInt64, true}});
    for (int i = 0; i < 24; ++i) {
      ASSERT_TRUE(u->Append({Value::Int64(i % 6),
                             i % 3 == 0 ? Value::Null(DataType::kInt64)
                                        : Value::Int64(i)})
                      .ok());
    }
  }

  // Runs `sql` in both modes with batch_size 8 and expects identical row
  // multisets. The columnar side reads chunks under `encoding` (plain by
  // default; the encoded modes are the storage-layer twist on the same
  // oracle).
  void ExpectModesAgree(const std::string& sql,
                        TableEncoding encoding = TableEncoding::kPlain) {
    EngineOptions row_options = EngineOptions::Full();
    row_options.exec.batched = false;
    row_options.exec.batch_size = 8;
    EngineOptions col_options = EngineOptions::Full();
    col_options.exec.batched = true;
    col_options.exec.columnar = true;
    col_options.exec.batch_size = 8;
    col_options.exec.table_encoding = encoding;
    QueryEngine row_engine(&catalog_, row_options);
    QueryEngine col_engine(&catalog_, col_options);
    Result<QueryResult> expect = row_engine.Execute(sql);
    Result<QueryResult> actual = col_engine.Execute(sql);
    ASSERT_TRUE(expect.ok()) << sql << ": " << expect.status().ToString();
    ASSERT_TRUE(actual.ok()) << sql << ": " << actual.status().ToString();
    EXPECT_EQ(CanonicalRows(expect->rows), CanonicalRows(actual->rows))
        << sql << " (encoding " << static_cast<int>(encoding) << ")";
  }

  Catalog catalog_;
};

TEST_F(ColumnarExecTest, FilterMatchesRowMode) {
  ExpectModesAgree("select k, v from t where v > 0");
  ExpectModesAgree("select k from t where v > 0 and d < 6.0 and s = 's1'");
  // All rows filtered out: the selection vector empties and the scan must
  // still drive to a clean EOS.
  ExpectModesAgree("select k from t where v > 1000");
  // All rows kept at exactly batch capacity.
  ExpectModesAgree("select k from t where k >= 0");
}

TEST_F(ColumnarExecTest, ComputeAndAggregateMatchRowMode) {
  ExpectModesAgree("select k + 1, d * 2.0, -v from t");
  ExpectModesAgree(
      "select s, sum(v), count(*), min(d), max(k) from t group by s");
  ExpectModesAgree("select sum(v), count(v), avg(d) from t");
  ExpectModesAgree("select count(*) from t where v is null");
}

TEST_F(ColumnarExecTest, JoinsMatchRowMode) {
  ExpectModesAgree(
      "select k, w from t, u where k = fk");
  ExpectModesAgree(
      "select k, sum(w) from t, u where k = fk group by k");
  ExpectModesAgree(
      "select k from t where exists (select 1 from u where fk = k)");
  ExpectModesAgree(
      "select k from t where not exists (select 1 from u where fk = k)");
}

TEST_F(ColumnarExecTest, SubqueryPlansMatchRowMode) {
  ExpectModesAgree(
      "select k from t where v < (select sum(w) from u where fk = k)");
  ExpectModesAgree(
      "select k, (select count(*) from u where fk = k) from t");
}

TEST_F(ColumnarExecTest, EncodedStorageMatchesRowMode) {
  // The same row-vs-columnar oracle with the columnar side reading
  // dictionary/RLE/auto-encoded chunks: predicates translate to codes,
  // hashing consumes codes, and the vectorized accumulators walk runs —
  // all of it must stay byte-equal to plain row execution. batch_size 8
  // on 16/24-row tables also forces mid-chunk window resumes.
  for (TableEncoding enc : {TableEncoding::kDict, TableEncoding::kRle,
                            TableEncoding::kAuto}) {
    ExpectModesAgree("select k from t where v > 0 and d < 6.0 and s = 's1'",
                     enc);
    ExpectModesAgree("select k from t where s <> 's0'", enc);
    ExpectModesAgree(
        "select s, sum(v), count(*), min(d), max(k) from t group by s", enc);
    ExpectModesAgree("select sum(v), count(v), avg(d) from t", enc);
    ExpectModesAgree("select k, sum(w) from t, u where k = fk group by k",
                     enc);
    ExpectModesAgree(
        "select k from t where exists (select 1 from u where fk = k)", enc);
    ExpectModesAgree(
        "select k, (select count(*) from u where fk = k) from t", enc);
    ExpectModesAgree("select k + 1, d * 2.0, -v from t", enc);
  }
}

TEST_F(ColumnarExecTest, EncodedScanSurfacesEncodingInReport) {
  EngineOptions options = EngineOptions::Full();
  options.exec.batched = true;
  options.exec.columnar = true;
  options.exec.batch_size = 8;
  options.exec.table_encoding = TableEncoding::kDict;
  QueryEngine engine(&catalog_, options);
  Result<std::string> report = engine.ExplainAnalyze(
      "select s, count(*) from t group by s");
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // The scan line reports its per-column encoding split and encoded bytes.
  EXPECT_NE(report->find("encoding=dict:"), std::string::npos) << *report;
  EXPECT_NE(report->find("bytes="), std::string::npos) << *report;
}

TEST_F(ColumnarExecTest, StatsInvariantHoldsColumnar) {
  EngineOptions options = EngineOptions::Full();
  options.exec.batched = true;
  options.exec.columnar = true;
  options.exec.batch_size = 8;
  QueryEngine engine(&catalog_, options);
  Result<AnalyzedQuery> analyzed = engine.ExecuteAnalyzed(
      "select s, sum(v) from t where k > 2 group by s");
  ASSERT_TRUE(analyzed.ok()) << analyzed.status().ToString();
  // Every row the engine counted must be accounted for by the per-operator
  // stats tree, columnar shells included.
  EXPECT_EQ(TotalRowsOut(analyzed->plan),
            analyzed->result.rows_produced);
  // At least one operator actually ran columnar, and the report surfaces
  // the mode.
  Result<std::string> report = engine.ExplainAnalyze(
      "select s, sum(v) from t where k > 2 group by s");
  ASSERT_TRUE(report.ok());
  EXPECT_NE(report->find("mode=columnar"), std::string::npos) << *report;
}

}  // namespace
}  // namespace orq
