// Columnar (SoA) execution unit tests: ColumnVec build/view mechanics and
// boundary cases (empty batches, all-null columns, string-arena growth,
// boxed degradation), selection-vector behavior including all-filtered
// batches, column-wise hashing against RowHash, batch_size validation, and
// end-to-end row-vs-columnar equivalence at awkward batch boundaries.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "engine/engine.h"
#include "exec/column_batch.h"
#include "exec/exec.h"
#include "exec/vector_kernels.h"
#include "obs/report.h"
#include "server/session.h"
#include "tests/test_util.h"

namespace orq {
namespace {

TEST(ColumnVecTest, TypedBuildRoundTrips) {
  ColumnVec col;
  col.StartBuild(DataType::kInt64, 4);
  col.AppendInt(7);
  col.AppendNull();
  col.AppendInt(-3);
  col.Seal();
  ASSERT_EQ(col.size(), 3u);
  EXPECT_EQ(col.rep(), ColumnRep::kInts);
  EXPECT_FALSE(col.IsNull(0));
  EXPECT_TRUE(col.IsNull(1));
  EXPECT_EQ(col.IntAt(2), -3);
  EXPECT_EQ(col.GetValue(0).int64_value(), 7);
  EXPECT_TRUE(col.GetValue(1).is_null());
  EXPECT_EQ(col.GetValue(1).type(), DataType::kInt64);
}

TEST(ColumnVecTest, StringArenaGrowthKeepsAllValues) {
  // Enough variable-length strings to force several arena reallocations
  // during the build; Seal must leave every offset/byte pair consistent.
  ColumnVec col;
  const int n = 2000;
  col.StartBuild(DataType::kString, 4);  // deliberately tiny reserve
  std::vector<std::string> expect;
  for (int i = 0; i < n; ++i) {
    std::string s(static_cast<size_t>(i % 97), 'a' + i % 26);
    s += std::to_string(i);
    expect.push_back(s);
    col.AppendStr(s);
  }
  col.Seal();
  ASSERT_EQ(col.size(), static_cast<uint32_t>(n));
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(std::string(col.StrAt(i)), expect[i]) << i;
  }
}

TEST(ColumnVecTest, AppendValueDegradesToBoxedOnMixedTags) {
  ColumnVec col;
  col.StartBuild(DataType::kInt64, 4);
  col.AppendValue(Value::Int64(3));
  col.AppendValue(Value::Null(DataType::kInt64));
  col.AppendValue(Value::Double(3.0));  // first off-type tag
  col.Seal();
  ASSERT_EQ(col.rep(), ColumnRep::kValues);
  ASSERT_EQ(col.size(), 3u);
  // Exact tags survive the degradation — Int64(3) stays distinguishable
  // from Double(3.0), and the null keeps reading as null.
  EXPECT_EQ(col.ValAt(0).type(), DataType::kInt64);
  EXPECT_TRUE(col.IsNull(1));
  EXPECT_EQ(col.ValAt(2).type(), DataType::kDouble);
}

TEST(ColumnBatchTest, EmptyBatchHasNoSelectedRows) {
  ColumnBatch batch(16);
  EXPECT_EQ(batch.selected(), 0u);
  batch.ResizeCols(2);
  EXPECT_EQ(batch.selected(), 0u);
  batch.Clear();
  EXPECT_EQ(batch.num_cols(), 2u);  // columns survive Clear for reuse
  EXPECT_EQ(batch.selected(), 0u);
}

TEST(ColumnBatchTest, SelectionVectorRestrictsRowAt) {
  ColumnBatch batch(8);
  batch.ResizeCols(1);
  ColumnVec& col = batch.col(0);
  col.StartBuild(DataType::kInt64, 4);
  for (int i = 0; i < 4; ++i) col.AppendInt(i * 10);
  col.Seal();
  batch.set_num_rows(4);
  EXPECT_FALSE(batch.has_selection());
  EXPECT_EQ(batch.selected(), 4u);
  EXPECT_EQ(batch.RowAt(2), 2u);

  std::vector<uint32_t>* sel = batch.MutableSelection();
  sel->assign({1, 3});
  EXPECT_TRUE(batch.has_selection());
  EXPECT_EQ(batch.selected(), 2u);
  EXPECT_EQ(batch.RowAt(1), 3u);
  EXPECT_EQ(batch.col(0).IntAt(batch.RowAt(0)), 10);

  Row row;
  batch.DecodeRow(batch.RowAt(1), &row);
  ASSERT_EQ(row.size(), 1u);
  EXPECT_EQ(row[0].int64_value(), 30);
}

TEST(ColumnBatchTest, AllNullColumnHashesLikeRowHash) {
  // An all-null key column must bucket exactly like the row engine's
  // RowHash over decoded rows — nulls included.
  ColumnBatch batch(8);
  batch.ResizeCols(1);
  ColumnVec& col = batch.col(0);
  col.StartBuild(DataType::kInt64, 3);
  for (int i = 0; i < 3; ++i) col.AppendNull();
  col.Seal();
  batch.set_num_rows(3);

  std::vector<size_t> hashes;
  InitKeyHashes(batch, &hashes);
  HashCombineColumn(batch, batch.col(0), &hashes);
  ASSERT_EQ(hashes.size(), 3u);
  Row decoded;
  for (uint32_t j = 0; j < 3; ++j) {
    batch.DecodeRow(batch.RowAt(j), &decoded);
    EXPECT_EQ(hashes[j], RowHash{}(decoded)) << j;
    EXPECT_TRUE(decoded[0].is_null());
  }
  // Null refs group-compare equal regardless of declared type.
  EXPECT_TRUE(GroupEqualsRefs(LoadElem(col, 0),
                              LoadValue(Value::Null(DataType::kString))));
}

TEST(ColumnBatchTest, MixedTypeHashesMatchRowHash) {
  ColumnBatch batch(8);
  batch.ResizeCols(2);
  ColumnVec& a = batch.col(0);
  a.StartBuild(DataType::kInt64, 3);
  a.AppendInt(42);
  a.AppendNull();
  a.AppendInt(-7);
  a.Seal();
  ColumnVec& b = batch.col(1);
  b.StartBuild(DataType::kString, 3);
  b.AppendStr("x");
  b.AppendStr("");
  b.AppendNull();
  b.Seal();
  batch.set_num_rows(3);

  std::vector<size_t> hashes;
  InitKeyHashes(batch, &hashes);
  HashCombineColumn(batch, batch.col(0), &hashes);
  HashCombineColumn(batch, batch.col(1), &hashes);
  Row decoded;
  for (uint32_t j = 0; j < 3; ++j) {
    batch.DecodeRow(batch.RowAt(j), &decoded);
    EXPECT_EQ(hashes[j], RowHash{}(decoded)) << j;
  }
}

TEST(ValidateBatchSizeTest, RejectsOutOfRangeCleanly) {
  EXPECT_TRUE(ValidateBatchSize(1).ok());
  EXPECT_TRUE(ValidateBatchSize(1024).ok());
  EXPECT_TRUE(ValidateBatchSize(kMaxBatchRows).ok());
  for (int bad : {0, -1, kMaxBatchRows + 1, 1 << 20}) {
    Status status = ValidateBatchSize(bad);
    EXPECT_FALSE(status.ok()) << bad;
    EXPECT_NE(status.ToString().find("batch_size"), std::string::npos);
  }
}

TEST(ValidateBatchSizeTest, SessionSetAndEngineShareTheCheck) {
  Session session(1, EngineOptions::Full(), 0);
  EXPECT_TRUE(session.ApplySet("batch_size 65536").ok());
  EXPECT_FALSE(session.ApplySet("batch_size 0").ok());
  EXPECT_FALSE(session.ApplySet("batch_size 65537").ok());
  EXPECT_TRUE(session.ApplySet("exec columnar").ok());
  EXPECT_TRUE(session.engine_options().exec.columnar);
  EXPECT_TRUE(session.ApplySet("exec row").ok());
  EXPECT_FALSE(session.engine_options().exec.columnar);
  EXPECT_FALSE(session.ApplySet("exec vector").ok());

  // The engine applies the same predicate at execution time, so an
  // out-of-range value set programmatically still fails cleanly.
  Catalog catalog;
  Result<Table*> t = catalog.CreateTable(
      "t", {{"k", DataType::kInt64, false}});
  ASSERT_TRUE(t.ok());
  EngineOptions options = EngineOptions::Full();
  options.exec.batch_size = 0;
  QueryEngine engine(&catalog, options);
  Result<QueryResult> result = engine.Execute("select k from t");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().ToString().find("batch_size"),
            std::string::npos);
}

class ColumnarExecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // 16 rows and batch_size 8: scans hit the batch capacity exactly, so
    // every boundary (full batch, exact multiple, EOS-on-empty) is
    // exercised. Includes nulls, strings, doubles, and negatives.
    Table* t = *catalog_.CreateTable("t", {{"k", DataType::kInt64, false},
                                           {"v", DataType::kInt64, true},
                                           {"d", DataType::kDouble, true},
                                           {"s", DataType::kString, true}});
    for (int i = 0; i < 16; ++i) {
      Row row{Value::Int64(i),
              i % 5 == 0 ? Value::Null(DataType::kInt64)
                         : Value::Int64(i * 3 - 20),
              i % 7 == 0 ? Value::Null(DataType::kDouble)
                         : Value::Double(i * 0.5),
              i % 4 == 0 ? Value::Null(DataType::kString)
                         : Value::String("s" + std::to_string(i % 3))};
      ASSERT_TRUE(t->Append(std::move(row)).ok());
    }
    Table* u = *catalog_.CreateTable("u", {{"fk", DataType::kInt64, false},
                                           {"w", DataType::kInt64, true}});
    for (int i = 0; i < 24; ++i) {
      ASSERT_TRUE(u->Append({Value::Int64(i % 6),
                             i % 3 == 0 ? Value::Null(DataType::kInt64)
                                        : Value::Int64(i)})
                      .ok());
    }
  }

  // Runs `sql` in both modes with batch_size 8 and expects identical row
  // multisets.
  void ExpectModesAgree(const std::string& sql) {
    EngineOptions row_options = EngineOptions::Full();
    row_options.exec.batched = false;
    row_options.exec.batch_size = 8;
    EngineOptions col_options = EngineOptions::Full();
    col_options.exec.batched = true;
    col_options.exec.columnar = true;
    col_options.exec.batch_size = 8;
    QueryEngine row_engine(&catalog_, row_options);
    QueryEngine col_engine(&catalog_, col_options);
    Result<QueryResult> expect = row_engine.Execute(sql);
    Result<QueryResult> actual = col_engine.Execute(sql);
    ASSERT_TRUE(expect.ok()) << sql << ": " << expect.status().ToString();
    ASSERT_TRUE(actual.ok()) << sql << ": " << actual.status().ToString();
    EXPECT_EQ(CanonicalRows(expect->rows), CanonicalRows(actual->rows))
        << sql;
  }

  Catalog catalog_;
};

TEST_F(ColumnarExecTest, FilterMatchesRowMode) {
  ExpectModesAgree("select k, v from t where v > 0");
  ExpectModesAgree("select k from t where v > 0 and d < 6.0 and s = 's1'");
  // All rows filtered out: the selection vector empties and the scan must
  // still drive to a clean EOS.
  ExpectModesAgree("select k from t where v > 1000");
  // All rows kept at exactly batch capacity.
  ExpectModesAgree("select k from t where k >= 0");
}

TEST_F(ColumnarExecTest, ComputeAndAggregateMatchRowMode) {
  ExpectModesAgree("select k + 1, d * 2.0, -v from t");
  ExpectModesAgree(
      "select s, sum(v), count(*), min(d), max(k) from t group by s");
  ExpectModesAgree("select sum(v), count(v), avg(d) from t");
  ExpectModesAgree("select count(*) from t where v is null");
}

TEST_F(ColumnarExecTest, JoinsMatchRowMode) {
  ExpectModesAgree(
      "select k, w from t, u where k = fk");
  ExpectModesAgree(
      "select k, sum(w) from t, u where k = fk group by k");
  ExpectModesAgree(
      "select k from t where exists (select 1 from u where fk = k)");
  ExpectModesAgree(
      "select k from t where not exists (select 1 from u where fk = k)");
}

TEST_F(ColumnarExecTest, SubqueryPlansMatchRowMode) {
  ExpectModesAgree(
      "select k from t where v < (select sum(w) from u where fk = k)");
  ExpectModesAgree(
      "select k, (select count(*) from u where fk = k) from t");
}

TEST_F(ColumnarExecTest, StatsInvariantHoldsColumnar) {
  EngineOptions options = EngineOptions::Full();
  options.exec.batched = true;
  options.exec.columnar = true;
  options.exec.batch_size = 8;
  QueryEngine engine(&catalog_, options);
  Result<AnalyzedQuery> analyzed = engine.ExecuteAnalyzed(
      "select s, sum(v) from t where k > 2 group by s");
  ASSERT_TRUE(analyzed.ok()) << analyzed.status().ToString();
  // Every row the engine counted must be accounted for by the per-operator
  // stats tree, columnar shells included.
  EXPECT_EQ(TotalRowsOut(analyzed->plan),
            analyzed->result.rows_produced);
  // At least one operator actually ran columnar, and the report surfaces
  // the mode.
  Result<std::string> report = engine.ExplainAnalyze(
      "select s, sum(v) from t where k > 2 group by s");
  ASSERT_TRUE(report.ok());
  EXPECT_NE(report->find("mode=columnar"), std::string::npos) << *report;
}

}  // namespace
}  // namespace orq
