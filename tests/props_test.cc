// Unit tests for logical property derivation: free variables, keys,
// non-null columns, max-one-row, and null-rejection — the analyses all
// rewrite rules depend on.
#include <gtest/gtest.h>

#include <map>

#include "algebra/expr_util.h"
#include "algebra/iso.h"
#include "algebra/props.h"
#include "catalog/catalog.h"

namespace orq {
namespace {

class PropsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    columns_ = std::make_shared<ColumnManager>();
    t_ = *catalog_.CreateTable("t", {{"k", DataType::kInt64, false},
                                     {"a", DataType::kInt64, false},
                                     {"b", DataType::kInt64, true}});
    t_->SetPrimaryKey({0});
    u_ = *catalog_.CreateTable("u", {{"uk", DataType::kInt64, false},
                                     {"c", DataType::kInt64, true}});
    u_->SetPrimaryKey({0});
  }

  RelExprPtr Get(Table* table, std::map<std::string, ColumnId>* ids) {
    std::vector<ColumnId> cols;
    for (const ColumnSpec& spec : table->columns()) {
      ColumnId id = columns_->NewColumn(spec.name, spec.type, spec.nullable);
      cols.push_back(id);
      (*ids)[spec.name] = id;
    }
    return MakeGet(table, std::move(cols));
  }

  ScalarExprPtr Ref(const std::map<std::string, ColumnId>& ids,
                    const std::string& name) {
    return CRef(*columns_, ids.at(name));
  }

  Catalog catalog_;
  ColumnManagerPtr columns_;
  Table* t_ = nullptr;
  Table* u_ = nullptr;
};

TEST_F(PropsTest, FreeVariablesOfParameterizedSelect) {
  std::map<std::string, ColumnId> t, u;
  RelExprPtr gt = Get(t_, &t);
  RelExprPtr gu = Get(u_, &u);
  RelExprPtr inner = MakeSelect(gu, Eq(Ref(u, "c"), Ref(t, "k")));
  ColumnSet free = FreeVariables(*inner);
  EXPECT_TRUE(free.Contains(t.at("k")));
  EXPECT_FALSE(free.Contains(u.at("c")));
}

TEST_F(PropsTest, ApplyBindsInnerFreeVariables) {
  std::map<std::string, ColumnId> t, u;
  RelExprPtr gt = Get(t_, &t);
  RelExprPtr gu = Get(u_, &u);
  RelExprPtr inner = MakeSelect(gu, Eq(Ref(u, "c"), Ref(t, "k")));
  RelExprPtr apply = MakeApply(ApplyKind::kCross, gt, inner);
  EXPECT_TRUE(FreeVariables(*apply).empty());
}

TEST_F(PropsTest, GetKeysFromPrimaryKey) {
  std::map<std::string, ColumnId> t;
  RelExprPtr gt = Get(t_, &t);
  std::vector<ColumnSet> keys = DeriveKeys(*gt);
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0], (ColumnSet{t.at("k")}));
}

TEST_F(PropsTest, JoinOnRightKeyPreservesLeftKeys) {
  std::map<std::string, ColumnId> t, u;
  RelExprPtr gt = Get(t_, &t);
  RelExprPtr gu = Get(u_, &u);
  RelExprPtr join = MakeJoin(JoinKind::kInner, gt, gu,
                             Eq(Ref(t, "a"), Ref(u, "uk")));
  EXPECT_TRUE(HasKeyWithin(*join, ColumnSet{t.at("k")}));
}

TEST_F(PropsTest, JoinWithoutKeyEqualityUnionsKeys) {
  std::map<std::string, ColumnId> t, u;
  RelExprPtr gt = Get(t_, &t);
  RelExprPtr gu = Get(u_, &u);
  RelExprPtr join = MakeJoin(JoinKind::kInner, gt, gu,
                             Eq(Ref(t, "a"), Ref(u, "c")));
  EXPECT_FALSE(HasKeyWithin(*join, ColumnSet{t.at("k")}));
  EXPECT_TRUE(HasKeyWithin(*join, ColumnSet{t.at("k"), u.at("uk")}));
}

TEST_F(PropsTest, GroupByKeysAreGroupingColumns) {
  std::map<std::string, ColumnId> t;
  RelExprPtr gt = Get(t_, &t);
  ColumnId sum = columns_->NewColumn("sum", DataType::kInt64, true);
  RelExprPtr group =
      MakeGroupBy(gt, ColumnSet{t.at("a")},
                  {AggItem{AggFunc::kSum, Ref(t, "b"), sum, false}});
  EXPECT_TRUE(HasKeyWithin(*group, ColumnSet{t.at("a")}));
  // Scalar aggregates have the empty key (exactly one row).
  RelExprPtr scalar = MakeScalarGroupBy(
      gt, {AggItem{AggFunc::kSum, Ref(t, "b"), sum, false}});
  EXPECT_TRUE(HasKeyWithin(*scalar, ColumnSet()));
}

TEST_F(PropsTest, SemiJoinKeepsLeftKeys) {
  std::map<std::string, ColumnId> t, u;
  RelExprPtr gt = Get(t_, &t);
  RelExprPtr gu = Get(u_, &u);
  RelExprPtr semi = MakeJoin(JoinKind::kLeftSemi, gt, gu,
                             Eq(Ref(t, "a"), Ref(u, "c")));
  EXPECT_TRUE(HasKeyWithin(*semi, ColumnSet{t.at("k")}));
}

TEST_F(PropsTest, NotNullColumns) {
  std::map<std::string, ColumnId> t;
  RelExprPtr gt = Get(t_, &t);
  ColumnSet not_null = NotNullColumns(*gt);
  EXPECT_TRUE(not_null.Contains(t.at("k")));
  EXPECT_TRUE(not_null.Contains(t.at("a")));
  EXPECT_FALSE(not_null.Contains(t.at("b")));

  // A strict filter makes b non-NULL.
  RelExprPtr filtered = MakeSelect(
      gt, MakeCompare(CompareOp::kGt, Ref(t, "b"), LitInt(0)));
  EXPECT_TRUE(NotNullColumns(*filtered).Contains(t.at("b")));
}

TEST_F(PropsTest, OuterJoinNullifiesRightSide) {
  std::map<std::string, ColumnId> t, u;
  RelExprPtr gt = Get(t_, &t);
  RelExprPtr gu = Get(u_, &u);
  RelExprPtr loj = MakeJoin(JoinKind::kLeftOuter, gt, gu,
                            Eq(Ref(t, "a"), Ref(u, "uk")));
  ColumnSet not_null = NotNullColumns(*loj);
  EXPECT_TRUE(not_null.Contains(t.at("k")));
  EXPECT_FALSE(not_null.Contains(u.at("uk")));  // may be padded
}

TEST_F(PropsTest, MaxOneRowThroughKeyEquality) {
  std::map<std::string, ColumnId> t;
  RelExprPtr gt = Get(t_, &t);
  // k = <outer param>: pins the key -> at most one row.
  ColumnId param = columns_->NewColumn("param", DataType::kInt64, false);
  RelExprPtr pinned = MakeSelect(
      gt, Eq(Ref(t, "k"), CRef(param, DataType::kInt64)));
  EXPECT_TRUE(MaxOneRow(*pinned));
  // a = <param> does not pin a key.
  std::map<std::string, ColumnId> t2;
  RelExprPtr gt2 = Get(t_, &t2);
  RelExprPtr not_pinned = MakeSelect(
      gt2, Eq(Ref(t2, "a"), CRef(param, DataType::kInt64)));
  EXPECT_FALSE(MaxOneRow(*not_pinned));
}

TEST_F(PropsTest, MaxOneRowOperators) {
  std::map<std::string, ColumnId> t;
  RelExprPtr gt = Get(t_, &t);
  EXPECT_TRUE(MaxOneRow(*MakeMax1row(gt)));
  EXPECT_TRUE(MaxOneRow(*MakeScalarGroupBy(gt, {})));
  EXPECT_TRUE(MaxOneRow(*MakeSingleRow()));
  EXPECT_TRUE(MaxOneRow(*MakeSort(gt, {}, 1)));
  EXPECT_FALSE(MaxOneRow(*gt));
}

TEST_F(PropsTest, PredicateNotTrueOnNull) {
  ColumnId x = columns_->NewColumn("x", DataType::kInt64, true);
  ColumnSet cols{x};
  ScalarExprPtr xref = CRef(x, DataType::kInt64);
  // x > 5 is null-rejecting on {x}.
  EXPECT_TRUE(PredicateNotTrueOnNull(
      MakeCompare(CompareOp::kGt, xref, LitInt(5)), cols));
  // x IS NULL is satisfied by NULL: not rejecting.
  EXPECT_FALSE(PredicateNotTrueOnNull(MakeIsNull(xref), cols));
  // x IS NOT NULL rejects.
  EXPECT_TRUE(PredicateNotTrueOnNull(MakeIsNotNull(xref), cols));
  // (x > 5 OR x < 0) rejects (both branches strict).
  EXPECT_TRUE(PredicateNotTrueOnNull(
      MakeOr({MakeCompare(CompareOp::kGt, xref, LitInt(5)),
              MakeCompare(CompareOp::kLt, xref, LitInt(0))}),
      cols));
  // (x > 5 OR x IS NULL) does not reject.
  EXPECT_FALSE(PredicateNotTrueOnNull(
      MakeOr({MakeCompare(CompareOp::kGt, xref, LitInt(5)),
              MakeIsNull(xref)}),
      cols));
  // AND rejects if any conjunct does.
  ColumnId y = columns_->NewColumn("y", DataType::kInt64, true);
  EXPECT_TRUE(PredicateNotTrueOnNull(
      MakeAnd2(MakeIsNull(CRef(y, DataType::kInt64)),
               MakeCompare(CompareOp::kGt, xref, LitInt(5))),
      cols));
  // NOT(x = 5) yields unknown on NULL x: rejecting.
  EXPECT_TRUE(
      PredicateNotTrueOnNull(MakeNot(Eq(xref, LitInt(5))), cols));
  // Predicates not referencing x at all: not rejecting on {x}.
  EXPECT_FALSE(PredicateNotTrueOnNull(
      MakeCompare(CompareOp::kGt, CRef(y, DataType::kInt64), LitInt(1)),
      cols));
}

TEST_F(PropsTest, NullRejectedColumnsPerConjunct) {
  ColumnId x = columns_->NewColumn("x", DataType::kInt64, true);
  ColumnId y = columns_->NewColumn("y", DataType::kInt64, true);
  ScalarExprPtr pred = MakeAnd2(
      MakeCompare(CompareOp::kGt, CRef(x, DataType::kInt64), LitInt(0)),
      MakeIsNull(CRef(y, DataType::kInt64)));
  ColumnSet rejected = NullRejectedColumns(pred);
  EXPECT_TRUE(rejected.Contains(x));
  EXPECT_FALSE(rejected.Contains(y));
}

TEST_F(PropsTest, IsomorphismDetectsEqualTreesModuloIds) {
  std::map<std::string, ColumnId> a, b;
  RelExprPtr ga = Get(t_, &a);
  RelExprPtr gb = Get(t_, &b);
  RelExprPtr ta = MakeSelect(
      ga, MakeCompare(CompareOp::kGt, Ref(a, "a"), LitInt(10)));
  RelExprPtr tb = MakeSelect(
      gb, MakeCompare(CompareOp::kGt, Ref(b, "a"), LitInt(10)));
  std::map<ColumnId, ColumnId> mapping;
  EXPECT_TRUE(RelTreesIsomorphic(ta, tb, &mapping));
  EXPECT_EQ(mapping.at(a.at("a")), b.at("a"));

  // Different literal -> not isomorphic.
  std::map<std::string, ColumnId> c;
  RelExprPtr gc = Get(t_, &c);
  RelExprPtr tc = MakeSelect(
      gc, MakeCompare(CompareOp::kGt, Ref(c, "a"), LitInt(11)));
  std::map<ColumnId, ColumnId> mapping2;
  EXPECT_FALSE(RelTreesIsomorphic(ta, tc, &mapping2));

  // Different table -> not isomorphic.
  std::map<std::string, ColumnId> d;
  RelExprPtr gd = Get(u_, &d);
  std::map<ColumnId, ColumnId> mapping3;
  EXPECT_FALSE(RelTreesIsomorphic(ga, gd, &mapping3));
}

TEST_F(PropsTest, IsomorphismAllowsWiderTarget) {
  // The target Get may carry extra columns (pruning asymmetry).
  std::map<std::string, ColumnId> a;
  RelExprPtr narrow = Get(t_, &a);
  narrow->get_cols = {a.at("k")};
  narrow->get_ordinals = {0};
  std::map<std::string, ColumnId> b;
  RelExprPtr wide = Get(t_, &b);
  std::map<ColumnId, ColumnId> mapping;
  EXPECT_TRUE(RelTreesIsomorphic(narrow, wide, &mapping));
  EXPECT_EQ(mapping.at(a.at("k")), b.at("k"));
  // But not the other way around.
  std::map<ColumnId, ColumnId> mapping2;
  EXPECT_FALSE(RelTreesIsomorphic(wide, narrow, &mapping2));
}

}  // namespace
}  // namespace orq
