#ifndef ORQ_TESTS_TEST_UTIL_H_
#define ORQ_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "exec/exec.h"
#include "opt/physical.h"

namespace orq {

/// Executes a logical tree through the direct physical translation and
/// returns its rows projected to `cols` (so trees with differing extra
/// columns compare on the meaningful ones).
inline Result<std::vector<Row>> ExecLogical(const RelExprPtr& tree,
                                            const ColumnManager& columns,
                                            const std::vector<ColumnId>& cols) {
  PhysicalBuildOptions options;
  ORQ_ASSIGN_OR_RETURN(PhysicalOpPtr plan,
                       BuildPhysicalPlan(tree, columns, options));
  ExecContext ctx;
  ORQ_ASSIGN_OR_RETURN(std::vector<Row> raw,
                       ExecuteToVector(plan.get(), &ctx));
  std::vector<int> slots;
  for (ColumnId id : cols) {
    int slot = -1;
    for (size_t i = 0; i < plan->layout().size(); ++i) {
      if (plan->layout()[i] == id) slot = static_cast<int>(i);
    }
    if (slot < 0) {
      return Status::Internal("column missing from plan output: #" +
                              std::to_string(id));
    }
    slots.push_back(slot);
  }
  std::vector<Row> out;
  out.reserve(raw.size());
  for (const Row& row : raw) {
    Row projected;
    for (int slot : slots) projected.push_back(row[slot]);
    out.push_back(std::move(projected));
  }
  return out;
}

/// Canonical (sorted) string form of a row multiset for comparison.
inline std::vector<std::string> CanonicalRows(const std::vector<Row>& rows) {
  std::vector<std::string> out;
  out.reserve(rows.size());
  for (const Row& row : rows) out.push_back(RowToString(row));
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace orq

#endif  // ORQ_TESTS_TEST_UTIL_H_
