// Property-based tests: randomized databases × randomized query templates,
// executed under every engine configuration — results must always agree
// (correctness of the whole rewrite stack), and the paper's
// syntax-independence claim (section 1.2) is asserted on equivalent SQL
// formulations.
#include <gtest/gtest.h>

#include <algorithm>

#include "engine/engine.h"

namespace orq {
namespace {

/// Deterministic PRNG (tests must not depend on std:: distributions).
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed * 2654435761u + 1) {}
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  int64_t Range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Next() % (hi - lo + 1));
  }
  bool Chance(int percent) { return Range(1, 100) <= percent; }

 private:
  uint64_t state_;
};

/// Builds a random two-table database; r(k pk, v nullable), s(sk pk, fk,
/// w nullable). Sizes and NULL density vary with the seed.
void BuildRandomDb(Catalog* catalog, Rng* rng) {
  Table* r = *catalog->CreateTable("r", {{"k", DataType::kInt64, false},
                                         {"v", DataType::kInt64, true}});
  r->SetPrimaryKey({0});
  int64_t r_rows = rng->Range(0, 12);
  for (int64_t i = 1; i <= r_rows; ++i) {
    Value v = rng->Chance(25) ? Value::Null() : Value::Int64(rng->Range(0, 5));
    ASSERT_TRUE(r->Append({Value::Int64(i), v}).ok());
  }
  Table* s = *catalog->CreateTable("s", {{"sk", DataType::kInt64, false},
                                         {"fk", DataType::kInt64, false},
                                         {"w", DataType::kInt64, true}});
  s->SetPrimaryKey({0});
  int64_t s_rows = rng->Range(0, 30);
  for (int64_t i = 1; i <= s_rows; ++i) {
    Value w = rng->Chance(25) ? Value::Null() : Value::Int64(rng->Range(0, 9));
    ASSERT_TRUE(
        s->Append({Value::Int64(i), Value::Int64(rng->Range(1, 14)), w})
            .ok());
  }
  s->BuildIndex({1});
  catalog->InvalidateStats();
}

std::string RandomQuery(Rng* rng) {
  static const char* kCmp[] = {"<", "<=", ">", ">=", "=", "<>"};
  static const char* kAgg[] = {"sum", "count", "min", "max", "avg"};
  switch (rng->Range(0, 6)) {
    case 0:  // correlated scalar aggregate in WHERE
      return std::string("select k, v from r where ") +
             std::to_string(rng->Range(0, 20)) + " " +
             kCmp[rng->Range(0, 5)] + " (select " + kAgg[rng->Range(0, 4)] +
             "(w) from s where fk = r.k)";
    case 1:  // EXISTS / NOT EXISTS with extra conjunct
      return std::string("select k from r where ") +
             (rng->Chance(50) ? "" : "not ") +
             "exists (select * from s where fk = k and w >= " +
             std::to_string(rng->Range(0, 9)) + ")";
    case 2:  // IN / NOT IN over nullable column (3VL stress)
      return std::string("select k from r where v ") +
             (rng->Chance(50) ? "in" : "not in") + " (select w from s)";
    case 3:  // quantified comparison
      return std::string("select k from r where v ") +
             kCmp[rng->Range(0, 5)] + (rng->Chance(50) ? " all" : " any") +
             " (select w from s where fk = k)";
    case 4:  // scalar subquery in the select list
      return std::string("select k, (select ") + kAgg[rng->Range(0, 4)] +
             "(w) from s where fk = r.k) from r";
    case 5:  // HAVING with nested subquery threshold
      return std::string(
                 "select fk, count(*) from s group by fk having count(*) ") +
             kCmp[rng->Range(0, 5)] +
             " (select count(*) from r where v = " +
             std::to_string(rng->Range(0, 5)) + ")";
    default:  // uncorrelated derived table join
      return std::string(
                 "select k, total from r, (select fk, sum(w) as total "
                 "from s group by fk) as agg where fk = k and total >= ") +
             std::to_string(rng->Range(0, 10));
  }
}

std::vector<std::string> Canonical(const QueryResult& result) {
  std::vector<std::string> rows;
  for (const Row& row : result.rows) rows.push_back(RowToString(row));
  std::sort(rows.begin(), rows.end());
  return rows;
}

class RandomizedProperty : public ::testing::TestWithParam<int> {};

TEST_P(RandomizedProperty, AllConfigurationsAgreeOnRandomQueries) {
  Rng rng(GetParam());
  Catalog catalog;
  BuildRandomDb(&catalog, &rng);

  for (int q = 0; q < 8; ++q) {
    std::string sql = RandomQuery(&rng);
    SCOPED_TRACE(sql);
    QueryEngine reference(&catalog, EngineOptions::CorrelatedOnly());
    Result<QueryResult> expected = reference.Execute(sql);
    ASSERT_TRUE(expected.ok()) << expected.status().ToString();

    for (auto options :
         {EngineOptions::Full(), EngineOptions::NoGroupByOptimizations(),
          EngineOptions::NoSegmentApply()}) {
      QueryEngine engine(&catalog, options);
      Result<QueryResult> actual = engine.Execute(sql);
      ASSERT_TRUE(actual.ok()) << actual.status().ToString();
      EXPECT_EQ(Canonical(*expected), Canonical(*actual));
    }
    // Plans must also work without hash joins or index seeks.
    EngineOptions nl_only;
    nl_only.physical.use_hash_join = false;
    nl_only.physical.use_index_seek = false;
    QueryEngine nl_engine(&catalog, nl_only);
    Result<QueryResult> nl_result = nl_engine.Execute(sql);
    ASSERT_TRUE(nl_result.ok()) << nl_result.status().ToString();
    EXPECT_EQ(Canonical(*expected), Canonical(*nl_result));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomizedProperty,
                         ::testing::Range(0, 40));

/// Operator-kind skeleton of a physical plan (ids stripped) for comparing
/// plan shapes across column-id namespaces.
std::string PlanSkeleton(const PhysicalOp& op, int indent = 0) {
  std::string out(indent * 2, ' ');
  out += op.name() + "\n";
  for (const PhysicalOp* child : op.children()) {
    out += PlanSkeleton(*child, indent + 1);
  }
  return out;
}

TEST(SyntaxIndependence, EquivalentFormulationsConverge) {
  // The paper's three formulations of "customers who ordered more than X"
  // (section 1.1). With the full technique set the subquery form and the
  // outerjoin form must reach the *same* physical plan; all three must
  // produce identical results.
  Catalog catalog;
  Table* customer =
      *catalog.CreateTable("customer", {{"c_custkey", DataType::kInt64, false}});
  customer->SetPrimaryKey({0});
  for (int i = 1; i <= 50; ++i) {
    ASSERT_TRUE(customer->Append({Value::Int64(i)}).ok());
  }
  Table* orders =
      *catalog.CreateTable("orders", {{"o_orderkey", DataType::kInt64, false},
                                      {"o_custkey", DataType::kInt64, false},
                                      {"o_totalprice", DataType::kDouble, false}});
  orders->SetPrimaryKey({0});
  for (int i = 1; i <= 400; ++i) {
    ASSERT_TRUE(orders->Append({Value::Int64(i), Value::Int64(i % 50 + 1),
                                Value::Double((i % 97) * 10.0)})
                    .ok());
  }
  orders->BuildIndex({1});

  const std::string subquery_form =
      "select c_custkey from customer "
      "where 2000 < (select sum(o_totalprice) from orders "
      "              where o_custkey = c_custkey)";
  const std::string outerjoin_form =
      "select c_custkey from customer left outer join orders "
      "on o_custkey = c_custkey "
      "group by c_custkey having 2000 < sum(o_totalprice)";
  const std::string derived_form =
      "select c_custkey from customer, "
      "(select o_custkey from orders group by o_custkey "
      " having 2000 < sum(o_totalprice)) as agg "
      "where o_custkey = c_custkey";

  QueryEngine engine(&catalog, EngineOptions::Full());
  Result<QueryResult> r1 = engine.Execute(subquery_form);
  Result<QueryResult> r2 = engine.Execute(outerjoin_form);
  Result<QueryResult> r3 = engine.Execute(derived_form);
  ASSERT_TRUE(r1.ok() && r2.ok() && r3.ok());
  EXPECT_EQ(Canonical(*r1), Canonical(*r2));
  EXPECT_EQ(Canonical(*r1), Canonical(*r3));

  auto skeleton = [&engine](const std::string& sql) {
    Result<QueryEngine::Compiled> compiled = engine.Compile(sql);
    EXPECT_TRUE(compiled.ok());
    PhysicalBuildOptions physical;
    Result<PhysicalOpPtr> plan = BuildPhysicalPlan(
        compiled->optimized, *compiled->columns, physical);
    EXPECT_TRUE(plan.ok());
    return PlanSkeleton(**plan);
  };
  EXPECT_EQ(skeleton(subquery_form), skeleton(outerjoin_form));
}

}  // namespace
}  // namespace orq
