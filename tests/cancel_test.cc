// Cooperative cancellation and deadline tests: CancelToken semantics, the
// engine unwinding cleanly from cancel/deadline at Open and mid-execution
// (spools and hash arenas must be released — the ASan suite runs this
// file too), and engine reusability after a cancelled query.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>

#include "difftest/dataset.h"
#include "engine/engine.h"
#include "exec/cancel.h"
#include "obs/stats.h"

namespace orq {
namespace {

Catalog* SharedCatalog() {
  static Catalog* catalog = [] {
    auto* c = new Catalog();
    Status s = BuildDifftestCatalog(c, 20260806);
    if (!s.ok()) ADD_FAILURE() << s.ToString();
    return c;
  }();
  return catalog;
}

// A query whose full evaluation is far beyond any test budget: the
// five-way cross join is ~2x10^9 rows, and the cross-table expression
// keeps the local-aggregate rewrite from collapsing it into per-table
// counts (a bare COUNT(*) over a cross join is computed in microseconds
// as a product of counts). Returning quickly proves the cancellation
// actually interrupted execution.
const char kHugeCrossJoin[] =
    "SELECT MAX(l1.l_quantity + l2.l_quantity + l3.l_quantity + "
    "l4.l_quantity + l5.l_quantity) FROM lineitem l1, lineitem l2, "
    "lineitem l3, lineitem l4, lineitem l5";

// Moderately expensive query exercising hash join, hash aggregation, sort
// and a correlated subquery — the operators that hold arenas and spools a
// cancelled query must release.
const char kStatefulQuery[] =
    "SELECT c.c_nationkey, COUNT(*) "
    "FROM customer c, orders o, lineitem l "
    "WHERE c.c_custkey = o.o_custkey AND o.o_orderkey = l.l_orderkey "
    "AND (SELECT COUNT(*) FROM lineitem l2 "
    "     WHERE l2.l_orderkey = o.o_orderkey) >= 0 "
    "GROUP BY c.c_nationkey ORDER BY c.c_nationkey";

TEST(CancelTokenTest, StartsClear) {
  CancelToken token;
  EXPECT_FALSE(token.cancel_requested());
  EXPECT_TRUE(token.Check().ok());
}

TEST(CancelTokenTest, RequestCancelFires) {
  CancelToken token;
  token.RequestCancel();
  EXPECT_TRUE(token.cancel_requested());
  EXPECT_EQ(token.Check().code(), StatusCode::kCancelled);
}

TEST(CancelTokenTest, PastDeadlineFires) {
  CancelToken token;
  token.SetDeadlineNanos(ObsNowNanos() - 1);
  EXPECT_EQ(token.Check().code(), StatusCode::kDeadlineExceeded);
}

TEST(CancelTokenTest, FutureDeadlinePasses) {
  CancelToken token;
  token.SetTimeoutMs(60000);
  EXPECT_TRUE(token.Check().ok());
}

TEST(CancelTokenTest, DeadlineLatches) {
  // Once the deadline fired, re-arming a later deadline must not un-fire
  // it: an unwinding query keeps seeing the same DeadlineExceeded.
  CancelToken token;
  token.SetDeadlineNanos(ObsNowNanos() - 1);
  EXPECT_EQ(token.Check().code(), StatusCode::kDeadlineExceeded);
  token.SetTimeoutMs(60000);
  EXPECT_EQ(token.Check().code(), StatusCode::kDeadlineExceeded);
}

TEST(CancelTokenTest, DisarmedDeadlineNeverFires) {
  CancelToken token;
  token.SetTimeoutMs(0);
  EXPECT_TRUE(token.Check().ok());
}

TEST(CancelTokenTest, CancelWinsOverDeadline) {
  CancelToken token;
  token.SetTimeoutMs(60000);
  token.RequestCancel();
  EXPECT_EQ(token.Check().code(), StatusCode::kCancelled);
}

TEST(EngineCancelTest, PreCancelledQueryNeverExecutes) {
  QueryEngine engine(SharedCatalog());
  CancelToken token;
  token.RequestCancel();
  ExecControl control;
  control.cancel = &token;
  Result<QueryResult> result = engine.Execute(kHugeCrossJoin, control);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
}

TEST(EngineCancelTest, DeadlineInterruptsExecution) {
  QueryEngine engine(SharedCatalog());
  CancelToken token;
  token.SetTimeoutMs(50);
  ExecControl control;
  control.cancel = &token;
  const int64_t start = ObsNowNanos();
  Result<QueryResult> result = engine.Execute(kHugeCrossJoin, control);
  const double elapsed_ms = (ObsNowNanos() - start) / 1e6;
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  // Polling granularity is a batch / 64 rows, so the overshoot budget is
  // generous but bounded; a full run would take minutes.
  EXPECT_LT(elapsed_ms, 10000.0);
}

TEST(EngineCancelTest, ConcurrentCancelInterruptsExecution) {
  QueryEngine engine(SharedCatalog());
  CancelToken token;
  ExecControl control;
  control.cancel = &token;
  std::thread canceller([&token] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    token.RequestCancel();
  });
  Result<QueryResult> result = engine.Execute(kHugeCrossJoin, control);
  canceller.join();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
}

TEST(EngineCancelTest, CancelledStatefulQueryReleasesEverything) {
  // Cancels a query holding hash-join arenas, aggregation state, sort
  // buffers and a correlated spool. The assertion here is indirect: the
  // ASan job fails on any leak, and the engine must stay usable.
  QueryEngine engine(SharedCatalog());
  for (int64_t timeout_ms : {1, 2, 5}) {
    CancelToken token;
    token.SetTimeoutMs(timeout_ms);
    ExecControl control;
    control.cancel = &token;
    Result<QueryResult> result = engine.Execute(kStatefulQuery, control);
    if (result.ok()) continue;  // fast machine finished inside the budget
    EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  }
  // The same engine runs the same query to completion afterwards.
  Result<QueryResult> clean = engine.Execute(kStatefulQuery);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  EXPECT_GT(clean->rows.size(), 0u);
}

TEST(EngineCancelTest, DeadlineInterruptsParallelExecution) {
  // The token must reach exchange worker contexts, not only the
  // connection-facing root pipeline.
  EngineOptions options = EngineOptions::Full();
  options.exec.num_threads = 4;
  options.exec.morsel_rows = 8;
  QueryEngine engine(SharedCatalog(), options);
  CancelToken token;
  token.SetTimeoutMs(50);
  ExecControl control;
  control.cancel = &token;
  Result<QueryResult> result = engine.Execute(kHugeCrossJoin, control);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(EngineCancelTest, RowModeHonorsDeadline) {
  EngineOptions options = EngineOptions::Full();
  options.exec.batched = false;
  QueryEngine engine(SharedCatalog(), options);
  CancelToken token;
  token.SetTimeoutMs(50);
  ExecControl control;
  control.cancel = &token;
  Result<QueryResult> result = engine.Execute(kHugeCrossJoin, control);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(EngineCancelTest, UncontrolledExecuteStillWorks) {
  QueryEngine engine(SharedCatalog());
  Result<QueryResult> result =
      engine.Execute("SELECT COUNT(*) FROM nation");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->rows.size(), 1u);
}

}  // namespace
}  // namespace orq
