// Additional pushdown/pruning coverage beyond normalize_test: filters
// through UnionAll, Apply and Sort; select-over-project substitution;
// project merging; pruning through set operations.
#include <gtest/gtest.h>

#include <map>

#include "algebra/expr_util.h"
#include "algebra/printer.h"
#include "normalize/pushdown.h"
#include "tests/test_util.h"

namespace orq {
namespace {

int CountKind(const RelExprPtr& node, RelKind kind) {
  int n = node->kind == kind ? 1 : 0;
  for (const RelExprPtr& child : node->children) n += CountKind(child, kind);
  return n;
}

class PushdownTest : public ::testing::Test {
 protected:
  void SetUp() override {
    columns_ = std::make_shared<ColumnManager>();
    t_ = *catalog_.CreateTable("t", {{"a", DataType::kInt64, false},
                                     {"b", DataType::kInt64, true}});
    t_->SetPrimaryKey({0});
    for (int i = 1; i <= 8; ++i) {
      ASSERT_TRUE(t_->Append({Value::Int64(i),
                              i % 3 == 0 ? Value::Null()
                                         : Value::Int64(i * 2)})
                      .ok());
    }
  }

  RelExprPtr Get(std::map<std::string, ColumnId>* ids) {
    std::vector<ColumnId> cols;
    for (const ColumnSpec& spec : t_->columns()) {
      ColumnId id = columns_->NewColumn(spec.name, spec.type, spec.nullable);
      cols.push_back(id);
      (*ids)[spec.name] = id;
    }
    return MakeGet(t_, std::move(cols));
  }

  /// Pushdown must preserve semantics: execute before/after and compare.
  RelExprPtr CheckedPushdown(const RelExprPtr& tree) {
    std::vector<ColumnId> out = tree->OutputColumns();
    Result<std::vector<Row>> before = ExecLogical(tree, *columns_, out);
    EXPECT_TRUE(before.ok()) << before.status().ToString();
    RelExprPtr pushed = PushdownPredicates(tree, columns_.get());
    Result<std::vector<Row>> after = ExecLogical(pushed, *columns_, out);
    EXPECT_TRUE(after.ok()) << after.status().ToString();
    EXPECT_EQ(CanonicalRows(*before), CanonicalRows(*after))
        << PrintRelTree(*pushed, columns_.get());
    return pushed;
  }

  Catalog catalog_;
  ColumnManagerPtr columns_;
  Table* t_ = nullptr;
};

TEST_F(PushdownTest, SelectThroughProjectSubstitutes) {
  std::map<std::string, ColumnId> t;
  RelExprPtr get = Get(&t);
  ColumnId doubled = columns_->NewColumn("d", DataType::kInt64, true);
  RelExprPtr project = MakeProject(
      get,
      {ProjectItem{doubled, MakeArith(ArithOp::kMul,
                                      CRef(*columns_, t.at("a")),
                                      LitInt(2))}},
      ColumnSet{t.at("a")});
  RelExprPtr tree = MakeSelect(
      project,
      MakeCompare(CompareOp::kGt, CRef(doubled, DataType::kInt64),
                  LitInt(8)));
  RelExprPtr pushed = CheckedPushdown(tree);
  // The filter moved below the project, rewritten over a*2.
  EXPECT_EQ(pushed->kind, RelKind::kProject);
  EXPECT_EQ(pushed->children[0]->kind, RelKind::kSelect);
}

TEST_F(PushdownTest, SelectDistributesIntoUnionAll) {
  std::map<std::string, ColumnId> t1, t2;
  RelExprPtr g1 = Get(&t1);
  RelExprPtr g2 = Get(&t2);
  ColumnId out = columns_->NewColumn("u", DataType::kInt64, true);
  RelExprPtr uni =
      MakeUnionAll({g1, g2}, {out}, {{t1.at("a")}, {t2.at("a")}});
  RelExprPtr tree = MakeSelect(
      uni,
      MakeCompare(CompareOp::kLe, CRef(out, DataType::kInt64), LitInt(3)));
  RelExprPtr pushed = CheckedPushdown(tree);
  EXPECT_EQ(pushed->kind, RelKind::kUnionAll);
  EXPECT_EQ(CountKind(pushed, RelKind::kSelect), 2);
}

TEST_F(PushdownTest, OuterColumnsFilterBeforeApply) {
  std::map<std::string, ColumnId> outer, inner;
  RelExprPtr gout = Get(&outer);
  RelExprPtr ginn = Get(&inner);
  RelExprPtr apply = MakeApply(
      ApplyKind::kCross, gout,
      MakeSelect(ginn, Eq(CRef(*columns_, inner.at("a")),
                          CRef(*columns_, outer.at("a")))));
  RelExprPtr tree = MakeSelect(
      apply,
      MakeAnd2(MakeCompare(CompareOp::kLe,
                           CRef(*columns_, outer.at("a")), LitInt(4)),
               MakeCompare(CompareOp::kGt,
                           CRef(*columns_, inner.at("b")), LitInt(0))));
  RelExprPtr pushed = CheckedPushdown(tree);
  // The outer-only conjunct moved below the apply's left input.
  ASSERT_EQ(pushed->kind, RelKind::kSelect);  // inner-side conjunct stays
  const RelExprPtr& new_apply = pushed->children[0];
  ASSERT_EQ(new_apply->kind, RelKind::kApply);
  EXPECT_EQ(new_apply->children[0]->kind, RelKind::kSelect);
}

TEST_F(PushdownTest, SortWithLimitBlocksFilterPushdown) {
  std::map<std::string, ColumnId> t;
  RelExprPtr get = Get(&t);
  RelExprPtr top = MakeSort(
      get, {SortKey{CRef(*columns_, t.at("a")), true}}, 3);
  RelExprPtr tree = MakeSelect(
      top, MakeCompare(CompareOp::kGt, CRef(*columns_, t.at("a")),
                       LitInt(1)));
  RelExprPtr pushed = CheckedPushdown(tree);
  // Pushing below a TOP would change which rows survive: must not happen.
  EXPECT_EQ(pushed->kind, RelKind::kSelect);
  EXPECT_EQ(pushed->children[0]->kind, RelKind::kSort);
}

TEST_F(PushdownTest, SortWithoutLimitAllowsFilterPushdown) {
  std::map<std::string, ColumnId> t;
  RelExprPtr get = Get(&t);
  RelExprPtr sorted = MakeSort(
      get, {SortKey{CRef(*columns_, t.at("a")), true}}, -1);
  RelExprPtr tree = MakeSelect(
      sorted, MakeCompare(CompareOp::kGt, CRef(*columns_, t.at("a")),
                          LitInt(1)));
  RelExprPtr pushed = PushdownPredicates(tree, columns_.get());
  EXPECT_EQ(pushed->kind, RelKind::kSort);
}

TEST_F(PushdownTest, StackedProjectsMerge) {
  std::map<std::string, ColumnId> t;
  RelExprPtr get = Get(&t);
  ColumnId c1 = columns_->NewColumn("c1", DataType::kInt64, true);
  ColumnId c2 = columns_->NewColumn("c2", DataType::kInt64, true);
  RelExprPtr inner = MakeProject(
      get,
      {ProjectItem{c1, MakeArith(ArithOp::kAdd,
                                 CRef(*columns_, t.at("a")), LitInt(1))}},
      ColumnSet{t.at("a")});
  RelExprPtr outer = MakeProject(
      inner,
      {ProjectItem{c2, MakeArith(ArithOp::kMul, CRef(c1, DataType::kInt64),
                                 LitInt(10))}},
      ColumnSet{t.at("a")});
  RelExprPtr pushed = CheckedPushdown(outer);
  EXPECT_EQ(CountKind(pushed, RelKind::kProject), 1);
}

TEST_F(PushdownTest, IdentityProjectRemoved) {
  std::map<std::string, ColumnId> t;
  RelExprPtr get = Get(&t);
  RelExprPtr identity =
      MakeProject(get, {}, ColumnSet{t.at("a"), t.at("b")});
  RelExprPtr pushed = PushdownPredicates(identity, columns_.get());
  EXPECT_EQ(pushed->kind, RelKind::kGet);
}

TEST_F(PushdownTest, PruneThroughUnionAllNarrowsBranches) {
  std::map<std::string, ColumnId> t1, t2;
  RelExprPtr g1 = Get(&t1);
  RelExprPtr g2 = Get(&t2);
  ColumnId u1 = columns_->NewColumn("u1", DataType::kInt64, true);
  ColumnId u2 = columns_->NewColumn("u2", DataType::kInt64, true);
  RelExprPtr uni = MakeUnionAll({g1, g2}, {u1, u2},
                                {{t1.at("a"), t1.at("b")},
                                 {t2.at("a"), t2.at("b")}});
  // Only u1 is needed above.
  RelExprPtr tree = MakeProject(uni, {}, ColumnSet{u1});
  RelExprPtr pruned = PruneColumns(tree, columns_.get());
  const RelExpr* u = pruned.get();
  while (u->kind != RelKind::kUnionAll) u = u->children[0].get();
  EXPECT_EQ(u->out_cols.size(), 1u);
  EXPECT_EQ(u->input_maps[0].size(), 1u);
}

TEST_F(PushdownTest, PruneKeepsEverythingUnderExceptAll) {
  std::map<std::string, ColumnId> t1, t2;
  RelExprPtr g1 = Get(&t1);
  RelExprPtr g2 = Get(&t2);
  ColumnId u1 = columns_->NewColumn("u1", DataType::kInt64, true);
  ColumnId u2 = columns_->NewColumn("u2", DataType::kInt64, true);
  RelExprPtr except = MakeExceptAll(g1, g2, {u1, u2},
                                    {{t1.at("a"), t1.at("b")},
                                     {t2.at("a"), t2.at("b")}});
  RelExprPtr tree = MakeProject(except, {}, ColumnSet{u1});
  RelExprPtr pruned = PruneColumns(tree, columns_.get());
  // Bag difference compares whole rows: both columns must survive below.
  const RelExpr* e = pruned.get();
  while (e->kind != RelKind::kExceptAll) e = e->children[0].get();
  EXPECT_EQ(e->out_cols.size(), 2u);
}

}  // namespace
}  // namespace orq
