// Unit tests for the SQL lexer and parser.
#include <gtest/gtest.h>

#include "sql/lexer.h"
#include "sql/parser.h"

namespace orq {
namespace {

TEST(LexerTest, BasicTokens) {
  auto tokens = Tokenize("SELECT a, b2 FROM t WHERE x <= 10.5");
  ASSERT_TRUE(tokens.ok());
  ASSERT_GE(tokens->size(), 10u);
  EXPECT_EQ((*tokens)[0].type, TokenType::kKeyword);
  EXPECT_EQ((*tokens)[0].text, "SELECT");
  EXPECT_EQ((*tokens)[1].type, TokenType::kIdentifier);
  EXPECT_EQ((*tokens)[1].text, "a");
}

TEST(LexerTest, StringLiteralWithEscapedQuote) {
  auto tokens = Tokenize("select 'it''s'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[1].type, TokenType::kString);
  EXPECT_EQ((*tokens)[1].text, "it's");
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_FALSE(Tokenize("select 'oops").ok());
}

TEST(LexerTest, LineComments) {
  auto tokens = Tokenize("select 1 -- trailing comment\n, 2");
  ASSERT_TRUE(tokens.ok());
  size_t commas = 0;
  for (const Token& t : *tokens) {
    if (t.type == TokenType::kOperator && t.text == ",") ++commas;
  }
  EXPECT_EQ(commas, 1u);
}

TEST(LexerTest, TwoCharOperators) {
  auto tokens = Tokenize("a <> b != c <= d >= e");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[1].text, "<>");
  EXPECT_EQ((*tokens)[3].text, "<>");  // != normalized
  EXPECT_EQ((*tokens)[5].text, "<=");
  EXPECT_EQ((*tokens)[7].text, ">=");
}

TEST(ParserTest, SelectList) {
  auto stmt = ParseSql("select a, b as bb, c + 1 total from t");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  ASSERT_EQ((*stmt)->items.size(), 3u);
  EXPECT_EQ((*stmt)->items[1].alias, "bb");
  EXPECT_EQ((*stmt)->items[2].alias, "total");
}

TEST(ParserTest, OperatorPrecedence) {
  auto stmt = ParseSql("select 1 + 2 * 3 from t");
  ASSERT_TRUE(stmt.ok());
  const AstExpr& e = *(*stmt)->items[0].expr;
  ASSERT_EQ(e.kind, AstExprKind::kBinary);
  EXPECT_EQ(e.op, "+");
  EXPECT_EQ(e.children[1]->op, "*");
}

TEST(ParserTest, AndOrPrecedence) {
  auto stmt = ParseSql("select * from t where a = 1 or b = 2 and c = 3");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ((*stmt)->where->op, "OR");
  EXPECT_EQ((*stmt)->where->children[1]->op, "AND");
}

TEST(ParserTest, SubqueryKinds) {
  auto stmt = ParseSql(
      "select * from t where exists (select * from u) "
      "and x in (select y from u) "
      "and z > all (select w from u) "
      "and v = (select max(q) from u)");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
}

TEST(ParserTest, NotExistsFoldsNegation) {
  auto stmt = ParseSql("select * from t where not exists (select * from u)");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ((*stmt)->where->kind, AstExprKind::kExists);
  EXPECT_TRUE((*stmt)->where->negated);
}

TEST(ParserTest, NotInSubquery) {
  auto stmt = ParseSql("select * from t where x not in (select y from u)");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ((*stmt)->where->kind, AstExprKind::kInSubquery);
  EXPECT_TRUE((*stmt)->where->negated);
}

TEST(ParserTest, BetweenAndLike) {
  auto stmt = ParseSql(
      "select * from t where a between 1 and 10 and b like 'x%' "
      "and c not between 2 and 3 and d not like 'y%'");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
}

TEST(ParserTest, CaseExpression) {
  auto stmt = ParseSql(
      "select case when a = 1 then 'one' when a = 2 then 'two' "
      "else 'many' end from t");
  ASSERT_TRUE(stmt.ok());
  const AstExpr& e = *(*stmt)->items[0].expr;
  EXPECT_EQ(e.kind, AstExprKind::kCase);
  EXPECT_EQ(e.children.size(), 5u);  // 2 when/then pairs + else
}

TEST(ParserTest, JoinSyntax) {
  auto stmt = ParseSql(
      "select * from a left outer join b on a.x = b.y "
      "join c on c.z = a.x");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  ASSERT_EQ((*stmt)->from.size(), 1u);
  EXPECT_EQ((*stmt)->from[0]->kind, TableRefKind::kJoin);
}

TEST(ParserTest, DerivedTableRequiresAlias) {
  EXPECT_FALSE(ParseSql("select * from (select 1 from t)").ok());
  EXPECT_TRUE(ParseSql("select * from (select 1 x from t) as d").ok());
}

TEST(ParserTest, GroupByHavingOrderLimit) {
  auto stmt = ParseSql(
      "select a, count(*) from t group by a having count(*) > 2 "
      "order by 2 desc, a limit 10");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ((*stmt)->group_by.size(), 1u);
  ASSERT_NE((*stmt)->having, nullptr);
  EXPECT_EQ((*stmt)->order_by.size(), 2u);
  EXPECT_FALSE((*stmt)->order_by[0].ascending);
  EXPECT_EQ((*stmt)->limit, 10);
}

TEST(ParserTest, UnionAllChain) {
  auto stmt = ParseSql("select a from t union all select b from u");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ((*stmt)->set_op, SelectStmt::SetOp::kUnionAll);
  ASSERT_NE((*stmt)->set_rhs, nullptr);
}

TEST(ParserTest, DateLiteral) {
  auto stmt = ParseSql("select * from t where d >= date '1994-01-01'");
  ASSERT_TRUE(stmt.ok());
  EXPECT_FALSE(ParseSql("select date '1994-13-40'").ok());
}

TEST(ParserTest, QualifiedColumns) {
  auto stmt = ParseSql("select t1.a from t t1 where t1.b = 3");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ((*stmt)->items[0].expr->qualifier, "t1");
  EXPECT_EQ((*stmt)->items[0].expr->name, "a");
}

TEST(ParserTest, CountDistinct) {
  auto stmt = ParseSql("select count(distinct x) from t");
  ASSERT_TRUE(stmt.ok());
  EXPECT_TRUE((*stmt)->items[0].expr->distinct);
}

TEST(ParserTest, TrailingGarbageFails) {
  EXPECT_FALSE(ParseSql("select 1 from t blah blah blah ,").ok());
}

TEST(ParserTest, EmptyInputFails) {
  EXPECT_FALSE(ParseSql("").ok());
  EXPECT_FALSE(ParseSql("   -- just a comment").ok());
}

}  // namespace
}  // namespace orq
