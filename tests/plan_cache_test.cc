// Plan-cache tests: miss/hit accounting, literal-parameterized sharing
// (two spellings of one template hit the same canonical entry), catalog
// version invalidation, LRU eviction, prepared statements through
// Prepare/ExecuteParams, and the hot path skipping compile phases.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "engine/engine.h"
#include "engine/plan_cache.h"
#include "tpch/tpch_gen.h"

namespace orq {
namespace {

std::string RowsText(const QueryResult& result) {
  std::string out;
  for (const Row& row : result.rows) {
    for (const Value& v : row) out += v.ToString() + "|";
    out += "\n";
  }
  return out;
}

class PlanCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TpchGenOptions options;
    options.scale_factor = 0.002;
    ASSERT_TRUE(GenerateTpch(&catalog_, options).ok());
  }

  EngineOptions CachedOptions(int capacity = 128) {
    EngineOptions options = EngineOptions::Full();
    options.plan_cache.enable = true;
    options.plan_cache.capacity = capacity;
    return options;
  }

  Catalog catalog_;
};

TEST_F(PlanCacheTest, SecondExecutionHitsAndMatches) {
  QueryEngine engine(&catalog_, CachedOptions());
  const std::string sql =
      "select c_custkey from customer where c_acctbal > 100.0 "
      "order by c_custkey";
  Result<QueryResult> cold = engine.Execute(sql);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_EQ(engine.plan_cache_misses(), 1);
  EXPECT_EQ(engine.plan_cache_hits(), 0);
  Result<QueryResult> hot = engine.Execute(sql);
  ASSERT_TRUE(hot.ok()) << hot.status().ToString();
  EXPECT_EQ(engine.plan_cache_misses(), 1);
  EXPECT_EQ(engine.plan_cache_hits(), 1);
  EXPECT_EQ(cold->column_names, hot->column_names);
  EXPECT_EQ(RowsText(*cold), RowsText(*hot));
}

TEST_F(PlanCacheTest, LiteralVariantSharesCanonicalEntry) {
  QueryEngine engine(&catalog_, CachedOptions());
  // Different literals, same shape: the second spelling misses the text
  // level but hits the canonical (parameterized) level — a hit, not a
  // recompile — and still uses its own literal value.
  ASSERT_TRUE(engine
                  .Execute("select count(*) from customer "
                           "where c_custkey < 10")
                  .ok());
  Result<QueryResult> variant = engine.Execute(
      "select count(*) from customer where c_custkey < 10000000");
  ASSERT_TRUE(variant.ok()) << variant.status().ToString();
  EXPECT_EQ(engine.plan_cache_misses(), 1);
  EXPECT_EQ(engine.plan_cache_hits(), 1);
  // The substituted literal must be the new one, not the cached spelling's.
  ASSERT_EQ(variant->rows.size(), 1u);
  Result<QueryResult> all =
      engine.Execute("select count(*) from customer");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(RowsText(*variant), RowsText(*all));
}

TEST_F(PlanCacheTest, AliasDifferencesDoNotShareEntries) {
  QueryEngine engine(&catalog_, CachedOptions());
  Result<QueryResult> a =
      engine.Execute("select c_custkey as k from customer where c_custkey < 5");
  Result<QueryResult> b =
      engine.Execute("select c_custkey as j from customer where c_custkey < 5");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Same template modulo the output alias: the canonical form includes the
  // output signature, so these must not serve each other's entry.
  EXPECT_EQ(engine.plan_cache_hits(), 0);
  EXPECT_EQ(engine.plan_cache_misses(), 2);
  EXPECT_EQ(a->column_names, std::vector<std::string>{"k"});
  EXPECT_EQ(b->column_names, std::vector<std::string>{"j"});
}

TEST_F(PlanCacheTest, InvalidateStatsEvictsCachedPlans) {
  QueryEngine engine(&catalog_, CachedOptions());
  const std::string sql = "select count(*) from orders where o_custkey = 7";
  ASSERT_TRUE(engine.Execute(sql).ok());
  const int64_t before = catalog_.version();
  catalog_.InvalidateStats();
  EXPECT_GT(catalog_.version(), before);
  // The cached entry carries the old version: the lookup must discard it
  // and recompile, never serve a plan built against stale stats.
  ASSERT_TRUE(engine.Execute(sql).ok());
  EXPECT_EQ(engine.plan_cache_hits(), 0);
  EXPECT_EQ(engine.plan_cache_misses(), 2);
  EXPECT_GE(engine.plan_cache_evictions(), 1);
  // Re-cached under the new version: next execution hits again.
  ASSERT_TRUE(engine.Execute(sql).ok());
  EXPECT_EQ(engine.plan_cache_hits(), 1);
}

TEST_F(PlanCacheTest, CreateTableBumpsCatalogVersion) {
  const int64_t before = catalog_.version();
  Result<Table*> table = catalog_.CreateTable(
      "plan_cache_probe", {{"x", DataType::kInt64}});
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_GT(catalog_.version(), before);
}

TEST_F(PlanCacheTest, LruEvictsLeastRecentlyUsedEntry) {
  QueryEngine engine(&catalog_, CachedOptions(/*capacity=*/2));
  const std::string a = "select count(*) from customer";
  const std::string b = "select count(*) from orders";
  const std::string c = "select count(*) from nation";
  ASSERT_TRUE(engine.Execute(a).ok());
  ASSERT_TRUE(engine.Execute(b).ok());
  ASSERT_TRUE(engine.Execute(c).ok());  // evicts `a`, the LRU entry
  EXPECT_GE(engine.plan_cache_evictions(), 1);
  ASSERT_TRUE(engine.Execute(a).ok());  // recompiled
  EXPECT_EQ(engine.plan_cache_misses(), 4);
  ASSERT_TRUE(engine.Execute(c).ok());  // survived: most recent before `a`
  EXPECT_EQ(engine.plan_cache_hits(), 1);
}

TEST_F(PlanCacheTest, DisabledCacheCountsNothing) {
  QueryEngine engine(&catalog_);  // default options: cache off
  const std::string sql = "select count(*) from customer";
  ASSERT_TRUE(engine.Execute(sql).ok());
  ASSERT_TRUE(engine.Execute(sql).ok());
  EXPECT_EQ(engine.plan_cache_hits(), 0);
  EXPECT_EQ(engine.plan_cache_misses(), 0);
}

TEST_F(PlanCacheTest, PrepareInfersParamTypesAndExecuteParamsRuns) {
  QueryEngine engine(&catalog_, CachedOptions());
  Result<QueryEngine::PreparedInfo> info = engine.Prepare(
      "select c_name from customer where c_custkey = ? order by c_name");
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  ASSERT_EQ(info->param_types.size(), 1u);
  EXPECT_EQ(info->param_types[0], DataType::kInt64);
  EXPECT_EQ(info->output_names, std::vector<std::string>{"c_name"});

  Result<QueryResult> via_params = engine.ExecuteParams(
      "select c_name from customer where c_custkey = ? order by c_name",
      {Value::Int64(3)});
  ASSERT_TRUE(via_params.ok()) << via_params.status().ToString();
  // PREPARE warmed the cache, so the EXECUTE lane must have hit.
  EXPECT_GE(engine.plan_cache_hits(), 1);

  QueryEngine literal_engine(&catalog_);
  Result<QueryResult> via_literal = literal_engine.Execute(
      "select c_name from customer where c_custkey = 3 order by c_name");
  ASSERT_TRUE(via_literal.ok());
  EXPECT_EQ(RowsText(*via_params), RowsText(*via_literal));
}

TEST_F(PlanCacheTest, ExecuteParamsCoercesStringToDate) {
  QueryEngine engine(&catalog_, CachedOptions());
  const std::string sql =
      "select count(*) from orders where o_orderdate < ?";
  Result<QueryResult> via_params =
      engine.ExecuteParams(sql, {Value::String("1995-06-01")});
  ASSERT_TRUE(via_params.ok()) << via_params.status().ToString();
  QueryEngine literal_engine(&catalog_);
  Result<QueryResult> via_literal = literal_engine.Execute(
      "select count(*) from orders where o_orderdate < date '1995-06-01'");
  ASSERT_TRUE(via_literal.ok()) << via_literal.status().ToString();
  EXPECT_EQ(RowsText(*via_params), RowsText(*via_literal));
}

TEST_F(PlanCacheTest, ParameterCountAndTypeErrors) {
  QueryEngine engine(&catalog_, CachedOptions());
  const std::string sql =
      "select c_name from customer where c_custkey = ?";
  // Plain Execute cannot run a statement with parameter markers.
  Result<QueryResult> no_params = engine.Execute(sql);
  ASSERT_FALSE(no_params.ok());
  EXPECT_EQ(no_params.status().code(), StatusCode::kInvalidArgument);
  // Wrong arity.
  Result<QueryResult> too_many =
      engine.ExecuteParams(sql, {Value::Int64(1), Value::Int64(2)});
  ASSERT_FALSE(too_many.ok());
  EXPECT_EQ(too_many.status().code(), StatusCode::kInvalidArgument);
  // Un-coercible type: a string where an int64 comparison was inferred.
  Result<QueryResult> bad_type =
      engine.ExecuteParams(sql, {Value::String("not-a-number")});
  ASSERT_FALSE(bad_type.ok());
  EXPECT_EQ(bad_type.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(PlanCacheTest, HotPathSkipsCompilePhases) {
  QueryEngine engine(&catalog_, CachedOptions());
  const std::string sql =
      "select c_custkey from customer "
      "where 1000 < (select sum(o_totalprice) from orders "
      "              where o_custkey = c_custkey)";
  Result<AnalyzedQuery> cold = engine.ExecuteAnalyzed(sql);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_EQ(cold->profile.cache, CacheOutcome::kMiss);
  Result<AnalyzedQuery> hot = engine.ExecuteAnalyzed(sql);
  ASSERT_TRUE(hot.ok()) << hot.status().ToString();
  EXPECT_EQ(hot->profile.cache, CacheOutcome::kHit);
  EXPECT_EQ(RowsText(cold->result), RowsText(hot->result));

  auto compile_nanos = [](const QueryProfile& profile) {
    int64_t total = 0;
    for (QueryPhase phase :
         {QueryPhase::kParse, QueryPhase::kBind, QueryPhase::kApplyIntro,
          QueryPhase::kNormalize, QueryPhase::kOptimize}) {
      total += profile.phase(phase).wall_nanos;
    }
    return total;
  };
  const int64_t cold_compile = compile_nanos(cold->profile);
  const int64_t hot_compile = compile_nanos(hot->profile);
  EXPECT_GT(cold_compile, 0);
  // The hot path serves the optimized template straight from the cache:
  // parse through optimize never run, so their timers stay at zero.
  EXPECT_EQ(hot_compile, 0);
}

TEST_F(PlanCacheTest, CanonicalizeDistinguishesLiteralTypes) {
  // 1 (int64) and 1.0 (double) parameterize to different template types,
  // so the canonical forms must differ — serving one for the other would
  // change arithmetic semantics.
  QueryEngine engine(&catalog_, CachedOptions());
  ASSERT_TRUE(
      engine.Execute("select c_custkey + 1 from customer where c_custkey = 1")
          .ok());
  ASSERT_TRUE(engine
                  .Execute("select c_custkey + 1.0 from customer "
                           "where c_custkey = 1")
                  .ok());
  EXPECT_EQ(engine.plan_cache_hits(), 0);
  EXPECT_EQ(engine.plan_cache_misses(), 2);
}

}  // namespace
}  // namespace orq
