// Regression tests for admission-control ordering and accounting.
//
// The controller used to admit whichever queued waiter the condition
// variable happened to wake first, so under sustained load a slot could
// keep going to late arrivals while an early waiter starved. Admission is
// now ticket-based strict FIFO; the tests here pin the order. They also
// pin the outcome bookkeeping: every Admit call lands in exactly one of
// admitted / rejected / cancelled (queued waiters whose token fired used
// to vanish from the books entirely).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "exec/cancel.h"
#include "server/admission.h"

namespace orq {
namespace {

/// Spins until `admission.queued()` reaches `target` (bounded): the only
/// way to guarantee waiter N is in the ticket queue before waiter N+1
/// starts, which makes arrival order deterministic.
void WaitForQueued(const AdmissionController& admission, int target) {
  for (int spin = 0; spin < 10000; ++spin) {
    if (admission.queued() >= target) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  FAIL() << "queue never reached depth " << target;
}

TEST(AdmissionFifoTest, WaitersAdmitInArrivalOrder) {
  AdmissionOptions options;
  options.max_concurrent = 1;
  options.max_queued = 16;
  AdmissionController admission(options);
  // Park a holder in the single slot so every subsequent arrival queues.
  ASSERT_TRUE(admission.Admit(nullptr).ok());

  constexpr int kWaiters = 8;
  std::mutex order_mu;
  std::vector<int> admit_order;
  std::vector<std::thread> waiters;
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&, i] {
      Status admitted = admission.Admit(nullptr);
      EXPECT_TRUE(admitted.ok()) << admitted.ToString();
      {
        std::lock_guard<std::mutex> lock(order_mu);
        admit_order.push_back(i);
      }
      admission.Release();
    });
    // Waiter i must hold ticket i: don't start the next one until this
    // one is queued.
    WaitForQueued(admission, i + 1);
  }

  // Free the slot; the waiters now drain one at a time, each Release
  // handing the slot to the next ticket.
  admission.Release();
  for (std::thread& t : waiters) t.join();

  std::vector<int> expected;
  for (int i = 0; i < kWaiters; ++i) expected.push_back(i);
  EXPECT_EQ(admit_order, expected);
  EXPECT_EQ(admission.admitted(), kWaiters + 1);
  EXPECT_EQ(admission.running(), 0);
  EXPECT_EQ(admission.queued(), 0);
  EXPECT_EQ(admission.peak_queued(), kWaiters);
}

TEST(AdmissionFifoTest, FreshArrivalCannotOvertakeQueuedWaiter) {
  AdmissionOptions options;
  options.max_concurrent = 1;
  options.max_queued = 4;
  AdmissionController admission(options);
  ASSERT_TRUE(admission.Admit(nullptr).ok());

  std::atomic<bool> first_admitted{false};
  std::thread first([&] {
    EXPECT_TRUE(admission.Admit(nullptr).ok());
    first_admitted.store(true);
  });
  WaitForQueued(admission, 1);

  // Release the slot, then immediately race a fresh arrival against the
  // queued waiter. The fresh arrival must queue behind it — the freed
  // slot belongs to the head ticket.
  admission.Release();
  std::atomic<bool> second_admitted{false};
  std::thread second([&] {
    EXPECT_TRUE(admission.Admit(nullptr).ok());
    second_admitted.store(true);
  });
  first.join();
  EXPECT_TRUE(first_admitted.load());
  // The first waiter still holds its slot; the fresh arrival waits.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(second_admitted.load());
  admission.Release();
  second.join();
  admission.Release();
  EXPECT_EQ(admission.running(), 0);
}

TEST(AdmissionFifoTest, CancelledWaiterDoesNotBlockTheQueue) {
  AdmissionOptions options;
  options.max_concurrent = 1;
  options.max_queued = 4;
  AdmissionController admission(options);
  ASSERT_TRUE(admission.Admit(nullptr).ok());

  // Head waiter will cancel; the one behind it must still be admitted.
  CancelToken head_token;
  std::thread head([&] {
    Status waited = admission.Admit(&head_token);
    EXPECT_EQ(waited.code(), StatusCode::kCancelled);
  });
  WaitForQueued(admission, 1);
  std::atomic<bool> tail_admitted{false};
  std::thread tail([&] {
    EXPECT_TRUE(admission.Admit(nullptr).ok());
    tail_admitted.store(true);
  });
  WaitForQueued(admission, 2);

  head_token.RequestCancel();
  head.join();
  EXPECT_EQ(admission.cancelled(), 1);
  EXPECT_FALSE(tail_admitted.load());

  admission.Release();
  tail.join();
  EXPECT_TRUE(tail_admitted.load());
  admission.Release();
  EXPECT_EQ(admission.queued(), 0);
}

TEST(AdmissionAccountingTest, EveryOutcomeLandsInExactlyOneCounter) {
  AdmissionOptions options;
  options.max_concurrent = 1;
  options.max_queued = 1;
  AdmissionController admission(options);

  int64_t calls = 0;
  // Admitted immediately.
  ASSERT_TRUE(admission.Admit(nullptr).ok());
  ++calls;
  // Cancelled while queued.
  CancelToken token;
  token.SetTimeoutMs(20);
  EXPECT_EQ(admission.Admit(&token).code(), StatusCode::kDeadlineExceeded);
  ++calls;
  // Queue slot taken by a waiter, so the next arrival is rejected.
  std::thread waiter([&] { EXPECT_TRUE(admission.Admit(nullptr).ok()); });
  WaitForQueued(admission, 1);
  ++calls;
  EXPECT_EQ(admission.Admit(nullptr).code(), StatusCode::kUnavailable);
  ++calls;
  admission.Release();
  waiter.join();
  admission.Release();
  // Rejected after shutdown.
  admission.Shutdown();
  EXPECT_EQ(admission.Admit(nullptr).code(), StatusCode::kUnavailable);
  ++calls;

  EXPECT_EQ(admission.admitted(), 2);
  EXPECT_EQ(admission.cancelled(), 1);
  EXPECT_EQ(admission.rejected(), 2);
  EXPECT_EQ(admission.admitted() + admission.rejected() +
                admission.cancelled(),
            calls);
}

}  // namespace
}  // namespace orq
