// Unit tests for the scalar evaluator's three-valued logic and arithmetic.
#include <gtest/gtest.h>

#include "exec/evaluator.h"

namespace orq {
namespace {

Value Eval(const ScalarExprPtr& expr) {
  Evaluator evaluator(expr, {});
  ExecContext ctx;
  Result<Value> v = evaluator.Eval({}, &ctx);
  EXPECT_TRUE(v.ok()) << v.status().ToString();
  return v.ok() ? *v : Value();
}

Status EvalError(const ScalarExprPtr& expr) {
  Evaluator evaluator(expr, {});
  ExecContext ctx;
  Result<Value> v = evaluator.Eval({}, &ctx);
  EXPECT_FALSE(v.ok());
  return v.status();
}

ScalarExprPtr NullInt() { return LitNull(DataType::kInt64); }
ScalarExprPtr NullBool() { return LitNull(DataType::kBool); }

TEST(EvaluatorTest, ComparisonWithNullIsNull) {
  EXPECT_TRUE(Eval(Eq(NullInt(), LitInt(1))).is_null());
  EXPECT_TRUE(Eval(Eq(LitInt(1), NullInt())).is_null());
  EXPECT_TRUE(Eval(Eq(NullInt(), NullInt())).is_null());
}

TEST(EvaluatorTest, ThreeValuedAnd) {
  // false AND null = false (not null!)
  EXPECT_FALSE(Eval(MakeAnd2(LitBool(false), NullBool())).bool_value());
  EXPECT_FALSE(Eval(MakeAnd2(NullBool(), LitBool(false))).bool_value());
  EXPECT_TRUE(Eval(MakeAnd2(LitBool(true), NullBool())).is_null());
  EXPECT_TRUE(Eval(MakeAnd2(LitBool(true), LitBool(true))).bool_value());
}

TEST(EvaluatorTest, ThreeValuedOr) {
  // true OR null = true
  EXPECT_TRUE(Eval(MakeOr({LitBool(true), NullBool()})).bool_value());
  EXPECT_TRUE(Eval(MakeOr({NullBool(), LitBool(true)})).bool_value());
  EXPECT_TRUE(Eval(MakeOr({LitBool(false), NullBool()})).is_null());
  EXPECT_FALSE(Eval(MakeOr({LitBool(false), LitBool(false)})).bool_value());
}

TEST(EvaluatorTest, NotNullIsNull) {
  EXPECT_TRUE(Eval(MakeNot(NullBool())).is_null());
  EXPECT_FALSE(Eval(MakeNot(LitBool(true))).bool_value());
}

TEST(EvaluatorTest, IsNullOperators) {
  EXPECT_TRUE(Eval(MakeIsNull(NullInt())).bool_value());
  EXPECT_FALSE(Eval(MakeIsNull(LitInt(0))).bool_value());
  EXPECT_TRUE(Eval(MakeIsNotNull(LitInt(0))).bool_value());
}

TEST(EvaluatorTest, IntegerArithmetic) {
  EXPECT_EQ(Eval(MakeArith(ArithOp::kAdd, LitInt(2), LitInt(3))).int64_value(),
            5);
  EXPECT_EQ(Eval(MakeArith(ArithOp::kMul, LitInt(4), LitInt(5))).int64_value(),
            20);
  EXPECT_EQ(Eval(MakeArith(ArithOp::kDiv, LitInt(7), LitInt(2))).int64_value(),
            3);  // truncating
}

TEST(EvaluatorTest, MixedArithmeticPromotesToDouble) {
  Value v = Eval(MakeArith(ArithOp::kAdd, LitInt(2), LitDouble(0.5)));
  EXPECT_EQ(v.type(), DataType::kDouble);
  EXPECT_DOUBLE_EQ(v.double_value(), 2.5);
}

TEST(EvaluatorTest, ArithmeticWithNullIsNull) {
  EXPECT_TRUE(Eval(MakeArith(ArithOp::kAdd, NullInt(), LitInt(1))).is_null());
}

TEST(EvaluatorTest, DivisionByZeroIsRuntimeError) {
  EXPECT_EQ(EvalError(MakeArith(ArithOp::kDiv, LitInt(1), LitInt(0))).code(),
            StatusCode::kRuntimeError);
  EXPECT_EQ(EvalError(MakeArith(ArithOp::kDiv, LitDouble(1), LitDouble(0)))
                .code(),
            StatusCode::kRuntimeError);
}

TEST(EvaluatorTest, DateArithmetic) {
  Value jan1 = Value::Date(*ParseDate("1994-01-01"));
  Value v = Eval(MakeArith(ArithOp::kAdd, Lit(jan1), LitInt(31)));
  EXPECT_EQ(FormatDate(v.date_value()), "1994-02-01");
  Value diff = Eval(MakeArith(ArithOp::kSub,
                              Lit(Value::Date(*ParseDate("1994-03-01"))),
                              Lit(jan1)));
  EXPECT_EQ(diff.int64_value(), 59);
}

TEST(EvaluatorTest, CaseIsLazy) {
  // The ELSE branch divides by zero; a matching WHEN must avoid it.
  ScalarExprPtr expr = MakeCase(
      {LitBool(true), LitInt(42),
       MakeArith(ArithOp::kDiv, LitInt(1), LitInt(0))},
      DataType::kInt64);
  EXPECT_EQ(Eval(expr).int64_value(), 42);
}

TEST(EvaluatorTest, CaseNoMatchNoElseIsNull) {
  ScalarExprPtr expr =
      MakeCase({LitBool(false), LitInt(1)}, DataType::kInt64);
  EXPECT_TRUE(Eval(expr).is_null());
}

TEST(EvaluatorTest, CaseNullConditionDoesNotMatch) {
  ScalarExprPtr expr =
      MakeCase({NullBool(), LitInt(1), LitInt(2)}, DataType::kInt64);
  EXPECT_EQ(Eval(expr).int64_value(), 2);
}

TEST(EvaluatorTest, InListSemantics) {
  // 1 IN (1, NULL) = true
  EXPECT_TRUE(
      Eval(MakeInList(LitInt(1), {LitInt(1), NullInt()})).bool_value());
  // 2 IN (1, NULL) = NULL  (the NULL could be 2)
  EXPECT_TRUE(Eval(MakeInList(LitInt(2), {LitInt(1), NullInt()})).is_null());
  // 2 IN (1, 3) = false
  EXPECT_FALSE(
      Eval(MakeInList(LitInt(2), {LitInt(1), LitInt(3)})).bool_value());
  // NULL IN (anything) = NULL
  EXPECT_TRUE(Eval(MakeInList(NullInt(), {LitInt(1)})).is_null());
}

TEST(EvaluatorTest, LikeNullPropagation) {
  EXPECT_TRUE(Eval(MakeLike(LitNull(DataType::kString),
                            LitString("%"))).is_null());
  EXPECT_TRUE(
      Eval(MakeLike(LitString("x"), LitString("x%"))).bool_value());
}

TEST(EvaluatorTest, NegateTypes) {
  EXPECT_EQ(Eval(MakeNegate(LitInt(5))).int64_value(), -5);
  EXPECT_DOUBLE_EQ(Eval(MakeNegate(LitDouble(2.5))).double_value(), -2.5);
  EXPECT_TRUE(Eval(MakeNegate(NullInt())).is_null());
}

TEST(EvaluatorTest, ColumnRefResolvesThroughLayoutThenParams) {
  Evaluator layout_eval(CRef(7, DataType::kInt64), {7});
  ExecContext ctx;
  Row row = {Value::Int64(99)};
  ASSERT_TRUE(layout_eval.Eval(row, &ctx).ok());
  EXPECT_EQ(layout_eval.Eval(row, &ctx)->int64_value(), 99);

  // Not in layout: falls back to correlated parameters.
  Evaluator param_eval(CRef(8, DataType::kInt64), {7});
  ctx.params[8] = Value::Int64(42);
  EXPECT_EQ(param_eval.Eval(row, &ctx)->int64_value(), 42);
}

TEST(EvaluatorTest, UnresolvedColumnIsInternalError) {
  Evaluator evaluator(CRef(5, DataType::kInt64), {});
  ExecContext ctx;
  EXPECT_EQ(evaluator.Eval({}, &ctx).status().code(), StatusCode::kInternal);
}

TEST(EvaluatorTest, PredicateTreatsNullAsNotTrue) {
  Evaluator evaluator(NullBool(), {});
  ExecContext ctx;
  EXPECT_FALSE(*evaluator.EvalPredicate({}, &ctx));
}

}  // namespace
}  // namespace orq
