// Unit tests for the cost model: the estimates only need to *rank*
// alternatives correctly, and these tests pin down the rankings the
// paper's optimizations depend on.
#include <gtest/gtest.h>

#include <map>

#include "opt/cost.h"

namespace orq {
namespace {

class CostTest : public ::testing::Test {
 protected:
  void SetUp() override {
    columns_ = std::make_shared<ColumnManager>();
    small_ = *catalog_.CreateTable("small", {{"sk", DataType::kInt64, false},
                                             {"sv", DataType::kInt64, false}});
    small_->SetPrimaryKey({0});
    for (int i = 1; i <= 20; ++i) {
      ASSERT_TRUE(
          small_->Append({Value::Int64(i), Value::Int64(i % 5)}).ok());
    }
    big_ = *catalog_.CreateTable("big", {{"bk", DataType::kInt64, false},
                                         {"bfk", DataType::kInt64, false},
                                         {"bv", DataType::kInt64, false}});
    big_->SetPrimaryKey({0});
    for (int i = 1; i <= 5000; ++i) {
      ASSERT_TRUE(big_->Append({Value::Int64(i), Value::Int64(i % 20 + 1),
                                Value::Int64(i % 100)})
                      .ok());
    }
    big_->BuildIndex({1});
  }

  RelExprPtr Get(Table* table, std::map<std::string, ColumnId>* ids) {
    std::vector<ColumnId> cols;
    for (const ColumnSpec& spec : table->columns()) {
      ColumnId id = columns_->NewColumn(spec.name, spec.type, spec.nullable);
      cols.push_back(id);
      (*ids)[spec.name] = id;
    }
    return MakeGet(table, std::move(cols));
  }

  ScalarExprPtr Ref(const std::map<std::string, ColumnId>& ids,
                    const std::string& name) {
    return CRef(*columns_, ids.at(name));
  }

  Catalog catalog_;
  ColumnManagerPtr columns_;
  Table* small_ = nullptr;
  Table* big_ = nullptr;
};

TEST_F(CostTest, ScanRowsMatchTable) {
  CostModel cost(&catalog_);
  std::map<std::string, ColumnId> b;
  RelExprPtr get = Get(big_, &b);
  EXPECT_DOUBLE_EQ(cost.Estimate(get).rows, 5000.0);
  EXPECT_GT(cost.Estimate(get).cost, 0.0);
}

TEST_F(CostTest, EqualitySelectivityUsesDistinctCounts) {
  CostModel cost(&catalog_);
  std::map<std::string, ColumnId> b;
  RelExprPtr get = Get(big_, &b);
  // bk is unique: equality selects ~1 row. bv has 100 values: ~50 rows.
  RelExprPtr by_key = MakeSelect(get, Eq(Ref(b, "bk"), LitInt(7)));
  RelExprPtr by_val = MakeSelect(get, Eq(Ref(b, "bv"), LitInt(7)));
  EXPECT_LT(cost.Estimate(by_key).rows, 2.0);
  EXPECT_NEAR(cost.Estimate(by_val).rows, 50.0, 15.0);
}

TEST_F(CostTest, RangeSelectivityIsFractional) {
  CostModel cost(&catalog_);
  std::map<std::string, ColumnId> b;
  RelExprPtr get = Get(big_, &b);
  RelExprPtr ranged = MakeSelect(
      get, MakeCompare(CompareOp::kLt, Ref(b, "bv"), LitInt(10)));
  double rows = cost.Estimate(ranged).rows;
  EXPECT_GT(rows, 100.0);
  EXPECT_LT(rows, 5000.0);
}

TEST_F(CostTest, FkJoinCardinalityNearBigSide) {
  CostModel cost(&catalog_);
  std::map<std::string, ColumnId> s, b;
  RelExprPtr gs = Get(small_, &s);
  RelExprPtr gb = Get(big_, &b);
  RelExprPtr join = MakeJoin(JoinKind::kInner, gs, gb,
                             Eq(Ref(b, "bfk"), Ref(s, "sk")));
  // FK join: about one big row per (small, matching) pair = ~5000.
  EXPECT_NEAR(cost.Estimate(join).rows, 5000.0, 1500.0);
}

TEST_F(CostTest, GroupByCardinalityFromDistinct) {
  CostModel cost(&catalog_);
  std::map<std::string, ColumnId> b;
  RelExprPtr get = Get(big_, &b);
  RelExprPtr group = MakeGroupBy(get, ColumnSet{b.at("bfk")}, {});
  EXPECT_NEAR(cost.Estimate(group).rows, 20.0, 2.0);
  RelExprPtr scalar = MakeScalarGroupBy(get, {});
  EXPECT_DOUBLE_EQ(cost.Estimate(scalar).rows, 1.0);
}

TEST_F(CostTest, IndexedCorrelatedInnerBeatsScanBasedApply) {
  CostModel cost(&catalog_);
  // Apply(small, sigma(bfk = sk)(big)): with an index on bfk, the per-row
  // probe must be priced far below a full scan of big.
  std::map<std::string, ColumnId> s, b;
  RelExprPtr gs = Get(small_, &s);
  RelExprPtr gb = Get(big_, &b);
  RelExprPtr indexed_inner =
      MakeSelect(gb, Eq(Ref(b, "bfk"), Ref(s, "sk")));
  RelExprPtr apply = MakeApply(ApplyKind::kCross, gs, indexed_inner);
  // No-index variant: same shape against a column without an index.
  std::map<std::string, ColumnId> s2, b2;
  RelExprPtr gs2 = Get(small_, &s2);
  RelExprPtr gb2 = Get(big_, &b2);
  RelExprPtr scan_inner =
      MakeSelect(gb2, Eq(Ref(b2, "bv"), Ref(s2, "sk")));
  RelExprPtr apply2 = MakeApply(ApplyKind::kCross, gs2, scan_inner);
  EXPECT_LT(cost.Estimate(apply).cost * 10, cost.Estimate(apply2).cost);
}

TEST_F(CostTest, DecorrelatedBeatsUnindexedApplyForLargeOuter) {
  CostModel cost(&catalog_);
  // Unindexed correlated execution of big x big must cost far more than
  // a hash join of the same inputs — the ranking behind apply removal.
  std::map<std::string, ColumnId> a, b;
  RelExprPtr ga = Get(big_, &a);
  RelExprPtr gb = Get(big_, &b);
  RelExprPtr apply = MakeApply(
      ApplyKind::kCross, ga,
      MakeSelect(gb, Eq(Ref(b, "bv"), Ref(a, "bv"))));
  std::map<std::string, ColumnId> c, d;
  RelExprPtr gc = Get(big_, &c);
  RelExprPtr gd = Get(big_, &d);
  RelExprPtr join = MakeJoin(JoinKind::kInner, gc, gd,
                             Eq(Ref(c, "bv"), Ref(d, "bv")));
  EXPECT_LT(cost.Estimate(join).cost * 10, cost.Estimate(apply).cost);
}

TEST_F(CostTest, EstimateDistinctTracesThroughOperators) {
  CostModel cost(&catalog_);
  std::map<std::string, ColumnId> b;
  RelExprPtr get = Get(big_, &b);
  EXPECT_NEAR(cost.EstimateDistinct(get, b.at("bfk")), 20.0, 1.0);
  RelExprPtr filtered = MakeSelect(
      get, MakeCompare(CompareOp::kLt, Ref(b, "bv"), LitInt(1)));
  // Distinct count is capped by the (reduced) row estimate.
  EXPECT_LE(cost.EstimateDistinct(filtered, b.at("bk")),
            cost.Estimate(filtered).rows);
}

TEST_F(CostTest, EstimatesAreCachedPerNode) {
  CostModel cost(&catalog_);
  std::map<std::string, ColumnId> b;
  RelExprPtr get = Get(big_, &b);
  const PlanEstimate& first = cost.Estimate(get);
  const PlanEstimate& second = cost.Estimate(get);
  EXPECT_EQ(&first, &second);
}

}  // namespace
}  // namespace orq
