// Tests for the observability subsystem: per-operator runtime stats,
// rule/phase tracing, EXPLAIN ANALYZE, and the stats JSON pipeline.
#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "obs/json.h"
#include "obs/report.h"
#include "obs/stats.h"
#include "obs/trace.h"
#include "tpch/tpch_gen.h"

namespace orq {
namespace {

std::vector<std::string> RowsToStrings(const std::vector<Row>& rows) {
  std::vector<std::string> out;
  out.reserve(rows.size());
  for (const Row& row : rows) {
    std::string s;
    for (const Value& v : row) {
      s += v.ToString();
      s += '|';
    }
    out.push_back(std::move(s));
  }
  return out;
}

void ForEachNode(const PlanStatsNode& node,
                 const std::function<void(const PlanStatsNode&)>& fn) {
  fn(node);
  for (const PlanStatsNode& child : node.children) ForEachNode(child, fn);
}

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TpchGenOptions options;
    options.scale_factor = 0.002;
    ASSERT_TRUE(GenerateTpch(&catalog_, options).ok());
  }

  Catalog catalog_;
  const std::string subquery_sql_ =
      "select c_custkey from customer "
      "where 1000 < (select sum(o_totalprice) from orders "
      "              where o_custkey = c_custkey)";
};

// (a) The per-operator row counts must aggregate to the engine's
// rows_produced work metric, and the analyzed metric must equal the plain
// execution's (the two accountings are one mechanism now).
TEST_F(ObsTest, PerOpRowsSumMatchesRowsProduced) {
  QueryEngine engine(&catalog_);
  Result<QueryResult> plain = engine.Execute(subquery_sql_);
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  Result<AnalyzedQuery> analyzed = engine.ExecuteAnalyzed(subquery_sql_);
  ASSERT_TRUE(analyzed.ok()) << analyzed.status().ToString();

  EXPECT_GT(analyzed->result.rows_produced, 0);
  EXPECT_EQ(TotalRowsOut(analyzed->plan), analyzed->result.rows_produced);
  EXPECT_EQ(plain->rows_produced, analyzed->result.rows_produced);
}

// Every operator the execution touched reports balanced Open/Close calls
// and a row count consistent with its Next calls.
TEST_F(ObsTest, OperatorCountersAreConsistent) {
  QueryEngine engine(&catalog_);
  Result<AnalyzedQuery> analyzed = engine.ExecuteAnalyzed(subquery_sql_);
  ASSERT_TRUE(analyzed.ok());
  int64_t ops = 0;
  ForEachNode(analyzed->plan, [&](const PlanStatsNode& node) {
    ++ops;
    EXPECT_EQ(node.stats.open_calls, node.stats.close_calls) << node.name;
    // next_calls counts pulls, not rows: a NextBatch pull returns up to a
    // batch of rows, so next_calls sits well below rows_out on batched
    // operators (that divergence is the point of the counter). Every pull
    // returns at most one batch.
    EXPECT_LE(node.stats.rows_out,
              node.stats.next_calls * kDefaultBatchRows)
        << node.name;
    if (node.stats.rows_out > 0) {
      EXPECT_GE(node.stats.next_calls, 1) << node.name;
    }
    EXPECT_GE(node.stats.wall_nanos, node.self_wall_nanos) << node.name;
    EXPECT_GE(node.self_wall_nanos, 0) << node.name;
  });
  EXPECT_GE(ops, 3);
  // The default engine batches: some operator must have moved many rows
  // per pull, i.e. rows_out well above next_calls.
  bool diverged = false;
  ForEachNode(analyzed->plan, [&](const PlanStatsNode& node) {
    if (node.stats.rows_out > node.stats.next_calls) diverged = true;
  });
  EXPECT_TRUE(diverged);
}

// Under correlated-only execution the inner side re-opens once per outer
// row — the re-open counter is what makes Fig. 1's N+1 pattern visible.
TEST_F(ObsTest, CorrelatedExecutionShowsReopens) {
  QueryEngine engine(&catalog_, EngineOptions::CorrelatedOnly());
  Result<AnalyzedQuery> analyzed = engine.ExecuteAnalyzed(subquery_sql_);
  ASSERT_TRUE(analyzed.ok());
  int64_t max_opens = 0;
  ForEachNode(analyzed->plan, [&](const PlanStatsNode& node) {
    if (node.stats.open_calls > max_opens) max_opens = node.stats.open_calls;
  });
  // SF 0.002 has 300 customers; the correlated inner opens once per row.
  EXPECT_EQ(max_opens, 300);
}

// (b) The rule trace records the Apply-removal sequence the paper's Fig. 4
// identities prescribe for a correlated scalar aggregate: pushdown into
// the Apply (identity 2), GroupBy pull-up (identity 9), and the final
// Apply-to-join conversion (identity 4).
TEST_F(ObsTest, TraceRecordsApplyRemovalSequence) {
  QueryEngine engine(&catalog_);
  Result<AnalyzedQuery> analyzed = engine.ExecuteAnalyzed(subquery_sql_);
  ASSERT_TRUE(analyzed.ok());
  ASSERT_FALSE(analyzed->trace.empty());

  std::vector<std::string> normalize_rules;
  for (const TraceEvent* event :
       analyzed->trace.RuleFirings(TraceEvent::Stage::kNormalize)) {
    normalize_rules.push_back(event->rule);
  }
  EXPECT_EQ(normalize_rules,
            (std::vector<std::string>{"identity(2)", "identity(9)",
                                      "identity(4)"}));

  // Phase events bracket the pipeline; apply_removal must appear and must
  // have changed the tree.
  bool saw_apply_removal = false;
  for (const TraceEvent& event : analyzed->trace.events()) {
    if (event.kind == TraceEvent::Kind::kPhase &&
        event.rule == "apply_removal") {
      saw_apply_removal = true;
      EXPECT_GT(event.nodes_before, 0);
      EXPECT_GT(event.nodes_after, 0);
    }
  }
  EXPECT_TRUE(saw_apply_removal);
}

// Optimizer firings carry cost-before/cost-after; accepted rules must
// report an improvement.
TEST_F(ObsTest, OptimizerTraceReportsCostImprovements) {
  QueryEngine engine(&catalog_);
  Result<AnalyzedQuery> analyzed = engine.ExecuteAnalyzed(subquery_sql_);
  ASSERT_TRUE(analyzed.ok());
  for (const TraceEvent* event :
       analyzed->trace.RuleFirings(TraceEvent::Stage::kOptimize)) {
    EXPECT_GE(event->cost_before, 0.0) << event->rule;
    EXPECT_LT(event->cost_after, event->cost_before) << event->rule;
  }
}

// (c) With stats disabled (no collector on the context) execution must
// behave exactly as before: same rows, same rows_produced, and nothing
// recorded anywhere.
TEST_F(ObsTest, DisabledStatsIdenticalResultsAndZeroEntries) {
  QueryEngine engine(&catalog_);
  Result<QueryResult> plain = engine.Execute(subquery_sql_);
  ASSERT_TRUE(plain.ok());
  Result<AnalyzedQuery> analyzed = engine.ExecuteAnalyzed(subquery_sql_);
  ASSERT_TRUE(analyzed.ok());

  EXPECT_EQ(plain->column_names, analyzed->result.column_names);
  EXPECT_EQ(RowsToStrings(plain->rows), RowsToStrings(analyzed->result.rows));
  EXPECT_EQ(plain->rows_produced, analyzed->result.rows_produced);

  // Executing a compiled plan without attaching the collector must leave
  // it untouched.
  Result<QueryEngine::Compiled> compiled = engine.Compile(subquery_sql_);
  ASSERT_TRUE(compiled.ok());
  StatsCollector collector;
  Result<QueryResult> uninstrumented = engine.ExecuteCompiled(*compiled);
  ASSERT_TRUE(uninstrumented.ok());
  EXPECT_TRUE(collector.empty());
  EXPECT_EQ(collector.TotalRowsOut(), 0);
  EXPECT_EQ(uninstrumented->rows_produced, plain->rows_produced);
}

// Compile-time artifacts: tracing must not alter what the engine produces
// (trace sinks are write-only observers).
TEST_F(ObsTest, TracingDoesNotChangePlans) {
  QueryEngine engine(&catalog_);
  Result<std::string> without = engine.Explain(subquery_sql_);
  ASSERT_TRUE(without.ok());
  // ExecuteAnalyzed compiles with trace attached; Explain afterwards must
  // render the same plans.
  ASSERT_TRUE(engine.ExecuteAnalyzed(subquery_sql_).ok());
  Result<std::string> after = engine.Explain(subquery_sql_);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*without, *after);
}

TEST_F(ObsTest, ExplainAnalyzeRendersActualsAndEstimates) {
  QueryEngine engine(&catalog_);
  Result<std::string> text = engine.ExplainAnalyze(subquery_sql_);
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  for (const char* marker :
       {"actual rows=", "est rows=", "est cost=", "time=", "opens=",
        "Rewrite trace", "identity(2)", "rows_produced="}) {
    EXPECT_NE(text->find(marker), std::string::npos) << marker;
  }
}

TEST_F(ObsTest, HashOperatorsReportPeakCardinality) {
  QueryEngine engine(&catalog_);
  // The decorrelated plan aggregates orders by custkey: some hash-based
  // operator must have held a nonzero peak.
  Result<AnalyzedQuery> analyzed = engine.ExecuteAnalyzed(subquery_sql_);
  ASSERT_TRUE(analyzed.ok());
  int64_t max_peak = 0;
  ForEachNode(analyzed->plan, [&](const PlanStatsNode& node) {
    if (node.stats.peak_cardinality > max_peak) {
      max_peak = node.stats.peak_cardinality;
    }
  });
  EXPECT_GT(max_peak, 0);
}

TEST_F(ObsTest, AnalyzedJsonIsValidAndRoundTrips) {
  QueryEngine engine(&catalog_);
  Result<AnalyzedQuery> analyzed = engine.ExecuteAnalyzed(subquery_sql_);
  ASSERT_TRUE(analyzed.ok());
  const std::string json = analyzed->ToJson("obs_test");
  std::string error;
  EXPECT_TRUE(ValidateJson(json, &error)) << error;
  // Key schema fields present (DESIGN.md contract).
  for (const char* field :
       {"\"label\":\"obs_test\"", "\"sql\":", "\"rows_produced\":",
        "\"plan\":", "\"trace\":", "\"actual_rows\":", "\"est_rows\":",
        "\"wall_nanos\":", "\"children\":", "\"rule\":"}) {
    EXPECT_NE(json.find(field), std::string::npos) << field;
  }
}

TEST(JsonValidatorTest, AcceptsWellFormedDocuments) {
  std::string error;
  for (const char* doc :
       {"{}", "[]", "null", "true", "-1.5e3", "\"a\\\"b\"",
        "{\"a\":[1,2,{\"b\":null}],\"c\":\"\\u0041\"}", "  [0]  "}) {
    EXPECT_TRUE(ValidateJson(doc, &error)) << doc << ": " << error;
  }
}

TEST(JsonValidatorTest, RejectsMalformedDocuments) {
  std::string error;
  for (const char* doc :
       {"", "{", "{\"a\":}", "[1,]", "{}x", "{'a':1}", "nul", "01",
        "\"unterminated", "{\"a\" 1}", "[1 2]"}) {
    EXPECT_FALSE(ValidateJson(doc, &error)) << doc;
    EXPECT_FALSE(error.empty()) << doc;
  }
}

TEST(JsonValidatorTest, StringEscaping) {
  std::string out;
  AppendJsonString("he said \"hi\"\n\ttab\\", &out);
  std::string error;
  EXPECT_TRUE(ValidateJson(out, &error)) << error;
  EXPECT_EQ(out, "\"he said \\\"hi\\\"\\n\\ttab\\\\\"");
}

}  // namespace
}  // namespace orq
