// Tests for the observability subsystem: per-operator runtime stats,
// rule/phase tracing, EXPLAIN ANALYZE, and the stats JSON pipeline.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/report.h"
#include "obs/spans.h"
#include "obs/stats.h"
#include "obs/trace.h"
#include "tpch/tpch_gen.h"

namespace orq {
namespace {

std::vector<std::string> RowsToStrings(const std::vector<Row>& rows) {
  std::vector<std::string> out;
  out.reserve(rows.size());
  for (const Row& row : rows) {
    std::string s;
    for (const Value& v : row) {
      s += v.ToString();
      s += '|';
    }
    out.push_back(std::move(s));
  }
  return out;
}

void ForEachNode(const PlanStatsNode& node,
                 const std::function<void(const PlanStatsNode&)>& fn) {
  fn(node);
  for (const PlanStatsNode& child : node.children) ForEachNode(child, fn);
}

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TpchGenOptions options;
    options.scale_factor = 0.002;
    ASSERT_TRUE(GenerateTpch(&catalog_, options).ok());
  }

  Catalog catalog_;
  const std::string subquery_sql_ =
      "select c_custkey from customer "
      "where 1000 < (select sum(o_totalprice) from orders "
      "              where o_custkey = c_custkey)";
};

// (a) The per-operator row counts must aggregate to the engine's
// rows_produced work metric, and the analyzed metric must equal the plain
// execution's (the two accountings are one mechanism now).
TEST_F(ObsTest, PerOpRowsSumMatchesRowsProduced) {
  QueryEngine engine(&catalog_);
  Result<QueryResult> plain = engine.Execute(subquery_sql_);
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  Result<AnalyzedQuery> analyzed = engine.ExecuteAnalyzed(subquery_sql_);
  ASSERT_TRUE(analyzed.ok()) << analyzed.status().ToString();

  EXPECT_GT(analyzed->result.rows_produced, 0);
  EXPECT_EQ(TotalRowsOut(analyzed->plan), analyzed->result.rows_produced);
  EXPECT_EQ(plain->rows_produced, analyzed->result.rows_produced);
}

// Every operator the execution touched reports balanced Open/Close calls
// and a row count consistent with its Next calls.
TEST_F(ObsTest, OperatorCountersAreConsistent) {
  QueryEngine engine(&catalog_);
  Result<AnalyzedQuery> analyzed = engine.ExecuteAnalyzed(subquery_sql_);
  ASSERT_TRUE(analyzed.ok());
  int64_t ops = 0;
  ForEachNode(analyzed->plan, [&](const PlanStatsNode& node) {
    ++ops;
    EXPECT_EQ(node.stats.open_calls, node.stats.close_calls) << node.name;
    // next_calls counts pulls, not rows: a NextBatch pull returns up to a
    // batch of rows, so next_calls sits well below rows_out on batched
    // operators (that divergence is the point of the counter). Every pull
    // returns at most one batch.
    EXPECT_LE(node.stats.rows_out,
              node.stats.next_calls * kDefaultBatchRows)
        << node.name;
    if (node.stats.rows_out > 0) {
      EXPECT_GE(node.stats.next_calls, 1) << node.name;
    }
    EXPECT_GE(node.stats.wall_nanos, node.self_wall_nanos) << node.name;
    EXPECT_GE(node.self_wall_nanos, 0) << node.name;
  });
  EXPECT_GE(ops, 3);
  // The default engine batches: some operator must have moved many rows
  // per pull, i.e. rows_out well above next_calls.
  bool diverged = false;
  ForEachNode(analyzed->plan, [&](const PlanStatsNode& node) {
    if (node.stats.rows_out > node.stats.next_calls) diverged = true;
  });
  EXPECT_TRUE(diverged);
}

// Under correlated-only execution the inner side re-opens once per outer
// row — the re-open counter is what makes Fig. 1's N+1 pattern visible.
TEST_F(ObsTest, CorrelatedExecutionShowsReopens) {
  QueryEngine engine(&catalog_, EngineOptions::CorrelatedOnly());
  Result<AnalyzedQuery> analyzed = engine.ExecuteAnalyzed(subquery_sql_);
  ASSERT_TRUE(analyzed.ok());
  int64_t max_opens = 0;
  ForEachNode(analyzed->plan, [&](const PlanStatsNode& node) {
    if (node.stats.open_calls > max_opens) max_opens = node.stats.open_calls;
  });
  // SF 0.002 has 300 customers; the correlated inner opens once per row.
  EXPECT_EQ(max_opens, 300);
}

// (b) The rule trace records the Apply-removal sequence the paper's Fig. 4
// identities prescribe for a correlated scalar aggregate: pushdown into
// the Apply (identity 2), GroupBy pull-up (identity 9), and the final
// Apply-to-join conversion (identity 4).
TEST_F(ObsTest, TraceRecordsApplyRemovalSequence) {
  QueryEngine engine(&catalog_);
  Result<AnalyzedQuery> analyzed = engine.ExecuteAnalyzed(subquery_sql_);
  ASSERT_TRUE(analyzed.ok());
  ASSERT_FALSE(analyzed->trace.empty());

  std::vector<std::string> normalize_rules;
  for (const TraceEvent* event :
       analyzed->trace.RuleFirings(TraceEvent::Stage::kNormalize)) {
    normalize_rules.push_back(event->rule);
  }
  EXPECT_EQ(normalize_rules,
            (std::vector<std::string>{"identity(2)", "identity(9)",
                                      "identity(4)"}));

  // Phase events bracket the pipeline; apply_removal must appear and must
  // have changed the tree.
  bool saw_apply_removal = false;
  for (const TraceEvent& event : analyzed->trace.events()) {
    if (event.kind == TraceEvent::Kind::kPhase &&
        event.rule == "apply_removal") {
      saw_apply_removal = true;
      EXPECT_GT(event.nodes_before, 0);
      EXPECT_GT(event.nodes_after, 0);
    }
  }
  EXPECT_TRUE(saw_apply_removal);
}

// Optimizer firings carry cost-before/cost-after; accepted rules must
// report an improvement.
TEST_F(ObsTest, OptimizerTraceReportsCostImprovements) {
  QueryEngine engine(&catalog_);
  Result<AnalyzedQuery> analyzed = engine.ExecuteAnalyzed(subquery_sql_);
  ASSERT_TRUE(analyzed.ok());
  for (const TraceEvent* event :
       analyzed->trace.RuleFirings(TraceEvent::Stage::kOptimize)) {
    EXPECT_GE(event->cost_before, 0.0) << event->rule;
    EXPECT_LT(event->cost_after, event->cost_before) << event->rule;
  }
}

// (c) With stats disabled (no collector on the context) execution must
// behave exactly as before: same rows, same rows_produced, and nothing
// recorded anywhere.
TEST_F(ObsTest, DisabledStatsIdenticalResultsAndZeroEntries) {
  QueryEngine engine(&catalog_);
  Result<QueryResult> plain = engine.Execute(subquery_sql_);
  ASSERT_TRUE(plain.ok());
  Result<AnalyzedQuery> analyzed = engine.ExecuteAnalyzed(subquery_sql_);
  ASSERT_TRUE(analyzed.ok());

  EXPECT_EQ(plain->column_names, analyzed->result.column_names);
  EXPECT_EQ(RowsToStrings(plain->rows), RowsToStrings(analyzed->result.rows));
  EXPECT_EQ(plain->rows_produced, analyzed->result.rows_produced);

  // Executing a compiled plan without attaching the collector must leave
  // it untouched.
  Result<QueryEngine::Compiled> compiled = engine.Compile(subquery_sql_);
  ASSERT_TRUE(compiled.ok());
  StatsCollector collector;
  Result<QueryResult> uninstrumented = engine.ExecuteCompiled(*compiled);
  ASSERT_TRUE(uninstrumented.ok());
  EXPECT_TRUE(collector.empty());
  EXPECT_EQ(collector.TotalRowsOut(), 0);
  EXPECT_EQ(uninstrumented->rows_produced, plain->rows_produced);
}

// Compile-time artifacts: tracing must not alter what the engine produces
// (trace sinks are write-only observers).
TEST_F(ObsTest, TracingDoesNotChangePlans) {
  QueryEngine engine(&catalog_);
  Result<std::string> without = engine.Explain(subquery_sql_);
  ASSERT_TRUE(without.ok());
  // ExecuteAnalyzed compiles with trace attached; Explain afterwards must
  // render the same plans.
  ASSERT_TRUE(engine.ExecuteAnalyzed(subquery_sql_).ok());
  Result<std::string> after = engine.Explain(subquery_sql_);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*without, *after);
}

TEST_F(ObsTest, ExplainAnalyzeRendersActualsAndEstimates) {
  QueryEngine engine(&catalog_);
  Result<std::string> text = engine.ExplainAnalyze(subquery_sql_);
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  for (const char* marker :
       {"actual rows=", "est rows=", "est cost=", "time=", "opens=",
        "Rewrite trace", "identity(2)", "rows_produced="}) {
    EXPECT_NE(text->find(marker), std::string::npos) << marker;
  }
}

TEST_F(ObsTest, HashOperatorsReportPeakCardinality) {
  QueryEngine engine(&catalog_);
  // The decorrelated plan aggregates orders by custkey: some hash-based
  // operator must have held a nonzero peak.
  Result<AnalyzedQuery> analyzed = engine.ExecuteAnalyzed(subquery_sql_);
  ASSERT_TRUE(analyzed.ok());
  int64_t max_peak = 0;
  ForEachNode(analyzed->plan, [&](const PlanStatsNode& node) {
    if (node.stats.peak_cardinality > max_peak) {
      max_peak = node.stats.peak_cardinality;
    }
  });
  EXPECT_GT(max_peak, 0);
}

TEST_F(ObsTest, AnalyzedJsonIsValidAndRoundTrips) {
  QueryEngine engine(&catalog_);
  Result<AnalyzedQuery> analyzed = engine.ExecuteAnalyzed(subquery_sql_);
  ASSERT_TRUE(analyzed.ok());
  const std::string json = analyzed->ToJson("obs_test");
  std::string error;
  EXPECT_TRUE(ValidateJson(json, &error)) << error;
  // Key schema fields present (DESIGN.md contract).
  for (const char* field :
       {"\"label\":\"obs_test\"", "\"sql\":", "\"rows_produced\":",
        "\"plan\":", "\"trace\":", "\"actual_rows\":", "\"est_rows\":",
        "\"wall_nanos\":", "\"children\":", "\"rule\":"}) {
    EXPECT_NE(json.find(field), std::string::npos) << field;
  }
}

// The lifecycle phases are timed back to back inside one total window, so
// their sum must account for (nearly) all of the end-to-end wall time —
// only trivial bookkeeping between phases is unattributed. Timing tests
// fight the scheduler; a few attempts keep this deterministic in practice.
TEST_F(ObsTest, PhaseSumCoversTotalWallTime) {
  QueryEngine engine(&catalog_);
  double best_ratio = 0.0;
  for (int attempt = 0; attempt < 5 && best_ratio < 0.95; ++attempt) {
    Result<AnalyzedQuery> analyzed = engine.ExecuteAnalyzed(subquery_sql_);
    ASSERT_TRUE(analyzed.ok()) << analyzed.status().ToString();
    const QueryProfile& profile = analyzed->profile;
    ASSERT_GT(profile.total_nanos, 0);
    EXPECT_LE(profile.PhaseSum(), profile.total_nanos);
    const double ratio = static_cast<double>(profile.PhaseSum()) /
                         static_cast<double>(profile.total_nanos);
    if (ratio > best_ratio) best_ratio = ratio;
  }
  EXPECT_GE(best_ratio, 0.95);
}

TEST_F(ObsTest, ProfileRecordsEveryPipelinePhase) {
  QueryEngine engine(&catalog_);
  Result<AnalyzedQuery> analyzed = engine.ExecuteAnalyzed(subquery_sql_);
  ASSERT_TRUE(analyzed.ok());
  for (int i = 0; i < kNumQueryPhases; ++i) {
    const PhaseSpan& span = analyzed->profile.phases[i];
    EXPECT_GT(span.wall_nanos, 0)
        << QueryPhaseName(static_cast<QueryPhase>(i));
    EXPECT_GE(span.start_nanos, analyzed->profile.start_nanos)
        << QueryPhaseName(static_cast<QueryPhase>(i));
  }
  // Rendered breakdown names every phase and reports rule-level time.
  const std::string text =
      RenderProfile(analyzed->profile, &analyzed->trace);
  for (const char* phase : {"parse", "bind", "apply_intro", "normalize",
                            "optimize", "physical_build", "execute"}) {
    EXPECT_NE(text.find(phase), std::string::npos) << phase;
  }
  EXPECT_NE(text.find("rule time:"), std::string::npos);

  const std::string json = ProfileToJson(analyzed->profile);
  std::string error;
  EXPECT_TRUE(ValidateJson(json, &error)) << error;
  JsonValue doc;
  ASSERT_TRUE(ParseJson(json, &doc, &error)) << error;
  EXPECT_EQ(doc.NumberOr("total_nanos", -1),
            static_cast<double>(analyzed->profile.total_nanos));
  const JsonValue* phases = doc.Find("phases");
  ASSERT_NE(phases, nullptr);
  ASSERT_TRUE(phases->is_array());
  EXPECT_EQ(phases->array.size(), static_cast<size_t>(kNumQueryPhases));
  EXPECT_EQ(phases->array[0].StringOr("phase", ""), "parse");
}

// ExplainAnalyze leads with the phase breakdown and (when metrics fired)
// the engine-metrics section.
TEST_F(ObsTest, ExplainAnalyzeShowsPhaseAndMetricsSections) {
  QueryEngine engine(&catalog_);
  Result<std::string> text = engine.ExplainAnalyze(subquery_sql_);
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  for (const char* marker : {"== Phase times ==", "execute", "total",
                             "== Engine metrics =="}) {
    EXPECT_NE(text->find(marker), std::string::npos) << marker;
  }
  // Phase header precedes the physical plan.
  EXPECT_LT(text->find("== Phase times =="), text->find("actual rows="));
}

// The decorrelated plan for the scalar-aggregate subquery drives the hash
// paths: the aggregate sees orders rows and the join probes customers.
TEST_F(ObsTest, MetricsCaptureHashPathShape) {
  QueryEngine engine(&catalog_);
  Result<AnalyzedQuery> analyzed = engine.ExecuteAnalyzed(subquery_sql_);
  ASSERT_TRUE(analyzed.ok());
  const MetricsRegistry& metrics = analyzed->metrics;
  ASSERT_FALSE(metrics.empty());
  EXPECT_GT(metrics.counter(MetricCounter::kHashAggInputRows), 0);
  EXPECT_GT(metrics.counter(MetricCounter::kHashAggGroups), 0);
  // Under the default batched engine some operator reported batch fill.
  EXPECT_GT(
      metrics.histogram(MetricHistogram::kBatchFillPercent).count, 0);

  const std::string json = MetricsToJson(metrics);
  std::string error;
  EXPECT_TRUE(ValidateJson(json, &error)) << error;
  JsonValue doc;
  ASSERT_TRUE(ParseJson(json, &doc, &error)) << error;
  const JsonValue* counters = doc.Find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->NumberOr("hash_agg.groups", -1),
            static_cast<double>(
                metrics.counter(MetricCounter::kHashAggGroups)));
  const JsonValue* histograms = doc.Find("histograms");
  ASSERT_NE(histograms, nullptr);
  EXPECT_EQ(histograms->array.size(),
            static_cast<size_t>(kNumMetricHistograms));
}

// Correlated-only execution re-opens the inner plan once per outer row;
// the metric mirrors the per-operator open_calls evidence.
TEST_F(ObsTest, MetricsCountApplyReopens) {
  QueryEngine engine(&catalog_, EngineOptions::CorrelatedOnly());
  Result<AnalyzedQuery> analyzed = engine.ExecuteAnalyzed(subquery_sql_);
  ASSERT_TRUE(analyzed.ok());
  EXPECT_EQ(analyzed->metrics.counter(MetricCounter::kApplyInnerOpens), 300);
}

// Span export: one complete event per operator Open→Close plus one per
// phase, single-line JSON the Chrome trace viewer loads. The op tree
// round-trips through the args (op_id/parent_id).
TEST_F(ObsTest, ChromeTraceRoundTripsOperatorTree) {
  QueryEngine engine(&catalog_);
  AnalyzeOptions analyze;
  analyze.record_spans = true;
  Result<AnalyzedQuery> analyzed =
      engine.ExecuteAnalyzed(subquery_sql_, analyze);
  ASSERT_TRUE(analyzed.ok());
  ASSERT_FALSE(analyzed->spans.spans().empty());
  // One span per Open→Close: at least one per registered operator, more
  // when the cost model keeps correlated execution (re-opens repeat the
  // inner operator's span — SpansRepeatForCorrelatedReopens pins that).
  EXPECT_GE(analyzed->spans.spans().size(), analyzed->spans.ops().size());

  const std::string json =
      ChromeTraceJson(&analyzed->profile, analyzed->spans);
  std::string error;
  EXPECT_TRUE(ValidateJson(json, &error)) << error;
  EXPECT_EQ(json.find('\n'), std::string::npos);
  JsonValue doc;
  ASSERT_TRUE(ParseJson(json, &doc, &error)) << error;
  const JsonValue* events = doc.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  int phase_events = 0;
  int op_events = 0;
  int roots = 0;
  std::vector<double> ids;
  for (const JsonValue& event : events->array) {
    EXPECT_EQ(event.StringOr("ph", ""), "X");
    EXPECT_GE(event.NumberOr("dur", -1), 0);
    const JsonValue* args = event.Find("args");
    ASSERT_NE(args, nullptr);
    if (args->StringOr("cat", "") == "phase") {
      ++phase_events;
      continue;
    }
    ++op_events;
    const double op_id = args->NumberOr("op_id", -1);
    const double parent = args->NumberOr("parent_id", -2);
    EXPECT_GE(op_id, 0);
    EXPECT_FALSE(args->StringOr("name", "").empty());
    if (parent == -1) ++roots;
    ids.push_back(op_id);
  }
  EXPECT_EQ(phase_events, kNumQueryPhases);
  EXPECT_EQ(op_events,
            static_cast<int>(analyzed->spans.spans().size()));
  // Exactly one root operator; every span maps to a registered op.
  EXPECT_EQ(roots, 1);
  for (double id : ids) {
    EXPECT_LT(id, static_cast<double>(analyzed->spans.ops().size()));
  }
}

// Correlated re-opens show up as repeated spans of the same operator.
TEST_F(ObsTest, SpansRepeatForCorrelatedReopens) {
  QueryEngine engine(&catalog_, EngineOptions::CorrelatedOnly());
  AnalyzeOptions analyze;
  analyze.record_spans = true;
  Result<AnalyzedQuery> analyzed =
      engine.ExecuteAnalyzed(subquery_sql_, analyze);
  ASSERT_TRUE(analyzed.ok());
  std::vector<int> opens_by_op(analyzed->spans.ops().size(), 0);
  for (const OpSpan& span : analyzed->spans.spans()) {
    ++opens_by_op[static_cast<size_t>(span.op_id)];
  }
  int max_opens = 0;
  for (int n : opens_by_op) max_opens = std::max(max_opens, n);
  EXPECT_EQ(max_opens, 300);
}

// Span recording is strictly opt-in: the default analyze path and plain
// execution leave the recorder empty.
TEST_F(ObsTest, SpansAreOptIn) {
  QueryEngine engine(&catalog_);
  Result<AnalyzedQuery> analyzed = engine.ExecuteAnalyzed(subquery_sql_);
  ASSERT_TRUE(analyzed.ok());
  EXPECT_TRUE(analyzed->spans.empty());
}

TEST_F(ObsTest, AnalyzedJsonEmbedsProfileAndMetrics) {
  QueryEngine engine(&catalog_);
  Result<AnalyzedQuery> analyzed = engine.ExecuteAnalyzed(subquery_sql_);
  ASSERT_TRUE(analyzed.ok());
  const std::string json = analyzed->ToJson("obs_test");
  std::string error;
  JsonValue doc;
  ASSERT_TRUE(ParseJson(json, &doc, &error)) << error;
  const JsonValue* profile = doc.Find("profile");
  ASSERT_NE(profile, nullptr);
  EXPECT_GT(profile->NumberOr("total_nanos", 0), 0);
  const JsonValue* metrics = doc.Find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_NE(metrics->Find("counters"), nullptr);
}

TEST(MetricsTest, HistogramBucketsArePowersOfTwo) {
  MetricsRegistry metrics;
  // 1 -> bucket 0, 2 -> bucket 1, 3..4 -> bucket 2, 1000 -> bucket 10.
  metrics.Observe(MetricHistogram::kHashJoinChainLength, 1);
  metrics.Observe(MetricHistogram::kHashJoinChainLength, 2);
  metrics.Observe(MetricHistogram::kHashJoinChainLength, 3);
  metrics.Observe(MetricHistogram::kHashJoinChainLength, 4);
  metrics.Observe(MetricHistogram::kHashJoinChainLength, 1000);
  const HistogramData& h =
      metrics.histogram(MetricHistogram::kHashJoinChainLength);
  EXPECT_EQ(h.count, 5);
  EXPECT_EQ(h.sum, 1010);
  EXPECT_EQ(h.max, 1000);
  EXPECT_EQ(h.buckets[0], 1);
  EXPECT_EQ(h.buckets[1], 1);
  EXPECT_EQ(h.buckets[2], 2);
  EXPECT_EQ(h.buckets[10], 1);
  EXPECT_FALSE(metrics.empty());
  metrics.clear();
  EXPECT_TRUE(metrics.empty());
}

TEST(MetricsTest, OverflowLandsInLastBucket) {
  MetricsRegistry metrics;
  metrics.Observe(MetricHistogram::kHashJoinBucketRows, int64_t{1} << 40);
  const HistogramData& h =
      metrics.histogram(MetricHistogram::kHashJoinBucketRows);
  EXPECT_EQ(h.buckets[kMetricHistogramBuckets - 1], 1);
}

TEST(JsonValidatorTest, AcceptsWellFormedDocuments) {
  std::string error;
  for (const char* doc :
       {"{}", "[]", "null", "true", "-1.5e3", "\"a\\\"b\"",
        "{\"a\":[1,2,{\"b\":null}],\"c\":\"\\u0041\"}", "  [0]  "}) {
    EXPECT_TRUE(ValidateJson(doc, &error)) << doc << ": " << error;
  }
}

TEST(JsonValidatorTest, RejectsMalformedDocuments) {
  std::string error;
  for (const char* doc :
       {"", "{", "{\"a\":}", "[1,]", "{}x", "{'a':1}", "nul", "01",
        "\"unterminated", "{\"a\" 1}", "[1 2]"}) {
    EXPECT_FALSE(ValidateJson(doc, &error)) << doc;
    EXPECT_FALSE(error.empty()) << doc;
  }
}

TEST(JsonValidatorTest, StringEscaping) {
  std::string out;
  AppendJsonString("he said \"hi\"\n\ttab\\", &out);
  std::string error;
  EXPECT_TRUE(ValidateJson(out, &error)) << error;
  EXPECT_EQ(out, "\"he said \\\"hi\\\"\\n\\ttab\\\\\"");
}

// Control characters below 0x20 must come out as \u00XX escapes (raw
// control bytes are invalid JSON); the dedicated two-char escapes win for
// the common whitespace ones.
TEST(JsonValidatorTest, ControlCharacterEscaping) {
  std::string out;
  AppendJsonString(std::string("a\x01" "b\x1f") + "\r\x08\x0c", &out);
  EXPECT_EQ(out, "\"a\\u0001b\\u001f\\r\\u0008\\u000c\"");
  std::string error;
  EXPECT_TRUE(ValidateJson(out, &error)) << error;
  // Round trip: the parser decodes the escapes back to the raw bytes.
  JsonValue doc;
  ASSERT_TRUE(ParseJson(out, &doc, &error)) << error;
  EXPECT_EQ(doc.string_value, std::string("a\x01" "b\x1f") + "\r\x08\x0c");
}

TEST(JsonParserTest, BuildsDomWithInsertionOrder) {
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(ParseJson(
      "{\"z\":1,\"a\":[true,null,\"x\\u0041\"],\"m\":{\"n\":-2.5e1}}",
      &doc, &error))
      << error;
  ASSERT_TRUE(doc.is_object());
  ASSERT_EQ(doc.object.size(), 3u);
  // Members keep source order (the emitters rely on stable field order).
  EXPECT_EQ(doc.object[0].first, "z");
  EXPECT_EQ(doc.object[1].first, "a");
  EXPECT_EQ(doc.object[2].first, "m");
  EXPECT_EQ(doc.NumberOr("z", -1), 1.0);
  const JsonValue* arr = doc.Find("a");
  ASSERT_NE(arr, nullptr);
  ASSERT_EQ(arr->array.size(), 3u);
  EXPECT_EQ(arr->array[0].type, JsonValue::Type::kBool);
  EXPECT_TRUE(arr->array[0].bool_value);
  EXPECT_TRUE(arr->array[1].is_null());
  EXPECT_EQ(arr->array[2].string_value, "xA");
  const JsonValue* nested = doc.Find("m");
  ASSERT_NE(nested, nullptr);
  EXPECT_EQ(nested->NumberOr("n", 0), -25.0);
  // Accessor fallbacks for missing/mistyped members.
  EXPECT_EQ(doc.NumberOr("missing", 7.0), 7.0);
  EXPECT_EQ(doc.StringOr("z", "fallback"), "fallback");
  EXPECT_EQ(doc.Find("missing"), nullptr);
}

TEST(JsonParserTest, RejectsWhatTheValidatorRejects) {
  JsonValue doc;
  std::string error;
  for (const char* bad :
       {"", "{", "[1,]", "{}x", "nul", "01", "\"unterminated"}) {
    EXPECT_FALSE(ParseJson(bad, &doc, &error)) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
}

TEST(JsonParserTest, NumbersRoundTripIntegers) {
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(ParseJson("[0,-1,9007199254740992,1e2]", &doc, &error));
  ASSERT_EQ(doc.array.size(), 4u);
  EXPECT_EQ(doc.array[0].number, 0.0);
  EXPECT_EQ(doc.array[1].number, -1.0);
  EXPECT_EQ(doc.array[2].number, 9007199254740992.0);
  EXPECT_EQ(doc.array[3].number, 100.0);
}

}  // namespace
}  // namespace orq
