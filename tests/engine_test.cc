// Tests for the QueryEngine facade: EXPLAIN content, option plumbing,
// compile/execute separation, and error reporting.
#include <gtest/gtest.h>

#include "algebra/printer.h"
#include "engine/engine.h"
#include "tpch/tpch_gen.h"

namespace orq {
namespace {

int CountKind(const RelExprPtr& node, RelKind kind) {
  int n = node->kind == kind ? 1 : 0;
  for (const RelExprPtr& child : node->children) n += CountKind(child, kind);
  return n;
}

class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TpchGenOptions options;
    options.scale_factor = 0.002;
    ASSERT_TRUE(GenerateTpch(&catalog_, options).ok());
  }

  Catalog catalog_;
  const std::string subquery_sql_ =
      "select c_custkey from customer "
      "where 1000 < (select sum(o_totalprice) from orders "
      "              where o_custkey = c_custkey)";
};

TEST_F(EngineTest, ExplainShowsAllPhases) {
  QueryEngine engine(&catalog_);
  Result<std::string> explained = engine.Explain(subquery_sql_);
  ASSERT_TRUE(explained.ok()) << explained.status().ToString();
  for (const char* marker :
       {"Bound (mutual recursion", "After Apply introduction",
        "Subquery classes", "Class1", "Normalized", "Optimized",
        "Physical plan"}) {
    EXPECT_NE(explained->find(marker), std::string::npos) << marker;
  }
}

TEST_F(EngineTest, CompileExposesPhaseTrees) {
  QueryEngine engine(&catalog_);
  Result<QueryEngine::Compiled> compiled = engine.Compile(subquery_sql_);
  ASSERT_TRUE(compiled.ok());
  // Bound tree still carries the subquery inside a scalar expression.
  EXPECT_EQ(CountKind(compiled->bound, RelKind::kApply), 0);
  // Apply introduction made it relational.
  EXPECT_GE(CountKind(compiled->applied, RelKind::kApply), 1);
  // Normalization removed the correlation.
  EXPECT_EQ(CountKind(compiled->normalized, RelKind::kApply), 0);
  EXPECT_EQ(compiled->output_names, std::vector<std::string>{"c_custkey"});
}

TEST_F(EngineTest, CompiledQueryIsReusable) {
  QueryEngine engine(&catalog_);
  Result<QueryEngine::Compiled> compiled = engine.Compile(subquery_sql_);
  ASSERT_TRUE(compiled.ok());
  Result<QueryResult> first = engine.ExecuteCompiled(*compiled);
  Result<QueryResult> second = engine.ExecuteCompiled(*compiled);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->rows.size(), second->rows.size());
}

TEST_F(EngineTest, NormalizerSwitchKeepsApply) {
  EngineOptions options;
  options.normalizer.remove_correlations = false;
  options.optimizer.enable = false;
  QueryEngine engine(&catalog_, options);
  Result<QueryEngine::Compiled> compiled = engine.Compile(subquery_sql_);
  ASSERT_TRUE(compiled.ok());
  EXPECT_GE(CountKind(compiled->optimized, RelKind::kApply), 1);
}

TEST_F(EngineTest, ParseErrorsAreInvalidArgument) {
  QueryEngine engine(&catalog_);
  Result<QueryResult> result = engine.Execute("select , from");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(EngineTest, UnknownTableIsNotFound) {
  QueryEngine engine(&catalog_);
  Result<QueryResult> result = engine.Execute("select x from nope");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST_F(EngineTest, ColumnNamesFollowAliases) {
  QueryEngine engine(&catalog_);
  Result<QueryResult> result = engine.Execute(
      "select c_custkey as id, c_name customer_name from customer limit 1");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->column_names,
            (std::vector<std::string>{"id", "customer_name"}));
}

TEST_F(EngineTest, RowsProducedIsDeterministic) {
  QueryEngine engine(&catalog_);
  Result<QueryResult> a = engine.Execute(subquery_sql_);
  Result<QueryResult> b = engine.Execute(subquery_sql_);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->rows_produced, b->rows_produced);
  EXPECT_GT(a->rows_produced, 0);
}

TEST_F(EngineTest, PhysicalOptionsDisableIndexSeek) {
  EngineOptions options = EngineOptions::CorrelatedOnly();
  QueryEngine with_index(&catalog_, options);
  options.physical.use_index_seek = false;
  QueryEngine without_index(&catalog_, options);
  Result<QueryResult> a = with_index.Execute(subquery_sql_);
  Result<QueryResult> b = without_index.Execute(subquery_sql_);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->rows.size(), b->rows.size());
  // Without indexes the correlated plan scans orders per customer.
  EXPECT_GT(b->rows_produced, a->rows_produced * 5);
}

TEST_F(EngineTest, PrinterRendersEveryOperator) {
  // Smoke-check the logical printer across the operator vocabulary.
  QueryEngine engine(&catalog_);
  Result<QueryEngine::Compiled> compiled = engine.Compile(
      "select c_nationkey, count(*) from customer "
      "where exists (select * from orders where o_custkey = c_custkey) "
      "group by c_nationkey order by 2 desc limit 5");
  ASSERT_TRUE(compiled.ok());
  std::string text =
      PrintRelTree(*compiled->optimized, compiled->columns.get());
  EXPECT_NE(text.find("Sort"), std::string::npos);
  EXPECT_NE(text.find("GroupBy"), std::string::npos);
  EXPECT_NE(text.find("Get customer"), std::string::npos);
}

}  // namespace
}  // namespace orq
