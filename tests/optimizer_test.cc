// Tests for the cost-based optimizer's transformation rules (paper
// section 3): each rule's alternatives are executed against the original
// plan and must produce identical row multisets; plan-shape assertions
// verify the rules fire on the scenarios the paper describes.
#include <gtest/gtest.h>

#include <map>

#include "algebra/printer.h"
#include "algebra/props.h"
#include "engine/engine.h"
#include "opt/cost.h"
#include "opt/rules.h"
#include "tests/test_util.h"
#include "tpch/tpch_gen.h"
#include "tpch/tpch_queries.h"

namespace orq {
namespace {

int CountKind(const RelExprPtr& node, RelKind kind) {
  int n = node->kind == kind ? 1 : 0;
  for (const RelExprPtr& child : node->children) n += CountKind(child, kind);
  return n;
}

class RuleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    columns_ = std::make_shared<ColumnManager>();
    dim_ = *catalog_.CreateTable("dim", {{"dk", DataType::kInt64, false},
                                         {"dv", DataType::kInt64, false}});
    dim_->SetPrimaryKey({0});
    for (int i = 1; i <= 4; ++i) {
      ASSERT_TRUE(
          dim_->Append({Value::Int64(i), Value::Int64(i % 2)}).ok());
    }
    fact_ = *catalog_.CreateTable("fact", {{"fk", DataType::kInt64, false},
                                           {"fd", DataType::kInt64, false},
                                           {"fv", DataType::kInt64, true}});
    fact_->SetPrimaryKey({0});
    int id = 0;
    for (int d = 1; d <= 4; ++d) {
      for (int j = 0; j < 5; ++j) {
        ASSERT_TRUE(fact_->Append({Value::Int64(++id), Value::Int64(d),
                                   j == 0 ? Value::Null()
                                          : Value::Int64(j * d)})
                        .ok());
      }
    }
  }

  RelExprPtr Get(Table* table, std::map<std::string, ColumnId>* ids) {
    std::vector<ColumnId> cols;
    for (const ColumnSpec& spec : table->columns()) {
      ColumnId id = columns_->NewColumn(spec.name, spec.type, spec.nullable);
      cols.push_back(id);
      (*ids)[spec.name] = id;
    }
    return MakeGet(table, std::move(cols));
  }

  ScalarExprPtr Ref(const std::map<std::string, ColumnId>& ids,
                    const std::string& name) {
    return CRef(*columns_, ids.at(name));
  }

  /// Applies `rule` at the root and checks every alternative computes the
  /// same multiset over the original tree's output columns (intersected
  /// with the alternative's, which may legally be wider).
  void ExpectAlternativesEquivalent(Rule* rule, const RelExprPtr& tree,
                                    int expect_min_alternatives = 1) {
    CostModel cost(&catalog_);
    std::vector<RelExprPtr> alternatives =
        rule->Apply(tree, columns_.get(), &cost);
    EXPECT_GE(static_cast<int>(alternatives.size()),
              expect_min_alternatives)
        << rule->name() << " produced no alternative";
    std::vector<ColumnId> out = tree->OutputColumns();
    Result<std::vector<Row>> expected = ExecLogical(tree, *columns_, out);
    ASSERT_TRUE(expected.ok()) << expected.status().ToString();
    for (const RelExprPtr& alt : alternatives) {
      ColumnSet alt_out = alt->OutputSet();
      for (ColumnId id : out) {
        ASSERT_TRUE(alt_out.Contains(id))
            << rule->name() << " lost column #" << id << "\n"
            << PrintRelTree(*alt, columns_.get());
      }
      Result<std::vector<Row>> actual = ExecLogical(alt, *columns_, out);
      ASSERT_TRUE(actual.ok())
          << rule->name() << ": " << actual.status().ToString();
      EXPECT_EQ(CanonicalRows(*expected), CanonicalRows(*actual))
          << rule->name() << " alternative differs:\n"
          << PrintRelTree(*alt, columns_.get());
    }
  }

  /// G[dk, dv](dim ⋈ fact on fk-join) with sum/count over fact.
  RelExprPtr GroupOverJoin(std::map<std::string, ColumnId>* d,
                           std::map<std::string, ColumnId>* f,
                           std::vector<AggItem>* aggs_out = nullptr) {
    RelExprPtr gd = Get(dim_, d);
    RelExprPtr gf = Get(fact_, f);
    RelExprPtr join = MakeJoin(JoinKind::kInner, gd, gf,
                               Eq(Ref(*f, "fd"), Ref(*d, "dk")));
    ColumnId total = columns_->NewColumn("total", DataType::kInt64, true);
    ColumnId cnt = columns_->NewColumn("cnt", DataType::kInt64, false);
    std::vector<AggItem> aggs = {
        AggItem{AggFunc::kSum, Ref(*f, "fv"), total, false},
        AggItem{AggFunc::kCountStar, nullptr, cnt, false}};
    if (aggs_out != nullptr) *aggs_out = aggs;
    return MakeGroupBy(join, ColumnSet{d->at("dk"), d->at("dv")}, aggs);
  }

  Catalog catalog_;
  ColumnManagerPtr columns_;
  Table* dim_ = nullptr;
  Table* fact_ = nullptr;
};

TEST_F(RuleTest, JoinCommute) {
  std::map<std::string, ColumnId> d, f;
  RelExprPtr gd = Get(dim_, &d);
  RelExprPtr gf = Get(fact_, &f);
  RelExprPtr join = MakeJoin(JoinKind::kInner, gd, gf,
                             Eq(Ref(f, "fd"), Ref(d, "dk")));
  auto rule = MakeJoinCommuteRule();
  ExpectAlternativesEquivalent(rule.get(), join);
}

TEST_F(RuleTest, GroupByPushBelowJoin) {
  std::map<std::string, ColumnId> d, f;
  RelExprPtr tree = GroupOverJoin(&d, &f);
  auto rule = MakeGroupByPushBelowJoinRule();
  ExpectAlternativesEquivalent(rule.get(), tree);
  // Shape: the alternative has the GroupBy below the join.
  CostModel cost(&catalog_);
  std::vector<RelExprPtr> alts = rule->Apply(tree, columns_.get(), &cost);
  ASSERT_FALSE(alts.empty());
  const RelExpr* join = alts[0].get();
  while (join->kind != RelKind::kJoin) join = join->children[0].get();
  EXPECT_TRUE(join->children[0]->kind == RelKind::kGroupBy ||
              join->children[1]->kind == RelKind::kGroupBy);
}

TEST_F(RuleTest, GroupByPushBelowJoinRejectedWithoutKey) {
  // Group only by dv (not a key of dim): condition (2) fails.
  std::map<std::string, ColumnId> d, f;
  RelExprPtr gd = Get(dim_, &d);
  RelExprPtr gf = Get(fact_, &f);
  RelExprPtr join = MakeJoin(JoinKind::kInner, gd, gf,
                             Eq(Ref(f, "fd"), Ref(d, "dk")));
  ColumnId total = columns_->NewColumn("total", DataType::kInt64, true);
  RelExprPtr tree =
      MakeGroupBy(join, ColumnSet{d.at("dv")},
                  {AggItem{AggFunc::kSum, Ref(f, "fv"), total, false}});
  auto rule = MakeGroupByPushBelowJoinRule();
  CostModel cost(&catalog_);
  EXPECT_TRUE(rule->Apply(tree, columns_.get(), &cost).empty());
}

TEST_F(RuleTest, GroupByPullAboveJoin) {
  // dim ⋈ G[fd](fact): aggregate below the join gets pulled up.
  std::map<std::string, ColumnId> d, f;
  RelExprPtr gd = Get(dim_, &d);
  RelExprPtr gf = Get(fact_, &f);
  ColumnId total = columns_->NewColumn("total", DataType::kInt64, true);
  RelExprPtr group =
      MakeGroupBy(gf, ColumnSet{f.at("fd")},
                  {AggItem{AggFunc::kSum, Ref(f, "fv"), total, false}});
  RelExprPtr tree = MakeJoin(JoinKind::kInner, gd, group,
                             Eq(Ref(d, "dk"), Ref(f, "fd")));
  auto rule = MakeGroupByPullAboveJoinRule();
  ExpectAlternativesEquivalent(rule.get(), tree);
}

TEST_F(RuleTest, GroupByPullAboveJoinSplitsAggregatePredicates) {
  // Join predicate references the aggregate output: pulled above, the
  // conjunct must become a filter.
  std::map<std::string, ColumnId> d, f;
  RelExprPtr gd = Get(dim_, &d);
  RelExprPtr gf = Get(fact_, &f);
  ColumnId total = columns_->NewColumn("total", DataType::kInt64, true);
  RelExprPtr group =
      MakeGroupBy(gf, ColumnSet{f.at("fd")},
                  {AggItem{AggFunc::kSum, Ref(f, "fv"), total, false}});
  RelExprPtr tree = MakeJoin(
      JoinKind::kInner, gd, group,
      MakeAnd2(Eq(Ref(d, "dk"), Ref(f, "fd")),
               MakeCompare(CompareOp::kGt, CRef(total, DataType::kInt64),
                           LitInt(10))));
  auto rule = MakeGroupByPullAboveJoinRule();
  ExpectAlternativesEquivalent(rule.get(), tree);
}

TEST_F(RuleTest, GroupByPushBelowOuterJoin) {
  // G[dk,dv](dim LOJ fact): count aggregates need the computing project
  // (paper section 3.2). Row with no fact matches must yield count(*)=1,
  // count(fv)=0, sum=NULL.
  std::map<std::string, ColumnId> d, f;
  RelExprPtr gd = Get(dim_, &d);
  // Restrict fact to fd <= 2 so dim rows 3, 4 are unmatched.
  RelExprPtr gf = Get(fact_, &f);
  RelExprPtr fact_filtered = MakeSelect(
      gf, MakeCompare(CompareOp::kLe, Ref(f, "fd"), LitInt(2)));
  RelExprPtr join = MakeJoin(JoinKind::kLeftOuter, gd, fact_filtered,
                             Eq(Ref(f, "fd"), Ref(d, "dk")));
  ColumnId total = columns_->NewColumn("total", DataType::kInt64, true);
  ColumnId cnt_star = columns_->NewColumn("cnt", DataType::kInt64, false);
  ColumnId cnt_v = columns_->NewColumn("cntv", DataType::kInt64, false);
  RelExprPtr tree = MakeGroupBy(
      join, ColumnSet{d.at("dk"), d.at("dv")},
      {AggItem{AggFunc::kSum, Ref(f, "fv"), total, false},
       AggItem{AggFunc::kCountStar, nullptr, cnt_star, false},
       AggItem{AggFunc::kCount, Ref(f, "fv"), cnt_v, false}});
  auto rule = MakeGroupByPushBelowOuterJoinRule();
  ExpectAlternativesEquivalent(rule.get(), tree);
}

TEST_F(RuleTest, LocalAggregateSplit) {
  std::map<std::string, ColumnId> d, f;
  RelExprPtr tree = GroupOverJoin(&d, &f);
  auto rule = MakeLocalAggregateSplitRule();
  ExpectAlternativesEquivalent(rule.get(), tree);
  // Shape: a LocalGroupBy below the join, global GroupBy above.
  CostModel cost(&catalog_);
  std::vector<RelExprPtr> alts = rule->Apply(tree, columns_.get(), &cost);
  ASSERT_FALSE(alts.empty());
  EXPECT_EQ(CountKind(alts[0], RelKind::kLocalGroupBy), 1);
  EXPECT_EQ(alts[0]->kind, RelKind::kGroupBy);
}

TEST_F(RuleTest, LocalAggregateSplitScalar) {
  // Scalar aggregate over a join also splits (grouping freedom, 3.3).
  std::map<std::string, ColumnId> d, f;
  RelExprPtr gd = Get(dim_, &d);
  RelExprPtr gf = Get(fact_, &f);
  RelExprPtr join = MakeJoin(JoinKind::kInner, gd, gf,
                             Eq(Ref(f, "fd"), Ref(d, "dk")));
  ColumnId total = columns_->NewColumn("total", DataType::kInt64, true);
  RelExprPtr tree = MakeScalarGroupBy(
      join, {AggItem{AggFunc::kSum, Ref(f, "fv"), total, false}});
  auto rule = MakeLocalAggregateSplitRule();
  ExpectAlternativesEquivalent(rule.get(), tree);
}

TEST_F(RuleTest, LocalAggregateSplitRejectsMax1Row) {
  std::map<std::string, ColumnId> d, f;
  RelExprPtr gd = Get(dim_, &d);
  RelExprPtr gf = Get(fact_, &f);
  RelExprPtr join = MakeJoin(JoinKind::kInner, gd, gf,
                             Eq(Ref(f, "fd"), Ref(d, "dk")));
  ColumnId one = columns_->NewColumn("one", DataType::kInt64, true);
  RelExprPtr tree = MakeGroupBy(
      join, ColumnSet{d.at("dk")},
      {AggItem{AggFunc::kMax1Row, Ref(f, "fv"), one, false}});
  auto rule = MakeLocalAggregateSplitRule();
  CostModel cost(&catalog_);
  EXPECT_TRUE(rule->Apply(tree, columns_.get(), &cost).empty());
}

TEST_F(RuleTest, SemiJoinToJoinDistinct) {
  // dim ⋉ fact -> distinct(dim ⋈ fact) (paper section 2.4); fan-out on
  // fact means the join produces duplicates the GroupBy must collapse.
  std::map<std::string, ColumnId> d, f;
  RelExprPtr gd = Get(dim_, &d);
  RelExprPtr gf = Get(fact_, &f);
  RelExprPtr semi = MakeJoin(JoinKind::kLeftSemi, gd, gf,
                             Eq(Ref(f, "fd"), Ref(d, "dk")));
  auto rule = MakeSemiJoinToJoinDistinctRule();
  ExpectAlternativesEquivalent(rule.get(), semi);
  CostModel cost(&catalog_);
  std::vector<RelExprPtr> alts = rule->Apply(semi, columns_.get(), &cost);
  ASSERT_EQ(alts.size(), 1u);
  EXPECT_EQ(CountKind(alts[0], RelKind::kGroupBy), 1);
}

TEST_F(RuleTest, SemiJoinToJoinDistinctNeedsKey) {
  // fact grouped... use a keyless left side: a projection dropping the key.
  std::map<std::string, ColumnId> d, f;
  RelExprPtr gd = Get(dim_, &d);
  RelExprPtr keyless = MakeProject(gd, {}, ColumnSet{d.at("dv")});
  RelExprPtr gf = Get(fact_, &f);
  RelExprPtr semi = MakeJoin(JoinKind::kLeftSemi, keyless, gf,
                             Eq(Ref(f, "fd"), Ref(d, "dv")));
  auto rule = MakeSemiJoinToJoinDistinctRule();
  CostModel cost(&catalog_);
  EXPECT_TRUE(rule->Apply(semi, columns_.get(), &cost).empty());
}

TEST_F(RuleTest, SemiJoinPushBelowGroupBy) {
  for (JoinKind kind : {JoinKind::kLeftSemi, JoinKind::kLeftAnti}) {
    // (G[fd](fact)) ⋉ dim on fd = dk: the semijoin predicate only uses a
    // grouping column, so it pushes below the aggregate (section 3.1).
    std::map<std::string, ColumnId> d, f;
    RelExprPtr gd = Get(dim_, &d);
    RelExprPtr gf = Get(fact_, &f);
    ColumnId total = columns_->NewColumn("total", DataType::kInt64, true);
    RelExprPtr group =
        MakeGroupBy(gf, ColumnSet{f.at("fd")},
                    {AggItem{AggFunc::kSum, Ref(f, "fv"), total, false}});
    RelExprPtr dim_filtered = MakeSelect(
        gd, MakeCompare(CompareOp::kEq, Ref(d, "dv"), LitInt(1)));
    RelExprPtr semi = MakeJoin(kind, group, dim_filtered,
                               Eq(Ref(f, "fd"), Ref(d, "dk")));
    auto rule = MakeSemiJoinPushBelowGroupByRule();
    SCOPED_TRACE(JoinKindName(kind));
    ExpectAlternativesEquivalent(rule.get(), semi);
    CostModel cost(&catalog_);
    std::vector<RelExprPtr> alts = rule->Apply(semi, columns_.get(), &cost);
    ASSERT_EQ(alts.size(), 1u);
    EXPECT_EQ(alts[0]->kind, RelKind::kGroupBy);
  }
}

TEST_F(RuleTest, SemiJoinNotPushedWhenPredicateUsesAggregate) {
  std::map<std::string, ColumnId> d, f;
  RelExprPtr gd = Get(dim_, &d);
  RelExprPtr gf = Get(fact_, &f);
  ColumnId total = columns_->NewColumn("total", DataType::kInt64, true);
  RelExprPtr group =
      MakeGroupBy(gf, ColumnSet{f.at("fd")},
                  {AggItem{AggFunc::kSum, Ref(f, "fv"), total, false}});
  RelExprPtr semi = MakeJoin(
      JoinKind::kLeftSemi, group, gd,
      MakeCompare(CompareOp::kGt, CRef(total, DataType::kInt64),
                  Ref(d, "dk")));
  auto rule = MakeSemiJoinPushBelowGroupByRule();
  CostModel cost(&catalog_);
  EXPECT_TRUE(rule->Apply(semi, columns_.get(), &cost).empty());
}

TEST_F(RuleTest, CorrelatedReintroduction) {
  std::map<std::string, ColumnId> d, f;
  RelExprPtr gd = Get(dim_, &d);
  RelExprPtr gf = Get(fact_, &f);
  for (JoinKind kind : {JoinKind::kInner, JoinKind::kLeftOuter,
                        JoinKind::kLeftSemi, JoinKind::kLeftAnti}) {
    std::map<std::string, ColumnId> d2, f2;
    RelExprPtr gd2 = Get(dim_, &d2);
    RelExprPtr gf2 = Get(fact_, &f2);
    RelExprPtr join =
        MakeJoin(kind, gd2, gf2, Eq(Ref(f2, "fd"), Ref(d2, "dk")));
    auto rule = MakeCorrelatedReintroductionRule();
    SCOPED_TRACE(JoinKindName(kind));
    ExpectAlternativesEquivalent(rule.get(), join);
    // And the alternative is an Apply.
    CostModel cost(&catalog_);
    std::vector<RelExprPtr> alts = rule->Apply(join, columns_.get(), &cost);
    ASSERT_FALSE(alts.empty());
    EXPECT_EQ(alts[0]->kind, RelKind::kApply);
  }
}

TEST_F(RuleTest, SegmentApplyIntroOnDecorrelatedShape) {
  // G[fk...](fact ⋈ fact2 on fd = fd2) with aggregates over fact2 — the
  // canonical shape correlation removal produces (section 3.4.1).
  std::map<std::string, ColumnId> f1, f2;
  RelExprPtr gf1 = Get(fact_, &f1);
  RelExprPtr gf2 = Get(fact_, &f2);
  RelExprPtr join = MakeJoin(JoinKind::kLeftOuter, gf1, gf2,
                             Eq(Ref(f2, "fd"), Ref(f1, "fd")));
  ColumnId avg_sum = columns_->NewColumn("s", DataType::kInt64, true);
  ColumnId avg_cnt = columns_->NewColumn("c", DataType::kInt64, false);
  RelExprPtr tree = MakeGroupBy(
      join, ColumnSet{f1.at("fk"), f1.at("fd"), f1.at("fv")},
      {AggItem{AggFunc::kSum, Ref(f2, "fv"), avg_sum, false},
       AggItem{AggFunc::kCount, Ref(f2, "fv"), avg_cnt, false}});
  auto rule = MakeSegmentApplyIntroRule();
  ExpectAlternativesEquivalent(rule.get(), tree);
  CostModel cost(&catalog_);
  std::vector<RelExprPtr> alts = rule->Apply(tree, columns_.get(), &cost);
  ASSERT_EQ(alts.size(), 1u);
  EXPECT_EQ(CountKind(alts[0], RelKind::kSegmentApply), 1);
  EXPECT_EQ(CountKind(alts[0], RelKind::kSegmentRef), 2);
}

TEST_F(RuleTest, SegmentApplyJoinIntroWithResidual) {
  // Pattern B (paper Fig. 6): two fact instances joined, one aggregated,
  // with a residual comparison (fv < total) that moves inside the segment.
  std::map<std::string, ColumnId> f1, f2;
  RelExprPtr gf1 = Get(fact_, &f1);
  RelExprPtr gf2 = Get(fact_, &f2);
  ColumnId total = columns_->NewColumn("total", DataType::kInt64, true);
  RelExprPtr group =
      MakeGroupBy(gf2, ColumnSet{f2.at("fd")},
                  {AggItem{AggFunc::kSum, Ref(f2, "fv"), total, false}});
  RelExprPtr tree = MakeJoin(
      JoinKind::kInner, gf1, group,
      MakeAnd2(Eq(Ref(f2, "fd"), Ref(f1, "fd")),
               MakeCompare(CompareOp::kLt, Ref(f1, "fv"),
                           CRef(total, DataType::kInt64))));
  auto rule = MakeSegmentApplyJoinIntroRule();
  ExpectAlternativesEquivalent(rule.get(), tree);
  CostModel cost(&catalog_);
  std::vector<RelExprPtr> alts = rule->Apply(tree, columns_.get(), &cost);
  ASSERT_EQ(alts.size(), 1u);
  EXPECT_EQ(CountKind(alts[0], RelKind::kSegmentApply), 1);
}

TEST_F(RuleTest, SegmentApplyIntroRejectsNonEquiPredicate) {
  std::map<std::string, ColumnId> f1, f2;
  RelExprPtr gf1 = Get(fact_, &f1);
  RelExprPtr gf2 = Get(fact_, &f2);
  RelExprPtr join = MakeJoin(
      JoinKind::kLeftOuter, gf1, gf2,
      MakeCompare(CompareOp::kLt, Ref(f2, "fd"), Ref(f1, "fd")));
  ColumnId s = columns_->NewColumn("s", DataType::kInt64, true);
  RelExprPtr tree =
      MakeGroupBy(join, ColumnSet{f1.at("fk"), f1.at("fd")},
                  {AggItem{AggFunc::kSum, Ref(f2, "fv"), s, false}});
  auto rule = MakeSegmentApplyIntroRule();
  CostModel cost(&catalog_);
  EXPECT_TRUE(rule->Apply(tree, columns_.get(), &cost).empty());
}

TEST_F(RuleTest, SegmentApplySemiJoinIntro) {
  // "lineitems that are below some other quantity of the same part":
  // fact ⋉ fact2 on fd2 = fd ∧ fv < fv2 — the existential variant of
  // SegmentApply (paper 3.4.1, last paragraph), semi and anti.
  for (JoinKind kind : {JoinKind::kLeftSemi, JoinKind::kLeftAnti}) {
    std::map<std::string, ColumnId> f1, f2;
    RelExprPtr gf1 = Get(fact_, &f1);
    RelExprPtr gf2 = Get(fact_, &f2);
    RelExprPtr semi = MakeJoin(
        kind, gf1, gf2,
        MakeAnd2(Eq(Ref(f2, "fd"), Ref(f1, "fd")),
                 MakeCompare(CompareOp::kLt, Ref(f1, "fv"),
                             Ref(f2, "fv"))));
    auto rule = MakeSegmentApplySemiJoinIntroRule();
    SCOPED_TRACE(JoinKindName(kind));
    ExpectAlternativesEquivalent(rule.get(), semi);
    CostModel cost(&catalog_);
    std::vector<RelExprPtr> alts = rule->Apply(semi, columns_.get(), &cost);
    ASSERT_EQ(alts.size(), 1u);
    EXPECT_EQ(CountKind(alts[0], RelKind::kSegmentApply), 1);
  }
}

TEST_F(RuleTest, JoinPushBelowSegmentApply) {
  // Build an SA via the intro rule, then join it with dim on the segment
  // column and push the join below (paper section 3.4.2).
  std::map<std::string, ColumnId> f1, f2;
  RelExprPtr gf1 = Get(fact_, &f1);
  RelExprPtr gf2 = Get(fact_, &f2);
  RelExprPtr join = MakeJoin(JoinKind::kLeftOuter, gf1, gf2,
                             Eq(Ref(f2, "fd"), Ref(f1, "fd")));
  ColumnId s = columns_->NewColumn("s", DataType::kInt64, true);
  RelExprPtr grouped = MakeGroupBy(
      join, ColumnSet{f1.at("fk"), f1.at("fd")},
      {AggItem{AggFunc::kSum, Ref(f2, "fv"), s, false}});
  auto intro = MakeSegmentApplyIntroRule();
  CostModel cost(&catalog_);
  std::vector<RelExprPtr> sa_alts =
      intro->Apply(grouped, columns_.get(), &cost);
  ASSERT_EQ(sa_alts.size(), 1u);
  // Find the SegmentApply under the restoring Project.
  RelExprPtr sa = sa_alts[0];
  while (sa->kind != RelKind::kSegmentApply) sa = sa->children[0];

  std::map<std::string, ColumnId> d;
  RelExprPtr gd = Get(dim_, &d);
  RelExprPtr outer_join = MakeJoin(
      JoinKind::kInner, sa, gd,
      Eq(Ref(d, "dk"),
         CRef(*columns_, sa->segment_cols.ids()[0])));
  auto push = MakeJoinPushBelowSegmentApplyRule();
  ExpectAlternativesEquivalent(push.get(), outer_join);
  std::vector<RelExprPtr> pushed =
      push->Apply(outer_join, columns_.get(), &cost);
  ASSERT_EQ(pushed.size(), 1u);
  EXPECT_EQ(pushed[0]->kind, RelKind::kSegmentApply);
  EXPECT_EQ(pushed[0]->children[0]->kind, RelKind::kJoin);
}

TEST_F(RuleTest, Q17PlanUsesSegmentApply) {
  Catalog tpch;
  TpchGenOptions options;
  options.scale_factor = 0.01;
  ASSERT_TRUE(GenerateTpch(&tpch, options).ok());
  QueryEngine engine(&tpch, EngineOptions::Full());
  Result<QueryEngine::Compiled> compiled =
      engine.Compile(GetTpchQuery("Q17").sql);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  EXPECT_EQ(CountKind(compiled->optimized, RelKind::kSegmentApply), 1)
      << PrintRelTree(*compiled->optimized, compiled->columns.get());

  // And disabling the technique removes it.
  QueryEngine no_sa(&tpch, EngineOptions::NoSegmentApply());
  Result<QueryEngine::Compiled> compiled2 =
      no_sa.Compile(GetTpchQuery("Q17").sql);
  ASSERT_TRUE(compiled2.ok());
  EXPECT_EQ(CountKind(compiled2->optimized, RelKind::kSegmentApply), 0);
}

TEST_F(RuleTest, CostModelPrefersIndexApplyForSmallOuter) {
  // Tiny outer + indexed inner: the optimizer should re-introduce
  // correlated execution (paper: "can actually be the best strategy").
  Catalog tpch;
  TpchGenOptions options;
  options.scale_factor = 0.01;
  ASSERT_TRUE(GenerateTpch(&tpch, options).ok());
  QueryEngine engine(&tpch, EngineOptions::Full());
  Result<QueryEngine::Compiled> compiled = engine.Compile(
      "select c_custkey from customer "
      "where c_custkey < 5 and 1000 < "
      "(select sum(o_totalprice) from orders where o_custkey = c_custkey)");
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  EXPECT_GE(CountKind(compiled->optimized, RelKind::kApply), 1)
      << PrintRelTree(*compiled->optimized, compiled->columns.get());
}

}  // namespace
}  // namespace orq
