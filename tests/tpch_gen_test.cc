// Tests for the TPC-H generator: schema shape, scaling formulas, value
// domains, key integrity — the invariants the benchmark queries rely on.
#include <gtest/gtest.h>

#include <set>

#include "tpch/tpch_gen.h"
#include "tpch/tpch_queries.h"

namespace orq {
namespace {

class TpchGenTest : public ::testing::Test {
 protected:
  static Catalog* Db() {
    static Catalog* catalog = [] {
      auto* c = new Catalog();
      TpchGenOptions options;
      options.scale_factor = 0.01;
      Status s = GenerateTpch(c, options);
      EXPECT_TRUE(s.ok()) << s.ToString();
      return c;
    }();
    return catalog;
  }
};

TEST_F(TpchGenTest, AllEightTablesExist) {
  for (const char* name : {"region", "nation", "supplier", "customer",
                           "part", "partsupp", "orders", "lineitem"}) {
    EXPECT_NE(Db()->FindTable(name), nullptr) << name;
  }
}

TEST_F(TpchGenTest, RowCountFormulas) {
  EXPECT_EQ(Db()->FindTable("region")->num_rows(), 5u);
  EXPECT_EQ(Db()->FindTable("nation")->num_rows(), 25u);
  EXPECT_EQ(Db()->FindTable("supplier")->num_rows(), 100u);   // 10000 * SF
  EXPECT_EQ(Db()->FindTable("customer")->num_rows(), 1500u);  // 150000 * SF
  EXPECT_EQ(Db()->FindTable("part")->num_rows(), 2000u);      // 200000 * SF
  EXPECT_EQ(Db()->FindTable("partsupp")->num_rows(), 8000u);  // 4 per part
  EXPECT_EQ(Db()->FindTable("orders")->num_rows(), 15000u);   // 10 per cust
  // lineitem: 1-7 per order.
  size_t lines = Db()->FindTable("lineitem")->num_rows();
  EXPECT_GE(lines, 15000u);
  EXPECT_LE(lines, 7u * 15000u);
}

TEST_F(TpchGenTest, PrimaryKeysAreUnique) {
  for (const char* name : {"customer", "orders", "part", "supplier"}) {
    Table* table = Db()->FindTable(name);
    std::set<int64_t> keys;
    for (const Row& row : table->rows()) {
      EXPECT_TRUE(keys.insert(row[0].int64_value()).second)
          << name << " duplicate key " << row[0].int64_value();
    }
  }
  // Composite keys.
  Table* partsupp = Db()->FindTable("partsupp");
  std::set<std::pair<int64_t, int64_t>> ps_keys;
  for (const Row& row : partsupp->rows()) {
    EXPECT_TRUE(ps_keys
                    .insert({row[0].int64_value(), row[1].int64_value()})
                    .second);
  }
}

TEST_F(TpchGenTest, ForeignKeysInRange) {
  Table* orders = Db()->FindTable("orders");
  int64_t customers =
      static_cast<int64_t>(Db()->FindTable("customer")->num_rows());
  for (const Row& row : orders->rows()) {
    int64_t cust = row[1].int64_value();
    EXPECT_GE(cust, 1);
    EXPECT_LE(cust, customers);
  }
  Table* nation = Db()->FindTable("nation");
  for (const Row& row : nation->rows()) {
    int64_t region = row[2].int64_value();
    EXPECT_GE(region, 0);
    EXPECT_LE(region, 4);
  }
}

TEST_F(TpchGenTest, ValueVocabularies) {
  Table* part = Db()->FindTable("part");
  int brand_ordinal = part->ColumnOrdinal("p_brand");
  int size_ordinal = part->ColumnOrdinal("p_size");
  bool saw_q17_brand = false;
  for (const Row& row : part->rows()) {
    const std::string& brand = row[brand_ordinal].string_value();
    ASSERT_EQ(brand.substr(0, 6), "Brand#");
    saw_q17_brand |= brand == "Brand#23";
    int64_t size = row[size_ordinal].int64_value();
    EXPECT_GE(size, 1);
    EXPECT_LE(size, 50);
  }
  EXPECT_TRUE(saw_q17_brand) << "Q17's Brand#23 must exist in the domain";
}

TEST_F(TpchGenTest, LineitemDateOrdering) {
  Table* lineitem = Db()->FindTable("lineitem");
  int ship = lineitem->ColumnOrdinal("l_shipdate");
  int receipt = lineitem->ColumnOrdinal("l_receiptdate");
  for (const Row& row : lineitem->rows()) {
    EXPECT_LT(row[ship].date_value(), row[receipt].date_value());
  }
}

TEST_F(TpchGenTest, DifferentSeedsGiveDifferentData) {
  Catalog a, b;
  TpchGenOptions options;
  options.scale_factor = 0.001;
  options.build_indexes = false;
  ASSERT_TRUE(GenerateTpch(&a, options).ok());
  options.seed = options.seed + 1;
  ASSERT_TRUE(GenerateTpch(&b, options).ok());
  // Same shape, different content.
  ASSERT_EQ(a.FindTable("customer")->num_rows(),
            b.FindTable("customer")->num_rows());
  EXPECT_NE(RowToString(a.FindTable("customer")->rows()[0]),
            RowToString(b.FindTable("customer")->rows()[0]));
}

TEST_F(TpchGenTest, QuerySetWellFormed) {
  EXPECT_EQ(TpchQuerySet().size(), 10u);
  int with_subquery = 0;
  for (const TpchQuery& query : TpchQuerySet()) {
    EXPECT_FALSE(query.sql.empty());
    EXPECT_FALSE(query.title.empty());
    with_subquery += query.has_subquery ? 1 : 0;
  }
  EXPECT_EQ(with_subquery, 9);  // all but Q1
  EXPECT_EQ(GetTpchQuery("Q17").id, "Q17");
}

}  // namespace
}  // namespace orq
