// Unit tests for string helpers, chiefly SQL LIKE matching.
#include <gtest/gtest.h>

#include "common/str_util.h"

namespace orq {
namespace {

TEST(StrUtilTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("SELECT", "select"));
  EXPECT_TRUE(EqualsIgnoreCase("MiXeD", "mIxEd"));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "abd"));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "abcd"));
}

TEST(StrUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

struct LikeCase {
  const char* text;
  const char* pattern;
  bool matches;
};

class LikeTest : public ::testing::TestWithParam<LikeCase> {};

TEST_P(LikeTest, Matches) {
  const LikeCase& c = GetParam();
  EXPECT_EQ(LikeMatch(c.text, c.pattern), c.matches)
      << "'" << c.text << "' LIKE '" << c.pattern << "'";
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, LikeTest,
    ::testing::Values(
        LikeCase{"hello", "hello", true},
        LikeCase{"hello", "h%", true},
        LikeCase{"hello", "%o", true},
        LikeCase{"hello", "%ell%", true},
        LikeCase{"hello", "h_llo", true},
        LikeCase{"hello", "_____", true},
        LikeCase{"hello", "____", false},
        LikeCase{"hello", "", false},
        LikeCase{"", "", true},
        LikeCase{"", "%", true},
        LikeCase{"hello", "%", true},
        LikeCase{"hello", "%%", true},
        LikeCase{"hello", "z%", false},
        LikeCase{"MEDIUM POLISHED TIN", "MEDIUM POLISHED%", true},
        LikeCase{"STANDARD BRASS", "%BRASS", true},
        LikeCase{"STANDARD BRASS TIN", "%BRASS", false},
        LikeCase{"abcabc", "%abc", true},
        LikeCase{"a%b", "a%b", true},       // literal text also matches
        LikeCase{"forest green", "forest%", true},
        LikeCase{"ab", "a_b", false},
        LikeCase{"axb", "a_b", true}));

}  // namespace
}  // namespace orq
