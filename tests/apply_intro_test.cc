// Tests for Apply introduction (paper section 2.2): the translation of
// each subquery construct into Apply operators, checked by tree shape.
#include <gtest/gtest.h>

#include "algebra/printer.h"
#include "catalog/catalog.h"
#include "sql/apply_intro.h"
#include "sql/binder.h"
#include "sql/parser.h"

namespace orq {
namespace {

int CountKind(const RelExprPtr& node, RelKind kind) {
  int n = node->kind == kind ? 1 : 0;
  for (const RelExprPtr& child : node->children) n += CountKind(child, kind);
  return n;
}

int CountApplyKind(const RelExprPtr& node, ApplyKind kind) {
  int n =
      node->kind == RelKind::kApply && node->apply_kind == kind ? 1 : 0;
  for (const RelExprPtr& child : node->children) {
    n += CountApplyKind(child, kind);
  }
  return n;
}

bool AnySubqueryLeft(const RelExprPtr& node) {
  auto scalar_has = [](const ScalarExprPtr& e) {
    return e != nullptr && e->HasSubquery();
  };
  if (scalar_has(node->predicate)) return true;
  for (const ProjectItem& item : node->proj_items) {
    if (scalar_has(item.expr)) return true;
  }
  for (const RelExprPtr& child : node->children) {
    if (AnySubqueryLeft(child)) return true;
  }
  return false;
}

class ApplyIntroTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Table* t = *catalog_.CreateTable("t", {{"a", DataType::kInt64, false},
                                           {"b", DataType::kInt64, true}});
    t->SetPrimaryKey({0});
    Table* u = *catalog_.CreateTable("u", {{"c", DataType::kInt64, false},
                                           {"d", DataType::kInt64, true}});
    u->SetPrimaryKey({0});
  }

  RelExprPtr Introduce(const std::string& sql) {
    columns_ = std::make_shared<ColumnManager>();
    auto stmt = ParseSql(sql);
    EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
    Binder binder(&catalog_, columns_);
    auto bound = binder.Bind(**stmt);
    EXPECT_TRUE(bound.ok()) << bound.status().ToString();
    auto applied = IntroduceApplies(bound->root, columns_.get());
    EXPECT_TRUE(applied.ok()) << applied.status().ToString();
    RelExprPtr tree = *applied;
    EXPECT_FALSE(AnySubqueryLeft(tree))
        << PrintRelTree(*tree, columns_.get());
    return tree;
  }

  Catalog catalog_;
  ColumnManagerPtr columns_;
};

TEST_F(ApplyIntroTest, ExistsBecomesSemiApply) {
  RelExprPtr tree = Introduce(
      "select a from t where exists (select * from u where d = a)");
  EXPECT_EQ(CountApplyKind(tree, ApplyKind::kSemi), 1);
}

TEST_F(ApplyIntroTest, NotExistsBecomesAntiApply) {
  RelExprPtr tree = Introduce(
      "select a from t where not exists (select * from u where d = a)");
  EXPECT_EQ(CountApplyKind(tree, ApplyKind::kAnti), 1);
}

TEST_F(ApplyIntroTest, InBecomesSemiApplyWithEquality) {
  RelExprPtr tree =
      Introduce("select a from t where a in (select c from u)");
  EXPECT_EQ(CountApplyKind(tree, ApplyKind::kSemi), 1);
}

TEST_F(ApplyIntroTest, NotInBecomesAntiApplyWithNullGuard) {
  RelExprPtr tree =
      Introduce("select a from t where b not in (select d from u)");
  ASSERT_EQ(CountApplyKind(tree, ApplyKind::kAnti), 1);
  // The inner selection's predicate must accept unknown comparisons
  // (OR with IS NULL) so NOT IN's three-valued semantics survive.
  const RelExpr* apply = tree.get();
  while (apply->kind != RelKind::kApply) apply = apply->children[0].get();
  const RelExpr* inner = apply->children[1].get();
  ASSERT_EQ(inner->kind, RelKind::kSelect);
  EXPECT_EQ(inner->predicate->kind, ScalarKind::kOr);
}

TEST_F(ApplyIntroTest, ScalarAggregateSubqueryUsesCrossApply) {
  RelExprPtr tree = Introduce(
      "select a from t where 5 < (select sum(d) from u where c = a)");
  EXPECT_EQ(CountApplyKind(tree, ApplyKind::kCross), 1);
  EXPECT_EQ(CountKind(tree, RelKind::kMax1row), 0);  // exactly-one-row
}

TEST_F(ApplyIntroTest, NonAggregateScalarSubqueryGetsMax1rowGuard) {
  RelExprPtr tree = Introduce(
      "select a, (select d from u where d = b) from t");
  EXPECT_EQ(CountApplyKind(tree, ApplyKind::kOuter), 1);
  EXPECT_EQ(CountKind(tree, RelKind::kMax1row), 1);
}

TEST_F(ApplyIntroTest, KeyPinnedScalarSubqueryNeedsNoGuard) {
  // c is u's key: the compiler proves at most one row (paper section 2.4,
  // the "reverse the roles" example).
  RelExprPtr tree =
      Introduce("select a, (select d from u where c = a) from t");
  EXPECT_EQ(CountKind(tree, RelKind::kMax1row), 0);
  EXPECT_EQ(CountApplyKind(tree, ApplyKind::kOuter), 1);
}

TEST_F(ApplyIntroTest, QuantifiedAllBecomesAntiApply) {
  RelExprPtr tree = Introduce(
      "select a from t where a > all (select d from u where c = a)");
  EXPECT_EQ(CountApplyKind(tree, ApplyKind::kAnti), 1);
}

TEST_F(ApplyIntroTest, QuantifiedAnyBecomesSemiApply) {
  RelExprPtr tree =
      Introduce("select a from t where a > any (select d from u)");
  EXPECT_EQ(CountApplyKind(tree, ApplyKind::kSemi), 1);
}

TEST_F(ApplyIntroTest, ExistsUnderOrUsesCountForm) {
  // Not a top-level conjunct: rewritten through a scalar count aggregate
  // (section 2.4), i.e. a cross apply over a scalar GroupBy.
  RelExprPtr tree = Introduce(
      "select a from t where a = 1 or exists (select * from u where d = a)");
  EXPECT_EQ(CountApplyKind(tree, ApplyKind::kCross), 1);
  EXPECT_EQ(CountKind(tree, RelKind::kGroupBy), 1);
}

TEST_F(ApplyIntroTest, MultipleSubqueriesStackApplies) {
  RelExprPtr tree = Introduce(
      "select a from t "
      "where exists (select * from u where d = a) "
      "  and b in (select d from u) "
      "  and 3 < (select count(*) from u where c > a)");
  EXPECT_EQ(CountKind(tree, RelKind::kApply), 3);
}

TEST_F(ApplyIntroTest, SelectListBooleanExistsViaCount) {
  RelExprPtr tree = Introduce(
      "select a, case when exists (select * from u where d = a) then 1 "
      "else 0 end from t");
  EXPECT_EQ(CountApplyKind(tree, ApplyKind::kCross), 1);
}

}  // namespace
}  // namespace orq
