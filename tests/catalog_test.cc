// Unit tests for catalog, tables, indexes and statistics.
#include <gtest/gtest.h>

#include "catalog/catalog.h"

namespace orq {
namespace {

class CatalogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    table_ = *catalog_.CreateTable("t", {{"id", DataType::kInt64, false},
                                         {"grp", DataType::kInt64, false},
                                         {"val", DataType::kDouble, true}});
    table_->SetPrimaryKey({0});
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(table_
                      ->Append({Value::Int64(i), Value::Int64(i % 3),
                                i == 0 ? Value::Null()
                                       : Value::Double(i * 1.5)})
                      .ok());
    }
  }

  Catalog catalog_;
  Table* table_ = nullptr;
};

TEST_F(CatalogTest, CreateAndFindCaseInsensitive) {
  EXPECT_EQ(catalog_.FindTable("T"), table_);
  EXPECT_EQ(catalog_.FindTable("t"), table_);
  EXPECT_EQ(catalog_.FindTable("nope"), nullptr);
}

TEST_F(CatalogTest, DuplicateTableRejected) {
  Result<Table*> dup = catalog_.CreateTable("T", {{"x", DataType::kInt64}});
  EXPECT_FALSE(dup.ok());
}

TEST_F(CatalogTest, ColumnOrdinalLookup) {
  EXPECT_EQ(table_->ColumnOrdinal("id"), 0);
  EXPECT_EQ(table_->ColumnOrdinal("VAL"), 2);
  EXPECT_EQ(table_->ColumnOrdinal("missing"), -1);
}

TEST_F(CatalogTest, AppendChecksArity) {
  EXPECT_FALSE(table_->Append({Value::Int64(1)}).ok());
  EXPECT_TRUE(table_->Append({Value::Int64(99), Value::Int64(0),
                              Value::Double(1.0)})
                  .ok());
}

TEST_F(CatalogTest, PrimaryKeyRegistersUniqueKey) {
  ASSERT_EQ(table_->unique_keys().size(), 1u);
  EXPECT_EQ(table_->unique_keys()[0], (std::vector<int>{0}));
  table_->AddUniqueKey({1, 2});
  EXPECT_EQ(table_->unique_keys().size(), 2u);
}

TEST_F(CatalogTest, IndexLookupFindsBuckets) {
  table_->BuildIndex({1});
  const TableIndex* index = table_->FindIndex({1});
  ASSERT_NE(index, nullptr);
  const std::vector<size_t>* bucket = index->Lookup({Value::Int64(0)});
  ASSERT_NE(bucket, nullptr);
  EXPECT_EQ(bucket->size(), 4u);  // ids 0, 3, 6, 9
  EXPECT_EQ(index->Lookup({Value::Int64(42)}), nullptr);
}

TEST_F(CatalogTest, FindIndexIsOrderInsensitive) {
  table_->BuildIndex({1, 0});
  EXPECT_NE(table_->FindIndex({0, 1}), nullptr);
  EXPECT_NE(table_->FindIndex({1, 0}), nullptr);
  EXPECT_EQ(table_->FindIndex({0}), nullptr);
}

TEST_F(CatalogTest, StatsComputeRowAndDistinctCounts) {
  const TableStats& stats = catalog_.GetStats(*table_);
  EXPECT_DOUBLE_EQ(stats.row_count, 10.0);
  EXPECT_DOUBLE_EQ(stats.columns[0].distinct_count, 10.0);
  EXPECT_DOUBLE_EQ(stats.columns[1].distinct_count, 3.0);
  // val: one NULL out of ten rows.
  EXPECT_DOUBLE_EQ(stats.columns[2].null_fraction, 0.1);
  EXPECT_DOUBLE_EQ(stats.columns[2].min_value.double_value(), 1.5);
  EXPECT_DOUBLE_EQ(stats.columns[2].max_value.double_value(), 13.5);
}

TEST_F(CatalogTest, StatsAreCachedAndInvalidated) {
  const TableStats& first = catalog_.GetStats(*table_);
  EXPECT_DOUBLE_EQ(first.row_count, 10.0);
  ASSERT_TRUE(table_->Append({Value::Int64(100), Value::Int64(1),
                              Value::Double(2.0)})
                  .ok());
  // Cached until invalidated.
  EXPECT_DOUBLE_EQ(catalog_.GetStats(*table_).row_count, 10.0);
  catalog_.InvalidateStats();
  EXPECT_DOUBLE_EQ(catalog_.GetStats(*table_).row_count, 11.0);
}

TEST_F(CatalogTest, EmptyTableStats) {
  Table* empty = *catalog_.CreateTable("e", {{"x", DataType::kInt64, true}});
  const TableStats& stats = catalog_.GetStats(*empty);
  EXPECT_DOUBLE_EQ(stats.row_count, 0.0);
  EXPECT_DOUBLE_EQ(stats.columns[0].distinct_count, 1.0);  // clamped
}

}  // namespace
}  // namespace orq
