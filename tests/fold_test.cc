// Tests for constant folding and empty-subexpression detection (the
// "query normalization" simplifications of paper section 4).
#include <gtest/gtest.h>

#include <map>

#include "algebra/expr_util.h"
#include "engine/engine.h"
#include "normalize/fold.h"
#include "tests/test_util.h"

namespace orq {
namespace {

TEST(FoldScalarTest, EvaluatesLiteralArithmetic) {
  ScalarExprPtr e = MakeArith(ArithOp::kAdd, LitInt(2),
                              MakeArith(ArithOp::kMul, LitInt(3), LitInt(4)));
  ScalarExprPtr folded = FoldScalar(e);
  ASSERT_EQ(folded->kind, ScalarKind::kLiteral);
  EXPECT_EQ(folded->literal.int64_value(), 14);
}

TEST(FoldScalarTest, EvaluatesLiteralComparison) {
  ScalarExprPtr folded =
      FoldScalar(MakeCompare(CompareOp::kLt, LitInt(1), LitInt(2)));
  ASSERT_EQ(folded->kind, ScalarKind::kLiteral);
  EXPECT_TRUE(folded->literal.bool_value());
}

TEST(FoldScalarTest, AndOrShortcuts) {
  ScalarExprPtr x = CRef(1, DataType::kBool);
  // x AND FALSE = FALSE.
  EXPECT_TRUE(IsFalseOrNullLiteral(FoldScalar(MakeAnd2(x, LitBool(false)))));
  // x AND TRUE = x.
  EXPECT_EQ(FoldScalar(MakeAnd2(x, LitBool(true))), x);
  // x OR TRUE = TRUE.
  EXPECT_TRUE(IsTrueLiteral(FoldScalar(MakeOr({x, LitBool(true)}))));
  // x OR FALSE = x.
  EXPECT_EQ(FoldScalar(MakeOr({x, LitBool(false)})), x);
  // NULL is NOT neutral for AND (x AND NULL is not x): must stay.
  ScalarExprPtr and_null = FoldScalar(MakeAnd2(x, LitNull(DataType::kBool)));
  EXPECT_EQ(and_null->kind, ScalarKind::kAnd);
}

TEST(FoldScalarTest, DoubleNegationDrops) {
  ScalarExprPtr x = CRef(1, DataType::kBool);
  EXPECT_EQ(FoldScalar(MakeNot(MakeNot(x))), x);
}

TEST(FoldScalarTest, DivisionByZeroStaysForRuntime) {
  ScalarExprPtr e = MakeArith(ArithOp::kDiv, LitInt(1), LitInt(0));
  EXPECT_EQ(FoldScalar(e)->kind, ScalarKind::kArith);
}

class FoldEmptyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    columns_ = std::make_shared<ColumnManager>();
    t_ = *catalog_.CreateTable("t", {{"a", DataType::kInt64, false},
                                     {"b", DataType::kInt64, true}});
    t_->SetPrimaryKey({0});
    for (int i = 1; i <= 4; ++i) {
      ASSERT_TRUE(t_->Append({Value::Int64(i), Value::Int64(i)}).ok());
    }
  }

  RelExprPtr Get(std::map<std::string, ColumnId>* ids) {
    std::vector<ColumnId> cols;
    for (const ColumnSpec& spec : t_->columns()) {
      ColumnId id = columns_->NewColumn(spec.name, spec.type, spec.nullable);
      cols.push_back(id);
      (*ids)[spec.name] = id;
    }
    return MakeGet(t_, std::move(cols));
  }

  RelExprPtr Empty(std::map<std::string, ColumnId>* ids) {
    return MakeSelect(Get(ids), LitBool(false));
  }

  Catalog catalog_;
  ColumnManagerPtr columns_;
  Table* t_ = nullptr;
};

TEST_F(FoldEmptyTest, ContradictionDetectedByFolding) {
  std::map<std::string, ColumnId> t;
  RelExprPtr tree = MakeSelect(
      Get(&t), MakeCompare(CompareOp::kGt, LitInt(1), LitInt(2)));
  RelExprPtr folded = FoldAndDetectEmpty(tree, columns_.get());
  EXPECT_TRUE(IsProvablyEmpty(folded));
}

TEST_F(FoldEmptyTest, InnerJoinWithEmptyInputIsEmpty) {
  std::map<std::string, ColumnId> a, b;
  RelExprPtr join =
      MakeJoin(JoinKind::kInner, Empty(&a), Get(&b), TrueLiteral());
  EXPECT_TRUE(IsProvablyEmpty(FoldAndDetectEmpty(join, columns_.get())));
}

TEST_F(FoldEmptyTest, AntiJoinWithEmptyRightIsLeft) {
  std::map<std::string, ColumnId> a, b;
  RelExprPtr left = Get(&a);
  RelExprPtr anti =
      MakeJoin(JoinKind::kLeftAnti, left, Empty(&b), TrueLiteral());
  RelExprPtr folded = FoldAndDetectEmpty(anti, columns_.get());
  EXPECT_EQ(folded, left);
}

TEST_F(FoldEmptyTest, OuterJoinWithEmptyRightPadsNulls) {
  std::map<std::string, ColumnId> a, b;
  RelExprPtr left = Get(&a);
  RelExprPtr right = Empty(&b);
  RelExprPtr loj =
      MakeJoin(JoinKind::kLeftOuter, left, right,
               Eq(CRef(*columns_, a.at("a")), CRef(*columns_, b.at("a"))));
  RelExprPtr folded = FoldAndDetectEmpty(loj, columns_.get());
  ASSERT_EQ(folded->kind, RelKind::kProject);
  // Semantics preserved: 4 left rows, right columns NULL.
  Result<std::vector<Row>> rows =
      ExecLogical(folded, *columns_, folded->OutputColumns());
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 4u);
  EXPECT_TRUE((*rows)[0][2].is_null());
}

TEST_F(FoldEmptyTest, UnionDropsEmptyBranches) {
  std::map<std::string, ColumnId> a, b, c;
  RelExprPtr live1 = Get(&a);
  RelExprPtr dead = Empty(&b);
  RelExprPtr live2 = Get(&c);
  ColumnId out = columns_->NewColumn("u", DataType::kInt64, true);
  RelExprPtr uni = MakeUnionAll(
      {live1, dead, live2}, {out},
      {{a.at("a")}, {b.at("a")}, {c.at("a")}});
  RelExprPtr folded = FoldAndDetectEmpty(uni, columns_.get());
  ASSERT_EQ(folded->kind, RelKind::kUnionAll);
  EXPECT_EQ(folded->children.size(), 2u);
}

TEST_F(FoldEmptyTest, UnionWithOneSurvivorBecomesRename) {
  std::map<std::string, ColumnId> a, b;
  RelExprPtr live = Get(&a);
  RelExprPtr dead = Empty(&b);
  ColumnId out = columns_->NewColumn("u", DataType::kInt64, true);
  RelExprPtr uni =
      MakeUnionAll({live, dead}, {out}, {{a.at("a")}, {b.at("a")}});
  RelExprPtr folded = FoldAndDetectEmpty(uni, columns_.get());
  EXPECT_EQ(folded->kind, RelKind::kProject);
  EXPECT_EQ(folded->OutputColumns(), (std::vector<ColumnId>{out}));
}

TEST_F(FoldEmptyTest, ScalarAggregateOfEmptySurvives) {
  // Section 1.1: a scalar aggregate of nothing is still one row — the
  // empty marker must NOT propagate through it.
  std::map<std::string, ColumnId> t;
  ColumnId cnt = columns_->NewColumn("cnt", DataType::kInt64, false);
  RelExprPtr agg = MakeScalarGroupBy(
      Empty(&t), {AggItem{AggFunc::kCountStar, nullptr, cnt, false}});
  RelExprPtr folded = FoldAndDetectEmpty(agg, columns_.get());
  EXPECT_EQ(folded->kind, RelKind::kGroupBy);
  // Vector aggregate of nothing IS nothing.
  std::map<std::string, ColumnId> t2;
  RelExprPtr empty2 = Empty(&t2);
  RelExprPtr vec = MakeGroupBy(
      empty2, ColumnSet{t2.at("a")},
      {AggItem{AggFunc::kCountStar, nullptr,
               columns_->NewColumn("c2", DataType::kInt64, false), false}});
  EXPECT_TRUE(IsProvablyEmpty(FoldAndDetectEmpty(vec, columns_.get())));
}

TEST_F(FoldEmptyTest, EndToEndContradictionShortCircuits) {
  QueryEngine engine(&catalog_);
  Result<QueryResult> result =
      engine.Execute("select a from t where 1 = 2 and b > 0");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows.size(), 0u);
  // The plan never opened the scan: no operator produced any rows.
  EXPECT_EQ(result->rows_produced, 0);
}

TEST_F(FoldEmptyTest, EndToEndScalarAggOverContradiction) {
  QueryEngine engine(&catalog_);
  Result<QueryResult> result =
      engine.Execute("select count(*) from t where 1 = 2");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0][0].int64_value(), 0);
}

}  // namespace
}  // namespace orq
