// Batch-execution unit tests: RowBatch mechanics, batch-boundary behavior
// of the batched operators (exact multiples of the batch size, unmatched
// left-outer rows straddling a boundary), typed NULL padding, and the
// row-mode vs batch-mode equivalence of results and stats.
#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "catalog/catalog.h"
#include "exec/ops.h"
#include "obs/stats.h"
#include "tests/test_util.h"

namespace orq {
namespace {

// Drains `op` with an explicit batch size and execution mode.
Result<std::vector<Row>> DrainBatched(PhysicalOp* op, int batch_size,
                                      bool batched,
                                      StatsCollector* stats = nullptr) {
  ExecContext ctx;
  ctx.batched = batched;
  ctx.batch_size = batch_size;
  ExecInstruments instruments;
  instruments.stats = stats;
  if (stats != nullptr) ctx.instruments = &instruments;
  return ExecuteToVector(op, &ctx);
}

TEST(RowBatchTest, PushPopClearAndCapacity) {
  RowBatch batch(4);
  EXPECT_EQ(batch.capacity(), 4u);
  EXPECT_TRUE(batch.empty());
  EXPECT_FALSE(batch.full());

  Row& first = batch.PushRow();
  first = {Value::Int64(1)};
  EXPECT_EQ(batch.size(), 1u);
  batch.PushRow() = {Value::Int64(2)};
  batch.PopRow();
  EXPECT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch.row(0)[0].int64_value(), 1);

  while (!batch.full()) batch.PushRow();
  EXPECT_EQ(batch.size(), 4u);

  // Clear keeps capacity and storage; the next PushRow exposes the old
  // slot for overwrite.
  batch.Clear();
  EXPECT_TRUE(batch.empty());
  EXPECT_EQ(batch.capacity(), 4u);
  EXPECT_EQ(batch.PushRow()[0].int64_value(), 1);  // stale slot 0
}

TEST(RowBatchTest, RowAddressesStableAcrossPush) {
  RowBatch batch(8);
  const Row* first = &batch.PushRow();
  while (!batch.full()) batch.PushRow();
  EXPECT_EQ(first, &batch.row(0));
}

class BatchExecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // 12 left rows keyed 0..11; right matches even keys < 8 (two rows per
    // match so join fan-out crosses batch boundaries at size 4).
    t_ = *catalog_.CreateTable("t", {{"k", DataType::kInt64, false}});
    for (int i = 0; i < 12; ++i) {
      ASSERT_TRUE(t_->Append({Value::Int64(i)}).ok());
    }
    s_ = *catalog_.CreateTable("s", {{"fk", DataType::kInt64, false},
                                     {"w", DataType::kInt64, false}});
    for (int i = 0; i < 8; i += 2) {
      ASSERT_TRUE(s_->Append({Value::Int64(i), Value::Int64(i * 10)}).ok());
      ASSERT_TRUE(
          s_->Append({Value::Int64(i), Value::Int64(i * 10 + 1)}).ok());
    }
  }

  PhysicalOpPtr ScanT() { return MakeTableScan(t_, {0}, {1}); }
  PhysicalOpPtr ScanS() { return MakeTableScan(s_, {0, 1}, {2, 3}); }

  ScalarExprPtr JoinPred() {
    return Eq(CRef(1, DataType::kInt64), CRef(2, DataType::kInt64));
  }

  Catalog catalog_;
  Table* t_ = nullptr;
  Table* s_ = nullptr;
  Table* u_ = nullptr;
};

// A stream whose length is an exact multiple of the batch size must end
// with one final empty pull, not an error or a duplicated batch.
TEST_F(BatchExecTest, ExactMultipleOfBatchSizeTerminates) {
  PhysicalOpPtr scan = ScanT();  // 12 rows
  ExecContext ctx;
  ctx.batch_size = 4;
  ASSERT_TRUE(scan->Open(&ctx).ok());
  RowBatch batch(ctx.batch_size);
  int pulls = 0;
  size_t rows = 0;
  for (;;) {
    ASSERT_TRUE(scan->NextBatch(&ctx, &batch).ok());
    ++pulls;
    if (batch.empty()) break;
    rows += batch.size();
  }
  scan->Close();
  EXPECT_EQ(rows, 12u);
  EXPECT_EQ(pulls, 4);  // three full batches + the empty EOS pull
}

// Empty input: the very first pull is the EOS pull.
TEST_F(BatchExecTest, EmptyInputFirstPullIsEos) {
  PhysicalOpPtr plan = MakeFilterOp(ScanT(), LitBool(false));
  ExecContext ctx;
  ctx.batch_size = 4;
  ASSERT_TRUE(plan->Open(&ctx).ok());
  RowBatch batch(ctx.batch_size);
  ASSERT_TRUE(plan->NextBatch(&ctx, &batch).ok());
  EXPECT_TRUE(batch.empty());
  plan->Close();
}

// Left-outer joins emit unmatched rows after the probe of each left row
// fails; with batch size 4 and 8 unmatched left rows the padded output
// straddles several batch boundaries. Both join implementations must agree
// with the row-at-a-time drain exactly.
TEST_F(BatchExecTest, LeftOuterUnmatchedStraddlesBatchBoundary) {
  for (bool hash : {false, true}) {
    auto make = [&]() -> PhysicalOpPtr {
      if (hash) {
        return MakeHashJoinOp(
            PhysJoinKind::kLeftOuter, ScanT(), ScanS(),
            {{CRef(1, DataType::kInt64), CRef(2, DataType::kInt64)}}, nullptr,
            {DataType::kInt64, DataType::kInt64});
      }
      return MakeNLJoinOp(PhysJoinKind::kLeftOuter, ScanT(), ScanS(),
                          JoinPred(), false,
                          {DataType::kInt64, DataType::kInt64});
    };
    PhysicalOpPtr batched_plan = make();
    Result<std::vector<Row>> batched = DrainBatched(batched_plan.get(), 4,
                                                    /*batched=*/true);
    ASSERT_TRUE(batched.ok()) << batched.status().ToString();
    PhysicalOpPtr row_plan = make();
    Result<std::vector<Row>> row_mode = DrainBatched(row_plan.get(), 4,
                                                     /*batched=*/false);
    ASSERT_TRUE(row_mode.ok()) << row_mode.status().ToString();
    // 4 matched keys x 2 right rows + 8 unmatched = 16 rows.
    EXPECT_EQ(batched->size(), 16u) << (hash ? "hash" : "nl");
    EXPECT_EQ(CanonicalRows(*batched), CanonicalRows(*row_mode))
        << (hash ? "hash" : "nl");
  }
}

// Unmatched LOJ padding must carry the right layout's declared types, not
// default int64 (a Compute above the join dispatches on them).
TEST_F(BatchExecTest, LeftOuterPadsDeclaredTypes) {
  u_ = *catalog_.CreateTable("u", {{"fk", DataType::kInt64, false},
                                   {"name", DataType::kString, false},
                                   {"score", DataType::kDouble, false}});
  ASSERT_TRUE(u_->Append({Value::Int64(0), Value::String("zero"),
                          Value::Double(0.5)})
                  .ok());
  const std::vector<DataType> right_types = {
      DataType::kInt64, DataType::kString, DataType::kDouble};
  auto scan_u = [&]() { return MakeTableScan(u_, {0, 1, 2}, {2, 3, 4}); };
  PhysicalOpPtr nl = MakeNLJoinOp(PhysJoinKind::kLeftOuter, ScanT(), scan_u(),
                                  JoinPred(), false, right_types);
  PhysicalOpPtr hash = MakeHashJoinOp(
      PhysJoinKind::kLeftOuter, ScanT(), scan_u(),
      {{CRef(1, DataType::kInt64), CRef(2, DataType::kInt64)}}, nullptr,
      right_types);
  for (PhysicalOp* plan : {nl.get(), hash.get()}) {
    Result<std::vector<Row>> rows = DrainBatched(plan, 4, /*batched=*/true);
    ASSERT_TRUE(rows.ok()) << rows.status().ToString();
    ASSERT_EQ(rows->size(), 12u);
    int padded = 0;
    for (const Row& row : *rows) {
      if (!row[1].is_null()) continue;  // matched k=0
      ++padded;
      EXPECT_EQ(row[1].type(), DataType::kInt64);
      EXPECT_EQ(row[2].type(), DataType::kString);
      EXPECT_EQ(row[3].type(), DataType::kDouble);
    }
    EXPECT_EQ(padded, 11);
  }
}

// The two pull disciplines are one engine: identical rows, identical
// rows_produced, identical per-operator rows_out/opens, and the batched
// path pulls no more often than the row path.
TEST_F(BatchExecTest, StatsConsistentAcrossModes) {
  auto make = [&]() {
    PhysicalOpPtr join = MakeHashJoinOp(
        PhysJoinKind::kLeftOuter, ScanT(), ScanS(),
        {{CRef(1, DataType::kInt64), CRef(2, DataType::kInt64)}}, nullptr,
        {DataType::kInt64, DataType::kInt64});
    return MakeHashAggregateOp(
        std::move(join), {1},
        {AggItem{AggFunc::kCountStar, nullptr, 5, false}}, false);
  };

  auto run = [&](bool batched, StatsCollector* stats, int64_t* produced) {
    PhysicalOpPtr plan = make();
    ExecContext ctx;
    ctx.batched = batched;
    ctx.batch_size = 4;
    ExecInstruments instruments;
    instruments.stats = stats;
    if (stats != nullptr) ctx.instruments = &instruments;
    Result<std::vector<Row>> rows = ExecuteToVector(plan.get(), &ctx);
    EXPECT_TRUE(rows.ok()) << rows.status().ToString();
    *produced = ctx.rows_produced;
    return CanonicalRows(*rows);
  };

  StatsCollector batched_stats;
  StatsCollector row_stats;
  int64_t batched_produced = 0;
  int64_t row_produced = 0;
  auto batched_rows = run(true, &batched_stats, &batched_produced);
  auto row_rows = run(false, &row_stats, &row_produced);

  EXPECT_EQ(batched_rows, row_rows);
  EXPECT_EQ(batched_produced, row_produced);
  EXPECT_EQ(batched_stats.TotalRowsOut(), row_stats.TotalRowsOut());
  EXPECT_EQ(batched_stats.TotalRowsOut(), batched_produced);
}

// Result equivalence across every join kind, both implementations, and
// batch sizes around the boundary cases (1, a non-divisor, the default).
TEST_F(BatchExecTest, ModeEquivalenceSweep) {
  for (PhysJoinKind kind :
       {PhysJoinKind::kInner, PhysJoinKind::kLeftOuter, PhysJoinKind::kLeftSemi,
        PhysJoinKind::kLeftAnti}) {
    for (bool hash : {false, true}) {
      auto make = [&]() -> PhysicalOpPtr {
        if (hash) {
          return MakeHashJoinOp(
              kind, ScanT(), ScanS(),
              {{CRef(1, DataType::kInt64), CRef(2, DataType::kInt64)}},
              nullptr, {DataType::kInt64, DataType::kInt64});
        }
        return MakeNLJoinOp(kind, ScanT(), ScanS(), JoinPred(), false,
                            {DataType::kInt64, DataType::kInt64});
      };
      PhysicalOpPtr reference_plan = make();
      Result<std::vector<Row>> reference =
          DrainBatched(reference_plan.get(), kDefaultBatchRows,
                       /*batched=*/false);
      ASSERT_TRUE(reference.ok());
      auto expected = CanonicalRows(*reference);
      for (int batch_size : {1, 3, kDefaultBatchRows}) {
        PhysicalOpPtr plan = make();
        Result<std::vector<Row>> rows =
            DrainBatched(plan.get(), batch_size, /*batched=*/true);
        ASSERT_TRUE(rows.ok()) << rows.status().ToString();
        EXPECT_EQ(CanonicalRows(*rows), expected)
            << (hash ? "hash" : "nl") << " kind=" << static_cast<int>(kind)
            << " batch=" << batch_size;
      }
    }
  }
}

// Correlated Apply (rebind_inner) stays on the row adapter but must still
// honor the batched drain protocol from above.
TEST_F(BatchExecTest, CorrelatedApplyUnderBatchedDrain) {
  auto make = [&]() {
    PhysicalOpPtr inner = MakeFilterOp(
        ScanS(), Eq(CRef(2, DataType::kInt64), CRef(1, DataType::kInt64)));
    return MakeNLJoinOp(PhysJoinKind::kInner, ScanT(), std::move(inner),
                        TrueLiteral(), true);
  };
  PhysicalOpPtr batched_plan = make();
  Result<std::vector<Row>> batched =
      DrainBatched(batched_plan.get(), 4, /*batched=*/true);
  ASSERT_TRUE(batched.ok());
  EXPECT_EQ(batched->size(), 8u);  // 4 matched keys x 2 right rows
  PhysicalOpPtr row_plan = make();
  Result<std::vector<Row>> row_mode =
      DrainBatched(row_plan.get(), 4, /*batched=*/false);
  ASSERT_TRUE(row_mode.ok());
  EXPECT_EQ(CanonicalRows(*batched), CanonicalRows(*row_mode));
}

}  // namespace
}  // namespace orq
