// Morsel-driven parallel execution tests: TaskPool mechanics, parallel vs
// serial result equality on TPC-H (batch and row mode, several thread
// counts), Exchange placement in EXPLAIN, the stats invariant under
// parallel execution, the scalar-aggregate empty-input edge across
// workers, and uncorrelated inner-spool caching.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "exec/task_pool.h"
#include "obs/report.h"
#include "tpch/tpch_gen.h"
#include "tpch/tpch_queries.h"

namespace orq {
namespace {

Catalog* SharedTpch() {
  static Catalog* catalog = [] {
    auto* c = new Catalog();
    TpchGenOptions options;
    options.scale_factor = 0.002;
    Status s = GenerateTpch(c, options);
    if (!s.ok()) {
      ADD_FAILURE() << s.ToString();
    }
    return c;
  }();
  return catalog;
}

std::vector<std::string> Canonical(const QueryResult& result) {
  std::vector<std::string> rows;
  rows.reserve(result.rows.size());
  for (const Row& row : result.rows) {
    // Round doubles: merged partial sums may reassociate float additions.
    std::string line;
    for (const Value& v : row) {
      if (!v.is_null() && v.type() == DataType::kDouble) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.4f|", v.double_value());
        line += buf;
      } else {
        line += v.ToString() + "|";
      }
    }
    rows.push_back(std::move(line));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

EngineOptions ParallelOptions(int threads, int morsel_rows = 256) {
  EngineOptions options = EngineOptions::Full();
  options.exec.num_threads = threads;
  // Small morsels so even SF 0.002 tables split into many claims.
  options.exec.morsel_rows = morsel_rows;
  return options;
}

TEST(TaskPoolTest, RunsEverySubmittedTask) {
  TaskPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 200; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 200);
  EXPECT_GE(pool.tasks_run(), 200);
}

TEST(TaskPoolTest, ClampsThreadCountToOne) {
  TaskPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran.store(true); });
  pool.WaitIdle();
  EXPECT_TRUE(ran.load());
}

TEST(TaskPoolTest, NestedSubmissionsComplete) {
  // Tasks that spawn tasks land in other workers' deques; draining them
  // exercises the stealing path regardless of scheduling.
  TaskPool pool(3);
  std::atomic<int> counter{0};
  for (int i = 0; i < 16; ++i) {
    pool.Submit([&pool, &counter] {
      for (int j = 0; j < 8; ++j) {
        pool.Submit([&counter] { counter.fetch_add(1); });
      }
    });
  }
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 16 * 8);
}

TEST(ParallelTpch, ResultsMatchSerialAtEveryThreadCount) {
  Catalog* catalog = SharedTpch();
  QueryEngine serial(catalog, EngineOptions::Full());
  for (const TpchQuery& query : TpchQuerySet()) {
    Result<QueryResult> expected = serial.Execute(query.sql);
    ASSERT_TRUE(expected.ok())
        << query.id << ": " << expected.status().ToString();
    std::vector<std::string> expected_rows = Canonical(*expected);
    for (int threads : {1, 4}) {
      QueryEngine parallel(catalog, ParallelOptions(threads));
      Result<QueryResult> actual = parallel.Execute(query.sql);
      ASSERT_TRUE(actual.ok()) << query.id << " threads=" << threads << ": "
                               << actual.status().ToString();
      EXPECT_EQ(Canonical(*actual), expected_rows)
          << query.id << " diverged at threads=" << threads;
    }
  }
}

TEST(ParallelTpch, RowModeMatchesBatchMode) {
  Catalog* catalog = SharedTpch();
  QueryEngine serial(catalog, EngineOptions::Full());
  const std::vector<TpchQuery>& queries = TpchQuerySet();
  const size_t take = std::min<size_t>(queries.size(), 5);
  for (size_t i = 0; i < take; ++i) {
    const TpchQuery& query = queries[i];
    Result<QueryResult> expected = serial.Execute(query.sql);
    ASSERT_TRUE(expected.ok()) << query.id;
    EngineOptions options = ParallelOptions(4);
    options.exec.batched = false;
    QueryEngine parallel(catalog, options);
    Result<QueryResult> actual = parallel.Execute(query.sql);
    ASSERT_TRUE(actual.ok()) << query.id << ": "
                             << actual.status().ToString();
    EXPECT_EQ(Canonical(*actual), Canonical(*expected)) << query.id;
  }
}

TEST(ParallelTpch, ExplainPlacesOneExchange) {
  QueryEngine engine(SharedTpch(), ParallelOptions(4));
  Result<std::string> plan = engine.Explain(
      "select l_returnflag, count(*), sum(l_extendedprice) from lineitem "
      "group by l_returnflag");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  const std::string& text = *plan;
  size_t first = text.find("Exchange(4)");
  EXPECT_NE(first, std::string::npos) << text;
  EXPECT_EQ(text.find("Exchange", first + 1), std::string::npos)
      << "more than one exchange:\n" << text;
  EXPECT_NE(text.find("MorselScan"), std::string::npos) << text;
}

TEST(ParallelTpch, SerialModeHasNoExchange) {
  QueryEngine engine(SharedTpch(), EngineOptions::Full());
  Result<std::string> plan = engine.Explain(
      "select l_returnflag, count(*) from lineitem group by l_returnflag");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->find("Exchange"), std::string::npos);
}

TEST(ParallelTpch, StatsInvariantHoldsUnderParallelExecution) {
  Catalog* catalog = SharedTpch();
  const std::vector<std::string> queries = {
      "select l_returnflag, l_linestatus, sum(l_quantity), count(*) "
      "from lineitem group by l_returnflag, l_linestatus",
      "select p_brand, count(*) from lineitem, part "
      "where l_partkey = p_partkey group by p_brand",
      "select count(*) from lineitem where l_quantity < 25",
  };
  for (const std::string& sql : queries) {
    QueryEngine engine(catalog, ParallelOptions(4));
    Result<AnalyzedQuery> analyzed = engine.ExecuteAnalyzed(sql);
    ASSERT_TRUE(analyzed.ok()) << analyzed.status().ToString();
    // Per-operator stats (merged from the worker shards) must account for
    // exactly the rows the contexts counted — nothing lost, nothing
    // double-counted.
    EXPECT_EQ(TotalRowsOut(analyzed->plan), analyzed->result.rows_produced)
        << sql;
    EXPECT_GT(
        analyzed->metrics.counter(MetricCounter::kMorselsClaimed), 0)
        << sql;
    EXPECT_GT(analyzed->metrics.counter(MetricCounter::kExchangeBatches), 0)
        << sql;
  }
}

TEST(ParallelTpch, ScalarAggregateOverEmptyInputEmitsOneRow) {
  QueryEngine engine(SharedTpch(), ParallelOptions(4));
  Result<QueryResult> result = engine.Execute(
      "select count(*), sum(l_quantity) from lineitem where l_quantity < 0");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0][0].int64_value(), 0);
  EXPECT_TRUE(result->rows[0][1].is_null());
}

TEST(ParallelTpch, OneThreadGangStillProducesCompleteResults) {
  // threads=1 runs the whole exchange machinery with a single instance —
  // the configuration the overhead measurement uses.
  QueryEngine engine(SharedTpch(), ParallelOptions(1));
  Result<QueryResult> parallel = engine.Execute(
      "select count(*) from lineitem");
  QueryEngine serial(SharedTpch(), EngineOptions::Full());
  Result<QueryResult> expected = serial.Execute(
      "select count(*) from lineitem");
  ASSERT_TRUE(parallel.ok());
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(parallel->rows[0][0].int64_value(),
            expected->rows[0][0].int64_value());
}

TEST(InnerCacheTest, UncorrelatedInnerReplaysAcrossReopens) {
  // Under correlated-only execution, the outer subquery rebinds per orders
  // row and re-opens its inner tree each time; the nested uncorrelated
  // aggregate must be spooled once and replayed, not re-executed.
  const std::string sql =
      "select o_orderkey from orders where o_totalprice > "
      "(select sum(l_extendedprice) from lineitem "
      " where l_orderkey = o_orderkey and l_quantity < "
      "  (select avg(l_quantity) from lineitem))";
  Catalog* catalog = SharedTpch();
  QueryEngine reference(catalog, EngineOptions::Full());
  Result<QueryResult> expected = reference.Execute(sql);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();

  QueryEngine correlated(catalog, EngineOptions::CorrelatedOnly());
  Result<AnalyzedQuery> analyzed = correlated.ExecuteAnalyzed(sql);
  ASSERT_TRUE(analyzed.ok()) << analyzed.status().ToString();
  EXPECT_EQ(Canonical(analyzed->result), Canonical(*expected));
  EXPECT_GT(analyzed->metrics.counter(MetricCounter::kInnerCacheReplays), 0);
}

}  // namespace
}  // namespace orq
