// Unit tests for the physical operators (Volcano iterators), exercised
// directly without the optimizer.
#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "exec/ops.h"
#include "tests/test_util.h"

namespace orq {
namespace {

class ExecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    t_ = *catalog_.CreateTable("t", {{"k", DataType::kInt64, false},
                                     {"v", DataType::kInt64, true}});
    t_->SetPrimaryKey({0});
    for (int i = 1; i <= 5; ++i) {
      ASSERT_TRUE(t_->Append({Value::Int64(i),
                              i == 3 ? Value::Null() : Value::Int64(i * 10)})
                      .ok());
    }
    t_->BuildIndex({0});

    s_ = *catalog_.CreateTable("s", {{"fk", DataType::kInt64, false},
                                     {"w", DataType::kInt64, false}});
    ASSERT_TRUE(s_->Append({Value::Int64(1), Value::Int64(100)}).ok());
    ASSERT_TRUE(s_->Append({Value::Int64(1), Value::Int64(200)}).ok());
    ASSERT_TRUE(s_->Append({Value::Int64(2), Value::Int64(300)}).ok());
    ASSERT_TRUE(s_->Append({Value::Int64(9), Value::Int64(900)}).ok());
  }

  PhysicalOpPtr ScanT() { return MakeTableScan(t_, {0, 1}, {1, 2}); }
  PhysicalOpPtr ScanS() { return MakeTableScan(s_, {0, 1}, {3, 4}); }

  std::vector<Row> Drain(PhysicalOp* op) {
    ExecContext ctx;
    Result<std::vector<Row>> rows = ExecuteToVector(op, &ctx);
    EXPECT_TRUE(rows.ok()) << rows.status().ToString();
    return rows.ok() ? *rows : std::vector<Row>{};
  }

  Catalog catalog_;
  Table* t_ = nullptr;
  Table* s_ = nullptr;
};

TEST_F(ExecTest, TableScanProjectsOrdinals) {
  PhysicalOpPtr scan = MakeTableScan(t_, {1}, {2});
  std::vector<Row> rows = Drain(scan.get());
  ASSERT_EQ(rows.size(), 5u);
  EXPECT_EQ(rows[0].size(), 1u);
  EXPECT_EQ(rows[0][0].int64_value(), 10);
}

TEST_F(ExecTest, TableScanIsRestartable) {
  PhysicalOpPtr scan = ScanT();
  EXPECT_EQ(Drain(scan.get()).size(), 5u);
  EXPECT_EQ(Drain(scan.get()).size(), 5u);  // re-open works
}

TEST_F(ExecTest, FilterKeepsOnlyTrueRows) {
  // v > 20: NULL v row is dropped (3VL).
  PhysicalOpPtr plan = MakeFilterOp(
      ScanT(),
      MakeCompare(CompareOp::kGt, CRef(2, DataType::kInt64), LitInt(20)));
  EXPECT_EQ(Drain(plan.get()).size(), 2u);  // 40, 50
}

TEST_F(ExecTest, ComputeEvaluatesItems) {
  PhysicalOpPtr plan = MakeComputeOp(
      ScanT(),
      {ProjectItem{7, MakeArith(ArithOp::kAdd, CRef(1, DataType::kInt64),
                                LitInt(1000))}},
      {1});
  std::vector<Row> rows = Drain(plan.get());
  ASSERT_EQ(rows.size(), 5u);
  EXPECT_EQ(rows[0][0].int64_value(), 1);     // passthrough k
  EXPECT_EQ(rows[0][1].int64_value(), 1001);  // computed
}

TEST_F(ExecTest, NLJoinInner) {
  PhysicalOpPtr plan = MakeNLJoinOp(
      PhysJoinKind::kInner, ScanT(), ScanS(),
      Eq(CRef(1, DataType::kInt64), CRef(3, DataType::kInt64)), false);
  EXPECT_EQ(Drain(plan.get()).size(), 3u);  // k=1 x2, k=2 x1
}

TEST_F(ExecTest, NLJoinLeftOuterPadsNulls) {
  PhysicalOpPtr plan = MakeNLJoinOp(
      PhysJoinKind::kLeftOuter, ScanT(), ScanS(),
      Eq(CRef(1, DataType::kInt64), CRef(3, DataType::kInt64)), false);
  std::vector<Row> rows = Drain(plan.get());
  EXPECT_EQ(rows.size(), 6u);  // 3 matches + 3 unmatched t rows
  int padded = 0;
  for (const Row& row : rows) {
    if (row[2].is_null() && row[3].is_null()) ++padded;
  }
  EXPECT_EQ(padded, 3);
}

TEST_F(ExecTest, NLJoinSemiAndAnti) {
  PhysicalOpPtr semi = MakeNLJoinOp(
      PhysJoinKind::kLeftSemi, ScanT(), ScanS(),
      Eq(CRef(1, DataType::kInt64), CRef(3, DataType::kInt64)), false);
  EXPECT_EQ(Drain(semi.get()).size(), 2u);  // k=1, k=2 (once each)
  PhysicalOpPtr anti = MakeNLJoinOp(
      PhysJoinKind::kLeftAnti, ScanT(), ScanS(),
      Eq(CRef(1, DataType::kInt64), CRef(3, DataType::kInt64)), false);
  EXPECT_EQ(Drain(anti.get()).size(), 3u);  // k=3,4,5
}

TEST_F(ExecTest, HashJoinMatchesNLJoin) {
  for (PhysJoinKind kind :
       {PhysJoinKind::kInner, PhysJoinKind::kLeftOuter,
        PhysJoinKind::kLeftSemi, PhysJoinKind::kLeftAnti}) {
    PhysicalOpPtr nl = MakeNLJoinOp(
        kind, ScanT(), ScanS(),
        Eq(CRef(1, DataType::kInt64), CRef(3, DataType::kInt64)), false);
    PhysicalOpPtr hash = MakeHashJoinOp(
        kind, ScanT(), ScanS(),
        {{CRef(1, DataType::kInt64), CRef(3, DataType::kInt64)}}, nullptr);
    EXPECT_EQ(CanonicalRows(Drain(nl.get())),
              CanonicalRows(Drain(hash.get())))
        << static_cast<int>(kind);
  }
}

TEST_F(ExecTest, HashJoinResidualPredicate) {
  PhysicalOpPtr plan = MakeHashJoinOp(
      PhysJoinKind::kInner, ScanT(), ScanS(),
      {{CRef(1, DataType::kInt64), CRef(3, DataType::kInt64)}},
      MakeCompare(CompareOp::kGt, CRef(4, DataType::kInt64), LitInt(150)));
  EXPECT_EQ(Drain(plan.get()).size(), 2u);  // w=200, w=300
}

TEST_F(ExecTest, HashJoinNullKeysNeverMatch) {
  // Join t.v = s.fk: t row with NULL v joins nothing; with LeftOuter it
  // still appears padded.
  PhysicalOpPtr plan = MakeHashJoinOp(
      PhysJoinKind::kLeftOuter, ScanT(), ScanS(),
      {{CRef(2, DataType::kInt64), CRef(3, DataType::kInt64)}}, nullptr);
  std::vector<Row> rows = Drain(plan.get());
  EXPECT_EQ(rows.size(), 5u);  // no v matches any fk; all padded
  for (const Row& row : rows) EXPECT_TRUE(row[2].is_null());
}

TEST_F(ExecTest, CorrelatedApplyRebindsParameters) {
  // Apply(t, sigma(fk = k)(s)): inner filter reads k from the context.
  PhysicalOpPtr inner = MakeFilterOp(
      ScanS(),
      Eq(CRef(3, DataType::kInt64), CRef(1, DataType::kInt64)));
  PhysicalOpPtr plan = MakeNLJoinOp(PhysJoinKind::kInner, ScanT(),
                                    std::move(inner), TrueLiteral(), true);
  EXPECT_EQ(Drain(plan.get()).size(), 3u);
}

TEST_F(ExecTest, IndexSeekUsesParameters) {
  const TableIndex* index = t_->FindIndex({0});
  ASSERT_NE(index, nullptr);
  // Inner of an apply: seek t by k = s.fk.
  PhysicalOpPtr seek = MakeIndexSeek(
      t_, index, {CRef(3, DataType::kInt64)}, {0, 1}, {11, 12}, nullptr);
  PhysicalOpPtr plan = MakeNLJoinOp(PhysJoinKind::kInner, ScanS(),
                                    std::move(seek), TrueLiteral(), true);
  // fk=1 (x2), fk=2: 3 matches; fk=9 misses.
  EXPECT_EQ(Drain(plan.get()).size(), 3u);
}

TEST_F(ExecTest, HashAggregateVector) {
  PhysicalOpPtr plan = MakeHashAggregateOp(
      ScanS(), {3},
      {AggItem{AggFunc::kSum, CRef(4, DataType::kInt64), 5, false},
       AggItem{AggFunc::kCountStar, nullptr, 6, false}},
      false);
  std::vector<Row> rows = Drain(plan.get());
  ASSERT_EQ(rows.size(), 3u);  // fk groups 1, 2, 9
  for (const Row& row : rows) {
    if (row[0].int64_value() == 1) {
      EXPECT_EQ(row[1].int64_value(), 300);
      EXPECT_EQ(row[2].int64_value(), 2);
    }
  }
}

TEST_F(ExecTest, ScalarAggregateOnEmptyInput) {
  PhysicalOpPtr empty = MakeFilterOp(ScanT(), LitBool(false));
  PhysicalOpPtr plan = MakeHashAggregateOp(
      std::move(empty), {},
      {AggItem{AggFunc::kCountStar, nullptr, 5, false},
       AggItem{AggFunc::kSum, CRef(2, DataType::kInt64), 6, false},
       AggItem{AggFunc::kMin, CRef(2, DataType::kInt64), 7, false}},
      true);
  std::vector<Row> rows = Drain(plan.get());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].int64_value(), 0);  // count(*) = 0
  EXPECT_TRUE(rows[0][1].is_null());       // sum = NULL
  EXPECT_TRUE(rows[0][2].is_null());       // min = NULL
}

TEST_F(ExecTest, AggregatesIgnoreNulls) {
  PhysicalOpPtr plan = MakeHashAggregateOp(
      ScanT(), {},
      {AggItem{AggFunc::kCount, CRef(2, DataType::kInt64), 5, false},
       AggItem{AggFunc::kCountStar, nullptr, 6, false},
       AggItem{AggFunc::kMin, CRef(2, DataType::kInt64), 7, false},
       AggItem{AggFunc::kMax, CRef(2, DataType::kInt64), 8, false}},
      true);
  std::vector<Row> rows = Drain(plan.get());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].int64_value(), 4);   // count(v): NULL skipped
  EXPECT_EQ(rows[0][1].int64_value(), 5);   // count(*)
  EXPECT_EQ(rows[0][2].int64_value(), 10);  // min
  EXPECT_EQ(rows[0][3].int64_value(), 50);  // max
}

TEST_F(ExecTest, DistinctAggregate) {
  PhysicalOpPtr plan = MakeHashAggregateOp(
      ScanS(), {},
      {AggItem{AggFunc::kCount, CRef(3, DataType::kInt64), 5, true},
       AggItem{AggFunc::kSum, CRef(3, DataType::kInt64), 6, true}},
      true);
  std::vector<Row> rows = Drain(plan.get());
  EXPECT_EQ(rows[0][0].int64_value(), 3);   // distinct fk: 1, 2, 9
  EXPECT_EQ(rows[0][1].int64_value(), 12);  // 1 + 2 + 9
}

TEST_F(ExecTest, Max1RowAggregateErrorsOnSecondRow) {
  PhysicalOpPtr plan = MakeHashAggregateOp(
      ScanS(), {},
      {AggItem{AggFunc::kMax1Row, CRef(4, DataType::kInt64), 5, false}},
      true);
  ExecContext ctx;
  Result<std::vector<Row>> rows = ExecuteToVector(plan.get(), &ctx);
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kCardinalityViolation);
}

TEST_F(ExecTest, Max1rowOperatorPassesSingleRow) {
  PhysicalOpPtr one = MakeFilterOp(
      ScanT(), Eq(CRef(1, DataType::kInt64), LitInt(2)));
  PhysicalOpPtr plan = MakeMax1rowOp(std::move(one));
  EXPECT_EQ(Drain(plan.get()).size(), 1u);
}

TEST_F(ExecTest, Max1rowOperatorErrorsOnTwoRows) {
  PhysicalOpPtr plan = MakeMax1rowOp(ScanT());
  ExecContext ctx;
  Result<std::vector<Row>> rows = ExecuteToVector(plan.get(), &ctx);
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kCardinalityViolation);
}

TEST_F(ExecTest, SortAscendingNullsFirstAndLimit) {
  PhysicalOpPtr plan = MakeSortOp(
      ScanT(), {SortKey{CRef(2, DataType::kInt64), true}}, 3);
  std::vector<Row> rows = Drain(plan.get());
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_TRUE(rows[0][1].is_null());  // NULL sorts first
  EXPECT_EQ(rows[1][1].int64_value(), 10);
}

TEST_F(ExecTest, SortDescending) {
  PhysicalOpPtr plan = MakeSortOp(
      ScanT(), {SortKey{CRef(2, DataType::kInt64), false}}, -1);
  std::vector<Row> rows = Drain(plan.get());
  EXPECT_EQ(rows[0][1].int64_value(), 50);
  EXPECT_TRUE(rows.back()[1].is_null());
}

TEST_F(ExecTest, UnionAllConcatenates) {
  std::vector<PhysicalOpPtr> children;
  children.push_back(ScanT());
  children.push_back(ScanT());
  PhysicalOpPtr plan = MakeUnionAllOp(std::move(children), {1, 2});
  EXPECT_EQ(Drain(plan.get()).size(), 10u);
}

TEST_F(ExecTest, ExceptAllCancelsMultiplicities) {
  // (t UNION ALL t) EXCEPT ALL t = t (bag semantics).
  std::vector<PhysicalOpPtr> children;
  children.push_back(ScanT());
  children.push_back(ScanT());
  PhysicalOpPtr doubled = MakeUnionAllOp(std::move(children), {1, 2});
  PhysicalOpPtr plan =
      MakeExceptAllOp(std::move(doubled), ScanT(), {1, 2});
  EXPECT_EQ(Drain(plan.get()).size(), 5u);
}

TEST_F(ExecTest, SegmentApplyPartitionsAndRuns) {
  // Segment s by fk; inner counts the segment rows.
  PhysicalOpPtr seg_scan = MakeSegmentScanOp({13, 14});
  PhysicalOpPtr inner = MakeHashAggregateOp(
      std::move(seg_scan), {},
      {AggItem{AggFunc::kCountStar, nullptr, 15, false}}, true);
  PhysicalOpPtr plan = MakeSegmentApplyOp(ScanS(), std::move(inner), {0},
                                          {3, 15});
  std::vector<Row> rows = Drain(plan.get());
  ASSERT_EQ(rows.size(), 3u);  // one row per segment (scalar agg inner)
  for (const Row& row : rows) {
    if (row[0].int64_value() == 1) EXPECT_EQ(row[1].int64_value(), 2);
    if (row[0].int64_value() == 2) EXPECT_EQ(row[1].int64_value(), 1);
  }
}

TEST_F(ExecTest, SingleRowEmitsExactlyOnce) {
  PhysicalOpPtr plan = MakeSingleRowOp();
  EXPECT_EQ(Drain(plan.get()).size(), 1u);
}

TEST_F(ExecTest, RowsProducedCountsWork) {
  PhysicalOpPtr plan = MakeFilterOp(ScanT(), TrueLiteral());
  ExecContext ctx;
  ASSERT_TRUE(ExecuteToVector(plan.get(), &ctx).ok());
  // 5 scan rows + 5 filter rows.
  EXPECT_EQ(ctx.rows_produced, 10);
}

}  // namespace
}  // namespace orq
