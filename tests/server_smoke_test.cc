// End-to-end server tests: K concurrent TCP sessions running the difftest
// generator's correlated-subquery mix must return byte-identical rows to a
// serial in-process Execute; deadlines surface as clean DeadlineExceeded
// errors over the wire; admission control sheds load as Unavailable; the
// \metrics admin command reports server counters. Also unit-tests the
// AdmissionController without sockets.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "difftest/dataset.h"
#include "difftest/oracle.h"
#include "difftest/qgen.h"
#include "engine/engine.h"
#include "obs/json.h"
#include "server/admission.h"
#include "server/client.h"
#include "server/net.h"
#include "server/server.h"

namespace orq {
namespace {

constexpr uint64_t kSeed = 20260808;

// ~2x10^9 join rows, and the cross-table expression keeps the
// local-aggregate rewrite from collapsing the cross join into per-table
// counts — minutes of work unless a deadline or Stop interrupts it.
const char kHugeCrossJoin[] =
    "SELECT MAX(l1.l_quantity + l2.l_quantity + l3.l_quantity + "
    "l4.l_quantity + l5.l_quantity) FROM lineitem l1, lineitem l2, "
    "lineitem l3, lineitem l4, lineitem l5";

std::shared_ptr<Catalog> SharedCatalog() {
  static std::shared_ptr<Catalog>* catalog = [] {
    auto c = std::make_shared<Catalog>();
    Status s = BuildDifftestCatalog(c.get(), kSeed);
    if (!s.ok()) ADD_FAILURE() << s.ToString();
    return new std::shared_ptr<Catalog>(std::move(c));
  }();
  return *catalog;
}

/// Rows of a serial Execute in the wire's canonical text form, in result
/// order — the reference the server replies are byte-compared against.
struct SerialRun {
  Status status = Status::OK();
  std::vector<std::string> rows;
};

SerialRun RunSerial(QueryEngine* engine, const std::string& sql) {
  SerialRun run;
  Result<QueryResult> result = engine->Execute(sql);
  if (!result.ok()) {
    run.status = result.status();
    return run;
  }
  run.rows.reserve(result->rows.size());
  for (const Row& row : result->rows) run.rows.push_back(CanonicalRow(row));
  return run;
}

TEST(ServerSmokeTest, ConcurrentSessionsMatchSerialByteForByte) {
  constexpr int kSessions = 8;
  constexpr int kQueriesPerSession = 12;

  ServerOptions options;
  options.worker_threads = 4;
  options.admission.max_concurrent = 4;
  QueryServer server(SharedCatalog(), options);
  ASSERT_TRUE(server.Start().ok());

  // Per-session deterministic query streams (same derivation orq_loadgen
  // uses), plus the serial reference for every query, computed up front.
  std::vector<std::vector<std::string>> streams(kSessions);
  std::vector<std::vector<SerialRun>> expected(kSessions);
  QueryEngine serial(SharedCatalog().get());
  for (int s = 0; s < kSessions; ++s) {
    QueryGenerator generator(kSeed + 7919u * static_cast<uint64_t>(s));
    for (int q = 0; q < kQueriesPerSession; ++q) {
      std::string sql = RenderSql(generator.Generate());
      expected[static_cast<size_t>(s)].push_back(RunSerial(&serial, sql));
      streams[static_cast<size_t>(s)].push_back(std::move(sql));
    }
  }

  std::atomic<int> divergences{0};
  std::vector<std::thread> threads;
  threads.reserve(kSessions);
  for (int s = 0; s < kSessions; ++s) {
    threads.emplace_back([&, s] {
      Result<Client> connected = Client::Connect("127.0.0.1", server.port());
      if (!connected.ok()) {
        ADD_FAILURE() << "connect: " << connected.status().ToString();
        divergences.fetch_add(1000);
        return;
      }
      Client client = std::move(connected.value());
      for (int q = 0; q < kQueriesPerSession; ++q) {
        const std::string& sql = streams[static_cast<size_t>(s)][q];
        const SerialRun& want = expected[static_cast<size_t>(s)][q];
        Result<WireResult> got = client.Query(sql);
        if (want.status.ok() != got.ok()) {
          ADD_FAILURE() << "session " << s << " query " << q
                        << ": status mismatch (serial "
                        << want.status.ToString() << " vs server "
                        << (got.ok() ? "OK" : got.status().ToString())
                        << ")  sql: " << sql;
          divergences.fetch_add(1);
          continue;
        }
        if (!got.ok()) {
          // Both errored: engines agree (same engine, same catalog, so the
          // messages match too).
          if (got.status().message() != want.status.message()) {
            ADD_FAILURE() << "session " << s << " query " << q
                          << ": error text mismatch";
            divergences.fetch_add(1);
          }
          continue;
        }
        if (got->rows != want.rows) {
          ADD_FAILURE() << "session " << s << " query " << q
                        << ": rows differ (serial " << want.rows.size()
                        << " vs server " << got->rows.size()
                        << ")  sql: " << sql;
          divergences.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(divergences.load(), 0);
  server.Stop();
}

TEST(ServerSmokeTest, DeadlineSurfacesAsCleanTimeoutOverTheWire) {
  ServerOptions options;
  options.worker_threads = 2;
  QueryServer server(SharedCatalog(), options);
  ASSERT_TRUE(server.Start().ok());

  Result<Client> connected = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  Client client = std::move(connected.value());

  ASSERT_TRUE(client.Set("timeout_ms", "50").ok());
  Result<WireResult> result = client.Query(kHugeCrossJoin);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);

  // The session survives the timeout and runs the next query normally.
  ASSERT_TRUE(client.Set("timeout_ms", "0").ok());
  Result<WireResult> ok = client.Query("SELECT COUNT(*) FROM nation");
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  ASSERT_EQ(ok->rows.size(), 1u);
  server.Stop();
}

TEST(ServerSmokeTest, SetChangesTakeEffectAndValidate) {
  QueryServer server(SharedCatalog(), ServerOptions());
  ASSERT_TRUE(server.Start().ok());
  Result<Client> connected = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(connected.ok());
  Client client = std::move(connected.value());

  EXPECT_TRUE(client.Set("threads", "2").ok());
  EXPECT_TRUE(client.Set("batch", "off").ok());
  EXPECT_TRUE(client.Set("batch_size", "64").ok());
  Result<WireResult> result =
      client.Query("SELECT COUNT(*) FROM customer");
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  Status bad = client.Set("threads", "-3");
  EXPECT_EQ(bad.code(), StatusCode::kInvalidArgument);
  bad = client.Set("no_such_option", "1");
  EXPECT_EQ(bad.code(), StatusCode::kInvalidArgument);
  server.Stop();
}

TEST(ServerSmokeTest, ColumnarThreadsConflictAndEncodingKnobOverTheWire) {
  QueryServer server(SharedCatalog(), ServerOptions());
  ASSERT_TRUE(server.Start().ok());
  Result<Client> connected = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(connected.ok());
  Client client = std::move(connected.value());

  // exec columnar is single-threaded; combining it with threads must fail
  // loudly in either SET order — never silently fall back.
  ASSERT_TRUE(client.Set("threads", "2").ok());
  Status conflict = client.Set("exec", "columnar");
  ASSERT_EQ(conflict.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(conflict.ToString().find("single-threaded"), std::string::npos);
  ASSERT_TRUE(client.Set("threads", "0").ok());
  ASSERT_TRUE(client.Set("exec", "columnar").ok());
  conflict = client.Set("threads", "2");
  ASSERT_EQ(conflict.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(conflict.ToString().find("single-threaded"), std::string::npos);

  // The rejected SET left the session columnar and single-threaded, so
  // queries still run — now over encoded storage once the knob is set.
  // Forced dict (not auto) because the difftest tables are small enough
  // that the auto heuristic keeps them plain.
  ASSERT_TRUE(client.Set("table_encoding", "dict").ok());
  Result<WireResult> result =
      client.Query("SELECT COUNT(*), MIN(n_name) FROM nation");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_NE(result->rows[0].find("6"), std::string::npos)
      << result->rows[0];

  Status bad = client.Set("table_encoding", "zip");
  ASSERT_EQ(bad.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(bad.ToString().find("plain|dict|rle|auto"), std::string::npos);
  // Encoding counters reach the metrics surface once an encoded scan ran.
  Result<std::string> metrics = client.Admin("metrics");
  ASSERT_TRUE(metrics.ok());
  EXPECT_NE(metrics->find("encoding.chunks"), std::string::npos);
  server.Stop();
}

TEST(ServerSmokeTest, MetricsAdminReportsServerCounters) {
  QueryServer server(SharedCatalog(), ServerOptions());
  ASSERT_TRUE(server.Start().ok());
  Result<Client> connected = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(connected.ok());
  Client client = std::move(connected.value());

  ASSERT_TRUE(client.Ping().ok());
  ASSERT_TRUE(client.Query("SELECT COUNT(*) FROM nation").ok());
  Result<std::string> metrics = client.Admin("metrics");
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_NE(metrics->find("server.sessions_opened"), std::string::npos);
  EXPECT_NE(metrics->find("server.queries_ok"), std::string::npos);
  EXPECT_NE(metrics->find("server.queue_depth"), std::string::npos);

  Result<std::string> unknown = client.Admin("no_such_admin");
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kInvalidArgument);
  server.Stop();
}

TEST(ServerSmokeTest, PreparedStatementsRoundTripOverTheWire) {
  QueryServer server(SharedCatalog(), ServerOptions());
  ASSERT_TRUE(server.Start().ok());
  Result<Client> connected = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(connected.ok());
  Client client = std::move(connected.value());

  ASSERT_TRUE(client.Set("plan_cache", "on").ok());
  Result<WirePrepared> prepared = client.Prepare(
      "by_key",
      "SELECT c_name FROM customer WHERE c_custkey = ? ORDER BY c_name");
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  ASSERT_EQ(prepared->param_types.size(), 1u);
  EXPECT_EQ(prepared->param_types[0], DataType::kInt64);
  EXPECT_EQ(prepared->columns, std::vector<std::string>{"c_name"});

  // Two executions with different parameter values, each byte-compared
  // against the literal spelling of the same query.
  for (int64_t key : {3, 7}) {
    Result<WireResult> via_execute =
        client.ExecutePrepared("by_key", {Value::Int64(key)});
    ASSERT_TRUE(via_execute.ok()) << via_execute.status().ToString();
    Result<WireResult> via_literal = client.Query(
        "SELECT c_name FROM customer WHERE c_custkey = " +
        std::to_string(key) + " ORDER BY c_name");
    ASSERT_TRUE(via_literal.ok());
    EXPECT_EQ(via_execute->columns, via_literal->columns);
    EXPECT_EQ(via_execute->rows, via_literal->rows);
  }

  // PREPARE warmed the plan cache, so the EXECUTE lane hit it; the server
  // aggregates the engine's cache counters into the admin metrics.
  Result<std::string> metrics = client.Admin("metrics");
  ASSERT_TRUE(metrics.ok());
  EXPECT_NE(metrics->find("plan_cache.hits"), std::string::npos);

  // Error paths: unknown name, wrong arity, double deallocate.
  Result<WireResult> unknown =
      client.ExecutePrepared("no_such_stmt", {Value::Int64(1)});
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kNotFound);
  Result<WireResult> wrong_arity = client.ExecutePrepared("by_key", {});
  ASSERT_FALSE(wrong_arity.ok());
  EXPECT_EQ(wrong_arity.status().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(client.Deallocate("by_key").ok());
  Result<WireResult> gone =
      client.ExecutePrepared("by_key", {Value::Int64(3)});
  ASSERT_FALSE(gone.ok());
  EXPECT_EQ(gone.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(client.Deallocate("by_key").code(), StatusCode::kNotFound);
  server.Stop();
}

TEST(ServerSmokeTest, ReplaceCatalogBumpsVersionAndEvictsCachedPlans) {
  QueryServer server(SharedCatalog(), ServerOptions());
  ASSERT_TRUE(server.Start().ok());
  Result<Client> connected = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(connected.ok());
  Client client = std::move(connected.value());
  ASSERT_TRUE(client.Set("plan_cache", "on").ok());
  ASSERT_TRUE(client.Query("SELECT COUNT(*) FROM nation").ok());

  // Re-installing a snapshot must bump its version, so plans cached
  // against the instance's previous contents can never be served again.
  auto snapshot = std::make_shared<Catalog>();
  ASSERT_TRUE(BuildDifftestCatalog(snapshot.get(), kSeed).ok());
  const int64_t before = snapshot->version();
  server.ReplaceCatalog(snapshot);
  EXPECT_GT(snapshot->version(), before);

  // The session's engine rebuilds against the new snapshot and queries
  // keep working (the first one recompiles; nothing stale survives).
  Result<WireResult> after = client.Query("SELECT COUNT(*) FROM nation");
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  server.Stop();
}

TEST(ServerSmokeTest, WaiterCancelledInQueueIsCounted) {
  // One run slot: a long query parks in it, a second session with a short
  // deadline queues behind it and times out while still queued. That
  // waiter must land in server.cancelled_total — previously it vanished
  // from the admission books entirely.
  ServerOptions options;
  options.worker_threads = 1;
  options.admission.max_concurrent = 1;
  options.admission.max_queued = 4;
  options.default_timeout_ms = 2000;
  QueryServer server(SharedCatalog(), options);
  ASSERT_TRUE(server.Start().ok());

  Result<Client> slow = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(slow.ok());
  Client slow_client = std::move(slow.value());
  std::thread slow_thread([&slow_client] {
    Result<WireResult> result = slow_client.Query(kHugeCrossJoin);
    EXPECT_FALSE(result.ok());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(200));

  Result<Client> queued = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(queued.ok());
  Client queued_client = std::move(queued.value());
  ASSERT_TRUE(queued_client.Set("timeout_ms", "100").ok());
  Result<WireResult> timed_out =
      queued_client.Query("SELECT COUNT(*) FROM nation");
  ASSERT_FALSE(timed_out.ok());
  EXPECT_EQ(timed_out.status().code(), StatusCode::kDeadlineExceeded);

  Result<std::string> metrics = queued_client.Admin("metrics");
  ASSERT_TRUE(metrics.ok());
  EXPECT_NE(metrics->find("server.cancelled_total 1"), std::string::npos)
      << *metrics;

  slow_thread.join();
  server.Stop();
}

TEST(ServerSmokeTest, StopCancelsInFlightQueries) {
  ServerOptions options;
  options.worker_threads = 2;
  auto server = std::make_unique<QueryServer>(SharedCatalog(), options);
  ASSERT_TRUE(server->Start().ok());
  Result<Client> connected = Client::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(connected.ok());
  Client client = std::move(connected.value());

  std::thread stopper([&server] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    server->Stop();
  });
  // Minutes of work if not cancelled; Stop must unwind it promptly (the
  // reply may be a Cancelled error frame or a dropped connection,
  // depending on shutdown interleaving — both are clean outcomes).
  Result<WireResult> result = client.Query(kHugeCrossJoin);
  EXPECT_FALSE(result.ok());
  stopper.join();
}

TEST(ServerSmokeTest, QueryIdsAreStampedOnResultsAndErrors) {
  QueryServer server(SharedCatalog(), ServerOptions());
  ASSERT_TRUE(server.Start().ok());
  Result<Client> connected = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(connected.ok());
  Client client = std::move(connected.value());

  Result<WireResult> ok = client.Query("SELECT COUNT(*) FROM nation");
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok->query_id, "s1q1");
  EXPECT_EQ(client.last_query_id(), "s1q1");

  Result<WireResult> bad = client.Query("SELECT FROM nowhere at all");
  ASSERT_FALSE(bad.ok());
  // The id rides its own wire field; the error text stays engine-pure.
  EXPECT_EQ(client.last_query_id(), "s1q2");
  EXPECT_EQ(bad.status().message().find("s1q2"), std::string::npos)
      << bad.status().message();

  // Non-query frames (SET, admin) do not consume query ids.
  ASSERT_TRUE(client.Set("threads", "0").ok());
  Result<WireResult> third = client.Query("SELECT COUNT(*) FROM part");
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(third->query_id, "s1q3");
  server.Stop();
}

TEST(ServerSmokeTest, LiveQueriesShowProgressAndCancelByIdIsWireVisible) {
  ServerOptions options;
  options.worker_threads = 2;
  QueryServer server(SharedCatalog(), options);
  ASSERT_TRUE(server.Start().ok());
  Result<Client> runner = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(runner.ok());
  Client runner_client = std::move(runner.value());
  Result<Client> admin = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(admin.ok());
  Client admin_client = std::move(admin.value());

  // A completed query first, so \history later holds both outcomes.
  ASSERT_TRUE(runner_client.Query("SELECT COUNT(*) FROM nation").ok());
  const std::string ok_id = runner_client.last_query_id();
  ASSERT_FALSE(ok_id.empty());

  Status cancelled_status = Status::OK();
  std::thread runner_thread([&runner_client, &cancelled_status] {
    Result<WireResult> result = runner_client.Query(kHugeCrossJoin);
    cancelled_status =
        result.ok() ? Status::Internal("query unexpectedly succeeded")
                    : result.status();
  });

  // Poll \queries until the cross join shows up mid-execution with
  // nonzero row progress, then cancel it by id.
  std::string live_id;
  for (int spin = 0; spin < 500 && live_id.empty(); ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    Result<std::string> queries = admin_client.Admin("queries");
    ASSERT_TRUE(queries.ok()) << queries.status().ToString();
    JsonValue doc;
    std::string error;
    ASSERT_TRUE(ParseJson(*queries, &doc, &error)) << error << *queries;
    const JsonValue* list = doc.Find("queries");
    ASSERT_NE(list, nullptr);
    for (const JsonValue& entry : list->array) {
      if (entry.StringOr("sql", "").find("l5") == std::string::npos) {
        continue;
      }
      if (entry.StringOr("phase", "") == "execute" &&
          entry.NumberOr("rows", 0) > 0) {
        live_id = entry.StringOr("query_id", "");
        EXPECT_GE(entry.NumberOr("elapsed_ms", -1), 0) << *queries;
      }
    }
  }
  ASSERT_FALSE(live_id.empty()) << "cross join never showed progress";

  Result<std::string> cancel = admin_client.Admin("cancel " + live_id);
  ASSERT_TRUE(cancel.ok()) << cancel.status().ToString();
  EXPECT_NE(cancel->find(live_id), std::string::npos);
  runner_thread.join();
  EXPECT_EQ(cancelled_status.code(), StatusCode::kCancelled)
      << cancelled_status.ToString();
  EXPECT_EQ(runner_client.last_query_id(), live_id);

  // Cancelling a finished query is NotFound, not a crash.
  Result<std::string> again = admin_client.Admin("cancel " + live_id);
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.status().code(), StatusCode::kNotFound);

  // \history holds both records: the completed one with per-operator
  // est-vs-actual rows and phase timings, the cancelled one with its
  // outcome and the rows it produced before unwinding.
  Result<std::string> history = admin_client.Admin("history 10");
  ASSERT_TRUE(history.ok());
  std::string error;
  EXPECT_TRUE(ValidateJson(*history, &error)) << error;
  JsonValue doc;
  ASSERT_TRUE(ParseJson(*history, &doc, &error)) << error;
  const JsonValue* queries = doc.Find("queries");
  ASSERT_NE(queries, nullptr);
  bool saw_ok = false, saw_cancelled = false;
  for (const JsonValue& entry : queries->array) {
    if (entry.StringOr("query_id", "") == ok_id) {
      saw_ok = true;
      EXPECT_EQ(entry.StringOr("outcome", ""), "ok");
      const JsonValue* plan = entry.Find("plan");
      ASSERT_NE(plan, nullptr);
      EXPECT_NE(plan->Find("est_rows"), nullptr);
      EXPECT_NE(plan->Find("actual_rows"), nullptr);
      const JsonValue* profile = entry.Find("profile");
      ASSERT_NE(profile, nullptr);
      EXPECT_GT(profile->NumberOr("total_nanos", 0), 0);
    }
    if (entry.StringOr("query_id", "") == live_id) {
      saw_cancelled = true;
      EXPECT_EQ(entry.StringOr("outcome", ""), "cancelled");
      EXPECT_GT(entry.NumberOr("rows_produced", 0), 0);
      EXPECT_NE(entry.Find("profile"), nullptr);
    }
  }
  EXPECT_TRUE(saw_ok) << *history;
  EXPECT_TRUE(saw_cancelled) << *history;
  server.Stop();
}

TEST(ServerSmokeTest, MetricsJsonAndPromAdminFrames) {
  QueryServer server(SharedCatalog(), ServerOptions());
  ASSERT_TRUE(server.Start().ok());
  Result<Client> connected = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(connected.ok());
  Client client = std::move(connected.value());
  ASSERT_TRUE(client.Query("SELECT COUNT(*) FROM nation").ok());
  ASSERT_TRUE(client.Query("SELECT COUNT(*) FROM part").ok());

  Result<std::string> json = client.Admin("metrics json");
  ASSERT_TRUE(json.ok()) << json.status().ToString();
  std::string error;
  EXPECT_TRUE(ValidateJson(*json, &error)) << error << "\n" << *json;
  JsonValue doc;
  ASSERT_TRUE(ParseJson(*json, &doc, &error)) << error;
  ASSERT_NE(doc.Find("engine"), nullptr);
  const JsonValue* server_gauges = doc.Find("server");
  ASSERT_NE(server_gauges, nullptr);
  EXPECT_EQ(server_gauges->NumberOr("server.sessions_active", -1), 1);
  EXPECT_EQ(server_gauges->NumberOr("server.query_store_recorded", -1), 2);

  Result<std::string> prom = client.Admin("metrics prom");
  ASSERT_TRUE(prom.ok()) << prom.status().ToString();
  EXPECT_NE(prom->find("# TYPE orq_server_queries_ok_total counter\n"
                       "orq_server_queries_ok_total 2\n"),
            std::string::npos)
      << *prom;
  EXPECT_NE(prom->find("# TYPE orq_server_query_latency_micros histogram"),
            std::string::npos);
  EXPECT_NE(prom->find("orq_server_query_latency_micros_bucket{le=\"+Inf\"}"
                       " 2\n"),
            std::string::npos)
      << *prom;
  EXPECT_NE(prom->find("# TYPE orq_server_sessions_active gauge"),
            std::string::npos);
  server.Stop();
}

TEST(ServerSmokeTest, HttpMetricsEndpointServesPrometheusText) {
  ServerOptions options;
  options.metrics_port = 0;  // ephemeral
  QueryServer server(SharedCatalog(), options);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.metrics_port(), 0);
  Result<Client> connected = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(connected.ok());
  Client client = std::move(connected.value());
  ASSERT_TRUE(client.Query("SELECT COUNT(*) FROM nation").ok());

  Result<std::string> body =
      HttpGet("127.0.0.1", server.metrics_port(), "/metrics");
  ASSERT_TRUE(body.ok()) << body.status().ToString();
  EXPECT_NE(body->find("orq_server_queries_ok_total 1\n"),
            std::string::npos)
      << *body;
  EXPECT_NE(body->find("orq_server_sessions_active 1\n"),
            std::string::npos);

  // Anything but /metrics is a 404 the client surfaces as an error.
  Result<std::string> missing =
      HttpGet("127.0.0.1", server.metrics_port(), "/nope");
  ASSERT_FALSE(missing.ok());
  EXPECT_NE(missing.status().message().find("404"), std::string::npos)
      << missing.status().ToString();
  server.Stop();
}

TEST(ServerSmokeTest, SlowQueryThresholdCapturesExplainText) {
  ServerOptions options;
  options.worker_threads = 2;
  QueryServer server(SharedCatalog(), options);
  ASSERT_TRUE(server.Start().ok());
  Result<Client> connected = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(connected.ok());
  Client client = std::move(connected.value());

  // Deadline at ~150ms with a 50ms slow threshold: the timed-out cross
  // join is deterministically "slow" and must carry the captured
  // EXPLAIN ANALYZE text in its history record.
  ASSERT_TRUE(client.Set("timeout_ms", "150").ok());
  ASSERT_TRUE(client.Set("slow_query_ms", "50").ok());
  Result<WireResult> timed_out = client.Query(kHugeCrossJoin);
  ASSERT_FALSE(timed_out.ok());
  const std::string slow_id = client.last_query_id();
  ASSERT_FALSE(slow_id.empty());

  Result<std::string> history = client.Admin("history 5");
  ASSERT_TRUE(history.ok());
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(ParseJson(*history, &doc, &error)) << error;
  const JsonValue* queries = doc.Find("queries");
  ASSERT_NE(queries, nullptr);
  bool found = false;
  for (const JsonValue& entry : queries->array) {
    if (entry.StringOr("query_id", "") != slow_id) continue;
    found = true;
    EXPECT_EQ(entry.StringOr("outcome", ""), "deadline");
    const std::string slow_explain = entry.StringOr("slow_explain", "");
    EXPECT_NE(slow_explain.find("== Query " + slow_id + " =="),
              std::string::npos)
        << slow_explain;
  }
  EXPECT_TRUE(found) << *history;
  server.Stop();
}

TEST(AdmissionControllerTest, GrantsUpToLimitThenQueues) {
  AdmissionOptions options;
  options.max_concurrent = 2;
  options.max_queued = 4;
  AdmissionController admission(options);
  ASSERT_TRUE(admission.Admit(nullptr).ok());
  ASSERT_TRUE(admission.Admit(nullptr).ok());
  EXPECT_EQ(admission.running(), 2);

  // Third caller queues until a slot frees.
  std::atomic<bool> third_admitted{false};
  std::thread waiter([&] {
    Status admitted = admission.Admit(nullptr);
    EXPECT_TRUE(admitted.ok());
    third_admitted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(third_admitted.load());
  EXPECT_EQ(admission.queued(), 1);
  admission.Release();
  waiter.join();
  EXPECT_TRUE(third_admitted.load());
  EXPECT_EQ(admission.running(), 2);
  admission.Release();
  admission.Release();
  EXPECT_EQ(admission.running(), 0);
  EXPECT_GE(admission.peak_queued(), 1);
}

TEST(AdmissionControllerTest, RejectsWhenQueueIsFull) {
  AdmissionOptions options;
  options.max_concurrent = 1;
  options.max_queued = 0;
  AdmissionController admission(options);
  ASSERT_TRUE(admission.Admit(nullptr).ok());
  Status rejected = admission.Admit(nullptr);
  EXPECT_EQ(rejected.code(), StatusCode::kUnavailable);
  EXPECT_EQ(admission.rejected(), 1);
  admission.Release();
}

TEST(AdmissionControllerTest, QueuedWaiterHonorsCancelToken) {
  AdmissionOptions options;
  options.max_concurrent = 1;
  options.max_queued = 4;
  AdmissionController admission(options);
  ASSERT_TRUE(admission.Admit(nullptr).ok());
  CancelToken token;
  token.SetTimeoutMs(30);
  const Status waited = admission.Admit(&token);
  EXPECT_EQ(waited.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(admission.queued(), 0);  // the waiter removed itself
  admission.Release();
}

TEST(AdmissionControllerTest, ShutdownWakesWaitersWithUnavailable) {
  AdmissionOptions options;
  options.max_concurrent = 1;
  options.max_queued = 4;
  AdmissionController admission(options);
  ASSERT_TRUE(admission.Admit(nullptr).ok());
  std::thread waiter([&] {
    Status waited = admission.Admit(nullptr);
    EXPECT_EQ(waited.code(), StatusCode::kUnavailable);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  admission.Shutdown();
  waiter.join();
  EXPECT_EQ(admission.Admit(nullptr).code(), StatusCode::kUnavailable);
}

TEST(ServerSmokeTest, OverloadedServerRejectsAtTheDoor) {
  // One slot, zero queue: with several slow queries in flight at once, at
  // least one arrival must be shed as Unavailable (kept deterministic by
  // parking one long query in the single slot first).
  ServerOptions options;
  options.worker_threads = 1;
  options.admission.max_concurrent = 1;
  options.admission.max_queued = 0;
  options.default_timeout_ms = 2000;  // the parked query self-cancels
  QueryServer server(SharedCatalog(), options);
  ASSERT_TRUE(server.Start().ok());

  Result<Client> slow = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(slow.ok());
  Client slow_client = std::move(slow.value());
  std::thread slow_thread([&slow_client] {
    // Holds the only run slot until its 2s deadline fires.
    Result<WireResult> result = slow_client.Query(kHugeCrossJoin);
    EXPECT_FALSE(result.ok());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(200));

  Result<Client> fast = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(fast.ok());
  Client fast_client = std::move(fast.value());
  Result<WireResult> rejected =
      fast_client.Query("SELECT COUNT(*) FROM nation");
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kUnavailable);

  slow_thread.join();
  // Slot free again: the same session's next query is admitted.
  Result<WireResult> ok = fast_client.Query("SELECT COUNT(*) FROM nation");
  EXPECT_TRUE(ok.ok()) << ok.status().ToString();
  server.Stop();
}

}  // namespace
}  // namespace orq
