// Engine re-entrancy tests: one QueryEngine shared by many threads must
// produce exactly the serial results, with and without a concurrent
// set_options churn thread. This file is part of the TSan suite (see
// scripts/ci.sh) — the interesting assertions are the ones the sanitizer
// makes about the engine's options/pool/catalog-stats synchronization.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "difftest/dataset.h"
#include "difftest/oracle.h"
#include "engine/engine.h"

namespace orq {
namespace {

Catalog* SharedCatalog() {
  static Catalog* catalog = [] {
    auto* c = new Catalog();
    Status s = BuildDifftestCatalog(c, 20260807);
    if (!s.ok()) ADD_FAILURE() << s.ToString();
    return c;
  }();
  return catalog;
}

// A small mix touching the subsystems with shared state: correlated
// subqueries (Apply), hash join + aggregation, sort, EXISTS, and lazily
// computed catalog statistics.
const char* kQueryMix[] = {
    "SELECT c_custkey, (SELECT COUNT(*) FROM orders o "
    "WHERE o.o_custkey = c.c_custkey) FROM customer c",
    "SELECT n_name, COUNT(*) FROM nation, customer "
    "WHERE c_nationkey = n_nationkey GROUP BY n_name ORDER BY n_name",
    "SELECT o_orderkey FROM orders o WHERE EXISTS "
    "(SELECT 1 FROM lineitem l WHERE l.l_orderkey = o.o_orderkey "
    " AND l.l_quantity > 10)",
    "SELECT COUNT(*) FROM lineitem WHERE l_extendedprice > "
    "(SELECT 0.5 * MAX(l2.l_extendedprice) FROM lineitem l2)",
    "SELECT p_brand, SUM(p_retailprice) FROM part GROUP BY p_brand",
};
constexpr int kNumQueries = 5;

std::vector<std::vector<std::string>> SerialBags() {
  QueryEngine engine(SharedCatalog());
  std::vector<std::vector<std::string>> bags;
  for (const char* sql : kQueryMix) {
    Result<QueryResult> result = engine.Execute(sql);
    EXPECT_TRUE(result.ok()) << sql << ": " << result.status().ToString();
    bags.push_back(result.ok() ? CanonicalBag(*result)
                               : std::vector<std::string>());
  }
  return bags;
}

TEST(EngineConcurrencyTest, ConcurrentExecuteMatchesSerial) {
  const std::vector<std::vector<std::string>> expected = SerialBags();
  QueryEngine engine(SharedCatalog());
  constexpr int kThreads = 8;
  constexpr int kRounds = 6;
  std::atomic<int> divergences{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        const int qi = (t + round) % kNumQueries;
        Result<QueryResult> result = engine.Execute(kQueryMix[qi]);
        if (!result.ok() || CanonicalBag(*result) != expected[qi]) {
          divergences.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(divergences.load(), 0);
}

TEST(EngineConcurrencyTest, ExecuteUnderOptionsChurnMatchesSerial) {
  // A churn thread flips execution mode and thread count while queries
  // run. Every configuration computes the same results, so any divergence
  // means a query observed a half-applied configuration (or the pool swap
  // raced) — precisely the bug snapshot-at-entry must prevent.
  const std::vector<std::vector<std::string>> expected = SerialBags();
  QueryEngine engine(SharedCatalog());
  std::atomic<bool> stop{false};
  std::thread churn([&engine, &stop] {
    int flip = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      EngineOptions options = EngineOptions::Full();
      options.exec.batched = (flip % 2 == 0);
      options.exec.num_threads = (flip % 3 == 0) ? 2 : 0;
      options.exec.morsel_rows = 8;
      engine.set_options(options);
      ++flip;
      std::this_thread::yield();
    }
  });
  constexpr int kThreads = 6;
  constexpr int kRounds = 8;
  std::atomic<int> divergences{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        const int qi = (t * kRounds + round) % kNumQueries;
        Result<QueryResult> result = engine.Execute(kQueryMix[qi]);
        if (!result.ok() || CanonicalBag(*result) != expected[qi]) {
          divergences.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  stop.store(true);
  churn.join();
  EXPECT_EQ(divergences.load(), 0);
}

TEST(EngineConcurrencyTest, ConcurrentParallelQueriesShareThePool) {
  // Several threads run morsel-parallel queries on one engine at once;
  // they share (and lazily build) the engine's TaskPool.
  const std::vector<std::vector<std::string>> expected = SerialBags();
  EngineOptions options = EngineOptions::Full();
  options.exec.num_threads = 2;
  options.exec.morsel_rows = 8;
  QueryEngine engine(SharedCatalog(), options);
  constexpr int kThreads = 4;
  std::atomic<int> divergences{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int qi = 0; qi < kNumQueries; ++qi) {
        Result<QueryResult> result = engine.Execute(kQueryMix[qi]);
        if (!result.ok() || CanonicalBag(*result) != expected[qi]) {
          divergences.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(divergences.load(), 0);
}

TEST(EngineConcurrencyTest, ConcurrentExplainAndExecute) {
  // Explain reads the catalog's lazily cached statistics while Execute
  // runs — the stats cache is the one shared mutable catalog structure.
  QueryEngine engine(SharedCatalog());
  std::atomic<int> failures{0};
  std::thread explainer([&] {
    for (int i = 0; i < 10; ++i) {
      Result<std::string> plan = engine.Explain(kQueryMix[i % kNumQueries]);
      if (!plan.ok()) failures.fetch_add(1, std::memory_order_relaxed);
    }
  });
  std::thread executor([&] {
    for (int i = 0; i < 10; ++i) {
      Result<QueryResult> result =
          engine.Execute(kQueryMix[(i + 2) % kNumQueries]);
      if (!result.ok()) failures.fetch_add(1, std::memory_order_relaxed);
    }
  });
  explainer.join();
  executor.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace orq
