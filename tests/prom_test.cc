// Prometheus text-exposition tests: metric-name sanitization, label-value
// escaping, counter-vs-gauge-vs-histogram TYPE lines, and — the part that
// is easy to get wrong — conversion of the registry's per-bucket
// power-of-two counts into the format's cumulative `le` buckets.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/prom.h"

namespace orq {
namespace {

TEST(PromTest, MetricNameGetsPrefixAndSanitization) {
  EXPECT_EQ(PromMetricName("hash_join.build_rows"),
            "orq_hash_join_build_rows");
  EXPECT_EQ(PromMetricName("server.queries_ok"), "orq_server_queries_ok");
  // Colons are legal in the exposition format and survive; everything
  // else outside [a-zA-Z0-9_:] flattens to '_'.
  EXPECT_EQ(PromMetricName("a:b-c d/e"), "orq_a:b_c_d_e");
}

TEST(PromTest, LabelValueEscaping) {
  EXPECT_EQ(PromEscapeLabelValue("plain"), "plain");
  EXPECT_EQ(PromEscapeLabelValue("a\\b"), "a\\\\b");
  EXPECT_EQ(PromEscapeLabelValue("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(PromEscapeLabelValue("line1\nline2"), "line1\\nline2");
}

TEST(PromTest, CountersRenderTypedWithTotalSuffixAndIncludeZeros) {
  MetricsRegistry metrics;
  metrics.Add(MetricCounter::kServerQueriesOk, 3);
  const std::string out = RenderPrometheus(metrics, {});
  EXPECT_NE(out.find("# TYPE orq_server_queries_ok_total counter\n"
                     "orq_server_queries_ok_total 3\n"),
            std::string::npos)
      << out;
  // Untouched counters still render (scrapers want a stable series set).
  EXPECT_NE(out.find("# TYPE orq_plan_cache_hits_total counter\n"
                     "orq_plan_cache_hits_total 0\n"),
            std::string::npos)
      << out;
}

TEST(PromTest, HistogramBucketsAreCumulative) {
  MetricsRegistry metrics;
  // Registry buckets are per-bucket counts: 1 -> bucket 0 (<=1),
  // 2 -> bucket 1 (<=2), 3 -> bucket 2 (<=4). The exposition must sum
  // them into cumulative counts.
  metrics.Observe(MetricHistogram::kQueryLatencyMicros, 1);
  metrics.Observe(MetricHistogram::kQueryLatencyMicros, 2);
  metrics.Observe(MetricHistogram::kQueryLatencyMicros, 3);
  // Far beyond the last finite bucket (2^14): lands only in +Inf.
  metrics.Observe(MetricHistogram::kQueryLatencyMicros, 1000000);
  const std::string out = RenderPrometheus(metrics, {});
  const std::string name = "orq_server_query_latency_micros";
  EXPECT_NE(out.find("# TYPE " + name + " histogram\n"), std::string::npos);
  EXPECT_NE(out.find(name + "_bucket{le=\"1\"} 1\n"), std::string::npos)
      << out;
  EXPECT_NE(out.find(name + "_bucket{le=\"2\"} 2\n"), std::string::npos)
      << out;
  EXPECT_NE(out.find(name + "_bucket{le=\"4\"} 3\n"), std::string::npos)
      << out;
  // Every finite bucket past the observations carries the running total,
  // and +Inf equals the observation count (cumulative invariant).
  EXPECT_NE(out.find(name + "_bucket{le=\"16384\"} 3\n"), std::string::npos)
      << out;
  EXPECT_NE(out.find(name + "_bucket{le=\"+Inf\"} 4\n"), std::string::npos)
      << out;
  EXPECT_NE(out.find(name + "_sum 1000006\n"), std::string::npos) << out;
  EXPECT_NE(out.find(name + "_count 4\n"), std::string::npos) << out;
}

TEST(PromTest, GaugesRenderTypedWithEscapedLabels) {
  PromGauge plain;
  plain.name = "server.sessions_active";
  plain.value = 7;
  PromGauge labeled;
  labeled.name = "server.build_info";
  labeled.value = 1;
  labeled.labels = {{"version", "v1 \"beta\"\n"}};
  const std::string out =
      RenderPrometheus(MetricsRegistry(), {plain, labeled});
  EXPECT_NE(out.find("# TYPE orq_server_sessions_active gauge\n"
                     "orq_server_sessions_active 7\n"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("orq_server_build_info{version=\"v1 \\\"beta\\\"\\n\"}"
                     " 1\n"),
            std::string::npos)
      << out;
  // A gauge is not double-typed as a counter or histogram.
  EXPECT_EQ(out.find("# TYPE orq_server_sessions_active counter"),
            std::string::npos);
}

}  // namespace
}  // namespace orq
