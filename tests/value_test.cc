// Unit tests for the Value scalar type: SQL vs total comparison semantics,
// hashing consistency, date handling, formatting.
#include <gtest/gtest.h>

#include <limits>
#include <optional>
#include <vector>

#include "common/value.h"

namespace orq {
namespace {

TEST(ValueTest, NullConstruction) {
  Value v = Value::Null(DataType::kDouble);
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), DataType::kDouble);
  EXPECT_EQ(v.ToString(), "NULL");
}

TEST(ValueTest, SqlCompareReturnsNulloptOnNull) {
  EXPECT_FALSE(Value::Null().SqlCompare(Value::Int64(1)).has_value());
  EXPECT_FALSE(Value::Int64(1).SqlCompare(Value::Null()).has_value());
  EXPECT_FALSE(Value::Null().SqlCompare(Value::Null()).has_value());
}

TEST(ValueTest, SqlCompareNumericPromotion) {
  EXPECT_EQ(*Value::Int64(3).SqlCompare(Value::Double(3.0)), 0);
  EXPECT_EQ(*Value::Int64(3).SqlCompare(Value::Double(3.5)), -1);
  EXPECT_EQ(*Value::Double(4.5).SqlCompare(Value::Int64(4)), 1);
}

TEST(ValueTest, SqlCompareStrings) {
  EXPECT_EQ(*Value::String("abc").SqlCompare(Value::String("abc")), 0);
  EXPECT_LT(*Value::String("abc").SqlCompare(Value::String("abd")), 0);
  EXPECT_GT(*Value::String("b").SqlCompare(Value::String("a")), 0);
}

TEST(ValueTest, SqlCompareMixedIncomparableTypesIsUnknown) {
  EXPECT_FALSE(Value::String("1").SqlCompare(Value::Int64(1)).has_value());
}

TEST(ValueTest, TotalCompareNullsFirstAndEqual) {
  EXPECT_EQ(Value::Null().TotalCompare(Value::Null()), 0);
  EXPECT_LT(Value::Null().TotalCompare(Value::Int64(-100)), 0);
  EXPECT_GT(Value::Int64(0).TotalCompare(Value::Null()), 0);
}

TEST(ValueTest, GroupEqualsTreatsNullsEqual) {
  EXPECT_TRUE(Value::Null().GroupEquals(Value::Null(DataType::kString)));
  EXPECT_FALSE(Value::Null().GroupEquals(Value::Int64(0)));
}

TEST(ValueTest, HashConsistentWithGroupEquals) {
  // Int64(3) and Double(3.0) group-equal, so they must hash alike.
  EXPECT_TRUE(Value::Int64(3).GroupEquals(Value::Double(3.0)));
  EXPECT_EQ(Value::Int64(3).Hash(), Value::Double(3.0).Hash());
  // All NULLs hash alike.
  EXPECT_EQ(Value::Null().Hash(), Value::Null(DataType::kString).Hash());
}

TEST(ValueTest, BoolValues) {
  EXPECT_TRUE(Value::Bool(true).bool_value());
  EXPECT_FALSE(Value::Bool(false).bool_value());
  EXPECT_EQ(Value::Bool(true).ToString(), "true");
}

TEST(DateTest, ParseAndFormatRoundTrip) {
  for (const char* text :
       {"1970-01-01", "1992-02-29", "1998-12-01", "1969-12-31",
        "2000-02-29", "1995-06-17"}) {
    std::optional<int32_t> days = ParseDate(text);
    ASSERT_TRUE(days.has_value()) << text;
    EXPECT_EQ(FormatDate(*days), text);
  }
}

TEST(DateTest, EpochIsZero) {
  EXPECT_EQ(*ParseDate("1970-01-01"), 0);
  EXPECT_EQ(*ParseDate("1970-01-02"), 1);
  EXPECT_EQ(*ParseDate("1971-01-01"), 365);
}

TEST(DateTest, RejectsMalformed) {
  EXPECT_FALSE(ParseDate("not-a-date").has_value());
  EXPECT_FALSE(ParseDate("1994-13-01").has_value());
  EXPECT_FALSE(ParseDate("1994-02-30").has_value());
  EXPECT_FALSE(ParseDate("1993-02-29").has_value());  // not a leap year
}

TEST(DateTest, ComparesChronologically) {
  Value a = Value::Date(*ParseDate("1994-01-01"));
  Value b = Value::Date(*ParseDate("1994-06-01"));
  EXPECT_LT(*a.SqlCompare(b), 0);
}

TEST(ValueTest, RowToStringFormatsAllValues) {
  Row row = {Value::Int64(1), Value::Null(), Value::String("x")};
  EXPECT_EQ(RowToString(row), "[1, NULL, x]");
}

TEST(RowHashTest, GroupSemantics) {
  RowHash hash;
  RowGroupEq eq;
  Row a = {Value::Int64(1), Value::Null()};
  Row b = {Value::Int64(1), Value::Null(DataType::kDouble)};
  Row c = {Value::Int64(2), Value::Null()};
  EXPECT_TRUE(eq(a, b));
  EXPECT_EQ(hash(a), hash(b));
  EXPECT_FALSE(eq(a, c));
}

// ---------------------------------------------------------------------------
// Property tests over an adversarial value pool: hash/equality consistency
// and strict-weak-ordering of TotalCompare. These pin down the cases that
// make hash joins and GroupBy silently wrong when they drift: -0.0 vs 0.0,
// NaN, int64/double values near 2^53 where double loses integer precision,
// and INT64_MAX where a naive double->int64 cast is undefined behaviour.
// ---------------------------------------------------------------------------

std::vector<Value> AdversarialPool() {
  std::vector<Value> pool = {
      Value::Null(DataType::kInt64),
      Value::Null(DataType::kDouble),
      Value::Null(DataType::kString),
      Value::Bool(false),
      Value::Bool(true),
      Value::Int64(0),
      Value::Int64(-1),
      Value::Int64(1),
      Value::Int64(42),
      Value::Int64((int64_t{1} << 53) - 1),
      Value::Int64(int64_t{1} << 53),
      Value::Int64((int64_t{1} << 53) + 1),
      Value::Int64(std::numeric_limits<int64_t>::max()),
      Value::Int64(std::numeric_limits<int64_t>::min()),
      Value::Double(0.0),
      Value::Double(-0.0),
      Value::Double(1.0),
      Value::Double(42.0),
      Value::Double(42.5),
      Value::Double(9007199254740992.0),  // 2^53
      Value::Double(9223372036854775808.0),  // 2^63, > INT64_MAX
      Value::Double(-9223372036854775808.0),  // == INT64_MIN exactly
      Value::Double(std::numeric_limits<double>::infinity()),
      Value::Double(-std::numeric_limits<double>::infinity()),
      Value::Double(std::numeric_limits<double>::quiet_NaN()),
      Value::String(""),
      Value::String("a"),
      Value::String("b"),
      Value::Date(0),
      Value::Date(9131),
  };
  return pool;
}

TEST(ValuePropertyTest, GroupEqualsImpliesEqualHash) {
  std::vector<Value> pool = AdversarialPool();
  for (const Value& a : pool) {
    for (const Value& b : pool) {
      if (a.GroupEquals(b)) {
        EXPECT_EQ(a.Hash(), b.Hash())
            << a.ToString() << " groups with " << b.ToString()
            << " but hashes differ";
      }
    }
  }
}

TEST(ValuePropertyTest, TotalCompareIsAStrictWeakOrder) {
  std::vector<Value> pool = AdversarialPool();
  for (const Value& a : pool) {
    // Irreflexivity of <, reflexivity of ==.
    EXPECT_EQ(a.TotalCompare(a), 0) << a.ToString();
    for (const Value& b : pool) {
      // Antisymmetry.
      EXPECT_EQ(a.TotalCompare(b), -b.TotalCompare(a))
          << a.ToString() << " vs " << b.ToString();
      for (const Value& c : pool) {
        // Transitivity of <=.
        if (a.TotalCompare(b) <= 0 && b.TotalCompare(c) <= 0) {
          EXPECT_LE(a.TotalCompare(c), 0)
              << a.ToString() << " <= " << b.ToString() << " <= "
              << c.ToString();
        }
      }
    }
  }
}

TEST(ValuePropertyTest, SqlCompareAgreesWithTotalCompareOnNonNulls) {
  // Wherever both are defined and neither operand is NULL or NaN, the SQL
  // order and the total order must agree — otherwise a sort-based and a
  // hash-based plan for the same query can return different rows.
  std::vector<Value> pool = AdversarialPool();
  for (const Value& a : pool) {
    for (const Value& b : pool) {
      std::optional<int> sql = a.SqlCompare(b);
      if (!sql.has_value()) continue;
      EXPECT_EQ(*sql < 0, a.TotalCompare(b) < 0)
          << a.ToString() << " vs " << b.ToString();
      EXPECT_EQ(*sql == 0, a.TotalCompare(b) == 0)
          << a.ToString() << " vs " << b.ToString();
    }
  }
}

TEST(ValuePropertyTest, CrossTypeNumericComparisonIsExact) {
  // 2^53 + 1 is not representable as a double; a lossy promote-to-double
  // compare would call these equal.
  Value big_int = Value::Int64((int64_t{1} << 53) + 1);
  Value big_dbl = Value::Double(9007199254740992.0);  // 2^53
  ASSERT_TRUE(big_int.SqlCompare(big_dbl).has_value());
  EXPECT_GT(*big_int.SqlCompare(big_dbl), 0);
  EXPECT_GT(big_int.TotalCompare(big_dbl), 0);

  // INT64_MAX < 2^63 even though (double)INT64_MAX == 2^63.
  Value imax = Value::Int64(std::numeric_limits<int64_t>::max());
  Value two63 = Value::Double(9223372036854775808.0);
  EXPECT_LT(*imax.SqlCompare(two63), 0);
  EXPECT_LT(imax.TotalCompare(two63), 0);

  // Exact equality across types still holds where it is genuine.
  EXPECT_EQ(*Value::Int64(42).SqlCompare(Value::Double(42.0)), 0);
  EXPECT_EQ(Value::Int64(int64_t{1} << 53)
                .TotalCompare(Value::Double(9007199254740992.0)),
            0);
  // Fractional doubles order strictly between neighbouring integers.
  EXPECT_LT(*Value::Int64(42).SqlCompare(Value::Double(42.5)), 0);
  EXPECT_GT(*Value::Int64(43).SqlCompare(Value::Double(42.5)), 0);
}

TEST(ValuePropertyTest, NegativeZeroAndNaNGroupingKeys) {
  // -0.0 and 0.0 are one group (IEEE equality) and must share a hash.
  Value pz = Value::Double(0.0);
  Value nz = Value::Double(-0.0);
  EXPECT_TRUE(pz.GroupEquals(nz));
  EXPECT_EQ(pz.Hash(), nz.Hash());
  EXPECT_TRUE(pz.GroupEquals(Value::Int64(0)));
  EXPECT_EQ(nz.Hash(), Value::Int64(0).Hash());

  // NaN is a single self-equal group under the total order (so GroupBy
  // produces one NaN group, not one per row) and hashes consistently.
  Value nan1 = Value::Double(std::numeric_limits<double>::quiet_NaN());
  Value nan2 = Value::Double(-std::numeric_limits<double>::quiet_NaN());
  EXPECT_TRUE(nan1.GroupEquals(nan2));
  EXPECT_EQ(nan1.Hash(), nan2.Hash());
  // NaN sorts after every ordinary numeric, including +inf.
  EXPECT_GT(nan1.TotalCompare(
                Value::Double(std::numeric_limits<double>::infinity())),
            0);
  EXPECT_GT(nan1.TotalCompare(Value::Int64(
                std::numeric_limits<int64_t>::max())),
            0);
  // But SQL comparison with NaN involved is simply whatever the total
  // order says only for sorting; SqlCompare never claims NaN == a number.
  std::optional<int> c = nan1.SqlCompare(Value::Double(1.0));
  if (c.has_value()) {
    EXPECT_NE(*c, 0);
  }
}

}  // namespace
}  // namespace orq
