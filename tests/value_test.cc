// Unit tests for the Value scalar type: SQL vs total comparison semantics,
// hashing consistency, date handling, formatting.
#include <gtest/gtest.h>

#include "common/value.h"

namespace orq {
namespace {

TEST(ValueTest, NullConstruction) {
  Value v = Value::Null(DataType::kDouble);
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), DataType::kDouble);
  EXPECT_EQ(v.ToString(), "NULL");
}

TEST(ValueTest, SqlCompareReturnsNulloptOnNull) {
  EXPECT_FALSE(Value::Null().SqlCompare(Value::Int64(1)).has_value());
  EXPECT_FALSE(Value::Int64(1).SqlCompare(Value::Null()).has_value());
  EXPECT_FALSE(Value::Null().SqlCompare(Value::Null()).has_value());
}

TEST(ValueTest, SqlCompareNumericPromotion) {
  EXPECT_EQ(*Value::Int64(3).SqlCompare(Value::Double(3.0)), 0);
  EXPECT_EQ(*Value::Int64(3).SqlCompare(Value::Double(3.5)), -1);
  EXPECT_EQ(*Value::Double(4.5).SqlCompare(Value::Int64(4)), 1);
}

TEST(ValueTest, SqlCompareStrings) {
  EXPECT_EQ(*Value::String("abc").SqlCompare(Value::String("abc")), 0);
  EXPECT_LT(*Value::String("abc").SqlCompare(Value::String("abd")), 0);
  EXPECT_GT(*Value::String("b").SqlCompare(Value::String("a")), 0);
}

TEST(ValueTest, SqlCompareMixedIncomparableTypesIsUnknown) {
  EXPECT_FALSE(Value::String("1").SqlCompare(Value::Int64(1)).has_value());
}

TEST(ValueTest, TotalCompareNullsFirstAndEqual) {
  EXPECT_EQ(Value::Null().TotalCompare(Value::Null()), 0);
  EXPECT_LT(Value::Null().TotalCompare(Value::Int64(-100)), 0);
  EXPECT_GT(Value::Int64(0).TotalCompare(Value::Null()), 0);
}

TEST(ValueTest, GroupEqualsTreatsNullsEqual) {
  EXPECT_TRUE(Value::Null().GroupEquals(Value::Null(DataType::kString)));
  EXPECT_FALSE(Value::Null().GroupEquals(Value::Int64(0)));
}

TEST(ValueTest, HashConsistentWithGroupEquals) {
  // Int64(3) and Double(3.0) group-equal, so they must hash alike.
  EXPECT_TRUE(Value::Int64(3).GroupEquals(Value::Double(3.0)));
  EXPECT_EQ(Value::Int64(3).Hash(), Value::Double(3.0).Hash());
  // All NULLs hash alike.
  EXPECT_EQ(Value::Null().Hash(), Value::Null(DataType::kString).Hash());
}

TEST(ValueTest, BoolValues) {
  EXPECT_TRUE(Value::Bool(true).bool_value());
  EXPECT_FALSE(Value::Bool(false).bool_value());
  EXPECT_EQ(Value::Bool(true).ToString(), "true");
}

TEST(DateTest, ParseAndFormatRoundTrip) {
  for (const char* text :
       {"1970-01-01", "1992-02-29", "1998-12-01", "1969-12-31",
        "2000-02-29", "1995-06-17"}) {
    std::optional<int32_t> days = ParseDate(text);
    ASSERT_TRUE(days.has_value()) << text;
    EXPECT_EQ(FormatDate(*days), text);
  }
}

TEST(DateTest, EpochIsZero) {
  EXPECT_EQ(*ParseDate("1970-01-01"), 0);
  EXPECT_EQ(*ParseDate("1970-01-02"), 1);
  EXPECT_EQ(*ParseDate("1971-01-01"), 365);
}

TEST(DateTest, RejectsMalformed) {
  EXPECT_FALSE(ParseDate("not-a-date").has_value());
  EXPECT_FALSE(ParseDate("1994-13-01").has_value());
  EXPECT_FALSE(ParseDate("1994-02-30").has_value());
  EXPECT_FALSE(ParseDate("1993-02-29").has_value());  // not a leap year
}

TEST(DateTest, ComparesChronologically) {
  Value a = Value::Date(*ParseDate("1994-01-01"));
  Value b = Value::Date(*ParseDate("1994-06-01"));
  EXPECT_LT(*a.SqlCompare(b), 0);
}

TEST(ValueTest, RowToStringFormatsAllValues) {
  Row row = {Value::Int64(1), Value::Null(), Value::String("x")};
  EXPECT_EQ(RowToString(row), "[1, NULL, x]");
}

TEST(RowHashTest, GroupSemantics) {
  RowHash hash;
  RowGroupEq eq;
  Row a = {Value::Int64(1), Value::Null()};
  Row b = {Value::Int64(1), Value::Null(DataType::kDouble)};
  Row c = {Value::Int64(2), Value::Null()};
  EXPECT_TRUE(eq(a, b));
  EXPECT_EQ(hash(a), hash(b));
  EXPECT_FALSE(eq(a, c));
}

}  // namespace
}  // namespace orq
