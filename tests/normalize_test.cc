// Tests for correlation removal: each identity of Fig. 4, Max1row handling,
// outerjoin simplification (including derivation through GroupBy), and
// predicate pushdown. Every rewrite is validated by executing the Apply
// form and the normalized form and comparing row multisets.
//
// NOTE: Get(...) populates the name->id map, so it is always hoisted into a
// local before Ref(...) is used (argument evaluation order is unspecified).
#include <gtest/gtest.h>

#include <functional>
#include <map>

#include "algebra/expr_util.h"
#include "algebra/printer.h"
#include "algebra/props.h"
#include "engine/engine.h"
#include "normalize/apply_removal.h"
#include "normalize/normalizer.h"
#include "normalize/oj_simplify.h"
#include "normalize/pushdown.h"
#include "normalize/subquery_class.h"
#include "tests/test_util.h"

namespace orq {
namespace {

int CountKind(const RelExprPtr& node, RelKind kind) {
  int n = node->kind == kind ? 1 : 0;
  for (const RelExprPtr& child : node->children) n += CountKind(child, kind);
  return n;
}

class NormalizeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    columns_ = std::make_shared<ColumnManager>();
    r_ = *catalog_.CreateTable("r", {{"rk", DataType::kInt64, false},
                                     {"rv", DataType::kInt64, true}});
    r_->SetPrimaryKey({0});
    ASSERT_TRUE(r_->Append({Value::Int64(1), Value::Int64(10)}).ok());
    ASSERT_TRUE(r_->Append({Value::Int64(2), Value::Int64(10)}).ok());
    ASSERT_TRUE(r_->Append({Value::Int64(3), Value::Int64(20)}).ok());
    ASSERT_TRUE(r_->Append({Value::Int64(4), Value::Null()}).ok());

    e_ = *catalog_.CreateTable("e", {{"ek", DataType::kInt64, false},
                                     {"fk", DataType::kInt64, false},
                                     {"ev", DataType::kInt64, true}});
    e_->SetPrimaryKey({0});
    ASSERT_TRUE(e_->Append({Value::Int64(100), Value::Int64(1),
                            Value::Int64(5)}).ok());
    ASSERT_TRUE(e_->Append({Value::Int64(101), Value::Int64(1),
                            Value::Int64(7)}).ok());
    ASSERT_TRUE(e_->Append({Value::Int64(102), Value::Int64(2),
                            Value::Null()}).ok());
    ASSERT_TRUE(e_->Append({Value::Int64(103), Value::Int64(3),
                            Value::Int64(9)}).ok());
    ASSERT_TRUE(e_->Append({Value::Int64(104), Value::Int64(3),
                            Value::Int64(1)}).ok());
  }

  RelExprPtr Get(Table* table, std::map<std::string, ColumnId>* ids) {
    std::vector<ColumnId> cols;
    for (const ColumnSpec& spec : table->columns()) {
      ColumnId id = columns_->NewColumn(spec.name, spec.type, spec.nullable);
      cols.push_back(id);
      (*ids)[spec.name] = id;
    }
    return MakeGet(table, std::move(cols));
  }

  ScalarExprPtr Ref(const std::map<std::string, ColumnId>& ids,
                    const std::string& name) {
    return CRef(*columns_, ids.at(name));
  }

  void ExpectDecorrelated(const RelExprPtr& tree, bool expect_removed = true) {
    std::vector<ColumnId> out = tree->OutputColumns();
    Result<std::vector<Row>> before = ExecLogical(tree, *columns_, out);
    ASSERT_TRUE(before.ok()) << before.status().ToString();

    NormalizerOptions options;
    Result<RelExprPtr> normalized = Normalize(tree, columns_.get(), options);
    ASSERT_TRUE(normalized.ok()) << normalized.status().ToString();
    if (expect_removed) {
      EXPECT_EQ(CountKind(*normalized, RelKind::kApply), 0)
          << PrintRelTree(**normalized, columns_.get());
    }
    Result<std::vector<Row>> after = ExecLogical(*normalized, *columns_, out);
    ASSERT_TRUE(after.ok()) << after.status().ToString();
    EXPECT_EQ(CanonicalRows(*before), CanonicalRows(*after))
        << PrintRelTree(**normalized, columns_.get());
  }

  Catalog catalog_;
  ColumnManagerPtr columns_;
  Table* r_ = nullptr;
  Table* e_ = nullptr;
};

TEST_F(NormalizeTest, Identity1UnparameterizedInner) {
  std::map<std::string, ColumnId> r, e;
  RelExprPtr gr = Get(r_, &r);
  RelExprPtr ge = Get(e_, &e);
  ExpectDecorrelated(MakeApply(ApplyKind::kCross, gr, ge));
}

TEST_F(NormalizeTest, Identity2AllJoinVariants) {
  for (ApplyKind kind : {ApplyKind::kCross, ApplyKind::kOuter,
                         ApplyKind::kSemi, ApplyKind::kAnti}) {
    std::map<std::string, ColumnId> r, e;
    RelExprPtr gr = Get(r_, &r);
    RelExprPtr ge = Get(e_, &e);
    RelExprPtr inner = MakeSelect(ge, Eq(Ref(e, "fk"), Ref(r, "rk")));
    SCOPED_TRACE(ApplyKindName(kind));
    ExpectDecorrelated(MakeApply(kind, gr, inner));
  }
}

TEST_F(NormalizeTest, Identity3SelectAboveParameterized) {
  std::map<std::string, ColumnId> r, e;
  RelExprPtr gr = Get(r_, &r);
  RelExprPtr ge = Get(e_, &e);
  RelExprPtr inner = MakeSelect(
      MakeSelect(ge, Eq(Ref(e, "fk"), Ref(r, "rk"))),
      MakeCompare(CompareOp::kGt, Ref(e, "ev"), Ref(r, "rv")));
  ExpectDecorrelated(MakeApply(ApplyKind::kCross, gr, inner));
}

TEST_F(NormalizeTest, Identity4ProjectAboveParameterized) {
  std::map<std::string, ColumnId> r, e;
  RelExprPtr gr = Get(r_, &r);
  RelExprPtr ge = Get(e_, &e);
  ColumnId doubled = columns_->NewColumn("doubled", DataType::kInt64, true);
  RelExprPtr inner = MakeProject(
      MakeSelect(ge, Eq(Ref(e, "fk"), Ref(r, "rk"))),
      {ProjectItem{doubled,
                   MakeArith(ArithOp::kMul, Ref(e, "ev"), LitInt(2))}},
      ColumnSet{e.at("ek")});
  ExpectDecorrelated(MakeApply(ApplyKind::kCross, gr, inner));
}

TEST_F(NormalizeTest, Identity5UnionAll) {
  std::map<std::string, ColumnId> r, e1, e2;
  RelExprPtr gr = Get(r_, &r);
  RelExprPtr ge1 = Get(e_, &e1);
  RelExprPtr ge2 = Get(e_, &e2);
  RelExprPtr b1 = MakeSelect(ge1, Eq(Ref(e1, "fk"), Ref(r, "rk")));
  RelExprPtr b2 = MakeSelect(
      ge2, MakeCompare(CompareOp::kLt, Ref(e2, "fk"), Ref(r, "rk")));
  ColumnId out = columns_->NewColumn("uv", DataType::kInt64, true);
  RelExprPtr inner =
      MakeUnionAll({b1, b2}, {out}, {{e1.at("ev")}, {e2.at("ev")}});
  ExpectDecorrelated(MakeApply(ApplyKind::kCross, gr, inner));
}

TEST_F(NormalizeTest, Identity6ExceptAll) {
  std::map<std::string, ColumnId> r, e1, e2;
  RelExprPtr gr = Get(r_, &r);
  RelExprPtr ge1 = Get(e_, &e1);
  RelExprPtr ge2 = Get(e_, &e2);
  RelExprPtr b1 = MakeSelect(ge1, Eq(Ref(e1, "fk"), Ref(r, "rk")));
  RelExprPtr b2 = MakeSelect(
      ge2, MakeCompare(CompareOp::kGe, Ref(e2, "ev"), Ref(r, "rv")));
  ColumnId out = columns_->NewColumn("dv", DataType::kInt64, true);
  RelExprPtr inner =
      MakeExceptAll(b1, b2, {out}, {{e1.at("ev")}, {e2.at("ev")}});
  ExpectDecorrelated(MakeApply(ApplyKind::kCross, gr, inner));
}

TEST_F(NormalizeTest, Identity7JoinParameterizedOnBothSides) {
  std::map<std::string, ColumnId> r, e1, e2;
  RelExprPtr gr = Get(r_, &r);
  RelExprPtr ge1 = Get(e_, &e1);
  RelExprPtr ge2 = Get(e_, &e2);
  RelExprPtr left = MakeSelect(ge1, Eq(Ref(e1, "fk"), Ref(r, "rk")));
  RelExprPtr right = MakeSelect(
      ge2, MakeCompare(CompareOp::kLe, Ref(e2, "fk"), Ref(r, "rk")));
  RelExprPtr inner = MakeJoin(JoinKind::kInner, left, right,
                              Eq(Ref(e1, "ev"), Ref(e2, "ev")));
  ExpectDecorrelated(MakeApply(ApplyKind::kCross, gr, inner));
}

TEST_F(NormalizeTest, Identity7LeftStaysWhenClass2Disabled) {
  std::map<std::string, ColumnId> r, e1, e2;
  RelExprPtr gr = Get(r_, &r);
  RelExprPtr ge1 = Get(e_, &e1);
  RelExprPtr ge2 = Get(e_, &e2);
  RelExprPtr left = MakeSelect(ge1, Eq(Ref(e1, "fk"), Ref(r, "rk")));
  RelExprPtr right = MakeSelect(
      ge2, MakeCompare(CompareOp::kLe, Ref(e2, "fk"), Ref(r, "rk")));
  RelExprPtr inner = MakeJoin(JoinKind::kInner, left, right,
                              Eq(Ref(e1, "ev"), Ref(e2, "ev")));
  RelExprPtr tree = MakeApply(ApplyKind::kCross, gr, inner);

  NormalizerOptions options;
  options.decorrelate_class2 = false;
  Result<RelExprPtr> normalized = Normalize(tree, columns_.get(), options);
  ASSERT_TRUE(normalized.ok());
  EXPECT_GE(CountKind(*normalized, RelKind::kApply), 1);
}

TEST_F(NormalizeTest, Identity8VectorGroupBy) {
  std::map<std::string, ColumnId> r, e;
  RelExprPtr gr = Get(r_, &r);
  RelExprPtr ge = Get(e_, &e);
  ColumnId total = columns_->NewColumn("total", DataType::kInt64, true);
  RelExprPtr inner = MakeGroupBy(
      MakeSelect(ge,
                 MakeCompare(CompareOp::kGe, Ref(e, "fk"), Ref(r, "rk"))),
      ColumnSet{e.at("fk")},
      {AggItem{AggFunc::kSum, Ref(e, "ev"), total, false}});
  ExpectDecorrelated(MakeApply(ApplyKind::kCross, gr, inner));
}

TEST_F(NormalizeTest, Identity9ScalarGroupBy) {
  std::map<std::string, ColumnId> r, e;
  RelExprPtr gr = Get(r_, &r);
  RelExprPtr ge = Get(e_, &e);
  ColumnId total = columns_->NewColumn("total", DataType::kInt64, true);
  ColumnId cnt = columns_->NewColumn("cnt", DataType::kInt64, true);
  RelExprPtr inner = MakeScalarGroupBy(
      MakeSelect(ge, Eq(Ref(e, "fk"), Ref(r, "rk"))),
      {AggItem{AggFunc::kSum, Ref(e, "ev"), total, false},
       AggItem{AggFunc::kCountStar, nullptr, cnt, false}});
  // Rows of r with no matching e must yield sum = NULL and count(*) = 0 —
  // the vector/scalar aggregate divergence of section 1.1 that identity
  // (9) preserves via count(c).
  ExpectDecorrelated(MakeApply(ApplyKind::kCross, gr, inner));
}

TEST_F(NormalizeTest, Identity9ProducesOuterJoinThenAggregate) {
  std::map<std::string, ColumnId> r, e;
  RelExprPtr gr = Get(r_, &r);
  RelExprPtr ge = Get(e_, &e);
  ColumnId cnt = columns_->NewColumn("cnt", DataType::kInt64, true);
  RelExprPtr inner = MakeScalarGroupBy(
      MakeSelect(ge, Eq(Ref(e, "fk"), Ref(r, "rk"))),
      {AggItem{AggFunc::kCountStar, nullptr, cnt, false}});
  RelExprPtr tree = MakeApply(ApplyKind::kCross, gr, inner);

  NormalizerOptions options;
  options.simplify_outerjoins = false;  // keep the LOJ visible
  Result<RelExprPtr> normalized = Normalize(tree, columns_.get(), options);
  ASSERT_TRUE(normalized.ok());
  EXPECT_EQ(CountKind(*normalized, RelKind::kApply), 0);
  EXPECT_EQ(CountKind(*normalized, RelKind::kGroupBy), 1);
  const RelExpr* group = normalized->get();
  while (group->kind != RelKind::kGroupBy) group = group->children[0].get();
  ASSERT_EQ(group->aggs.size(), 1u);
  // count(*) converted to count over a non-nullable inner column.
  EXPECT_EQ(group->aggs[0].func, AggFunc::kCount);
  const RelExpr* join = group->children[0].get();
  ASSERT_EQ(join->kind, RelKind::kJoin);
  EXPECT_EQ(join->join_kind, JoinKind::kLeftOuter);
}

TEST_F(NormalizeTest, Max1rowEliminatedByKeyAnalysis) {
  std::map<std::string, ColumnId> r, e;
  RelExprPtr gr = Get(r_, &r);
  RelExprPtr ge = Get(e_, &e);
  RelExprPtr inner =
      MakeMax1row(MakeSelect(ge, Eq(Ref(e, "ek"), Ref(r, "rk"))));
  RelExprPtr tree = MakeApply(ApplyKind::kOuter, gr, inner);

  NormalizerOptions options;
  Result<RelExprPtr> normalized = Normalize(tree, columns_.get(), options);
  ASSERT_TRUE(normalized.ok());
  EXPECT_EQ(CountKind(*normalized, RelKind::kMax1row), 0);
  EXPECT_EQ(CountKind(*normalized, RelKind::kApply), 0);
}

TEST_F(NormalizeTest, Max1rowAbsorbedIntoAggregateKeepsError) {
  // fk = 1 matches two rows in e: the Max1Row aggregate must raise the
  // run-time error after normalization, exactly like the guard would.
  std::map<std::string, ColumnId> r, e;
  RelExprPtr gr = Get(r_, &r);
  RelExprPtr ge = Get(e_, &e);
  RelExprPtr inner =
      MakeMax1row(MakeSelect(ge, Eq(Ref(e, "fk"), Ref(r, "rk"))));
  RelExprPtr tree = MakeApply(ApplyKind::kOuter, gr, inner);

  NormalizerOptions options;
  Result<RelExprPtr> normalized = Normalize(tree, columns_.get(), options);
  ASSERT_TRUE(normalized.ok());
  EXPECT_EQ(CountKind(*normalized, RelKind::kApply), 0);

  Result<std::vector<Row>> rows =
      ExecLogical(*normalized, *columns_, (*normalized)->OutputColumns());
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kCardinalityViolation);
}

TEST_F(NormalizeTest, Max1rowSingleMatchesSucceed) {
  std::map<std::string, ColumnId> r, e;
  RelExprPtr gr = Get(r_, &r);
  RelExprPtr outer = MakeSelect(gr, Eq(Ref(r, "rk"), LitInt(2)));
  RelExprPtr ge = Get(e_, &e);
  RelExprPtr inner =
      MakeMax1row(MakeSelect(ge, Eq(Ref(e, "fk"), Ref(r, "rk"))));
  ExpectDecorrelated(MakeApply(ApplyKind::kOuter, outer, inner));
}

TEST_F(NormalizeTest, OuterJoinSimplifiedUnderNullRejectingFilter) {
  std::map<std::string, ColumnId> r, e;
  RelExprPtr gr = Get(r_, &r);
  RelExprPtr ge = Get(e_, &e);
  RelExprPtr join = MakeJoin(JoinKind::kLeftOuter, gr, ge,
                             Eq(Ref(e, "fk"), Ref(r, "rk")));
  RelExprPtr tree = MakeSelect(
      join, MakeCompare(CompareOp::kGt, Ref(e, "ev"), LitInt(0)));

  RelExprPtr simplified = SimplifyOuterJoins(tree);
  const RelExpr* j = simplified.get();
  while (j->kind != RelKind::kJoin) j = j->children[0].get();
  EXPECT_EQ(j->join_kind, JoinKind::kInner);
}

TEST_F(NormalizeTest, OuterJoinKeptUnderIsNullFilter) {
  std::map<std::string, ColumnId> r, e;
  RelExprPtr gr = Get(r_, &r);
  RelExprPtr ge = Get(e_, &e);
  RelExprPtr join = MakeJoin(JoinKind::kLeftOuter, gr, ge,
                             Eq(Ref(e, "fk"), Ref(r, "rk")));
  RelExprPtr tree = MakeSelect(join, MakeIsNull(Ref(e, "ev")));

  RelExprPtr simplified = SimplifyOuterJoins(tree);
  const RelExpr* j = simplified.get();
  while (j->kind != RelKind::kJoin) j = j->children[0].get();
  EXPECT_EQ(j->join_kind, JoinKind::kLeftOuter);
}

TEST_F(NormalizeTest, NullRejectionDerivedThroughGroupBy) {
  // sigma(total > 0)(G[rk](R LOJ E), total = sum(ev)): the filter rejects
  // NULL sums, which only arise from unmatched rows -> inner join. This is
  // the paper's extension over [7] (section 1.2).
  std::map<std::string, ColumnId> r, e;
  RelExprPtr gr = Get(r_, &r);
  RelExprPtr ge = Get(e_, &e);
  RelExprPtr join = MakeJoin(JoinKind::kLeftOuter, gr, ge,
                             Eq(Ref(e, "fk"), Ref(r, "rk")));
  ColumnId total = columns_->NewColumn("total", DataType::kInt64, true);
  RelExprPtr group =
      MakeGroupBy(join, ColumnSet{r.at("rk")},
                  {AggItem{AggFunc::kSum, Ref(e, "ev"), total, false}});
  RelExprPtr tree = MakeSelect(
      group,
      MakeCompare(CompareOp::kGt, CRef(total, DataType::kInt64), LitInt(0)));

  RelExprPtr simplified = SimplifyOuterJoins(tree);
  const RelExpr* j = simplified.get();
  while (j->kind != RelKind::kJoin) j = j->children[0].get();
  EXPECT_EQ(j->join_kind, JoinKind::kInner);
}

TEST_F(NormalizeTest, NoNullRejectionThroughCount) {
  // count is never NULL: rejection must NOT transfer through it.
  std::map<std::string, ColumnId> r, e;
  RelExprPtr gr = Get(r_, &r);
  RelExprPtr ge = Get(e_, &e);
  RelExprPtr join = MakeJoin(JoinKind::kLeftOuter, gr, ge,
                             Eq(Ref(e, "fk"), Ref(r, "rk")));
  ColumnId cnt = columns_->NewColumn("cnt", DataType::kInt64, true);
  RelExprPtr group =
      MakeGroupBy(join, ColumnSet{r.at("rk")},
                  {AggItem{AggFunc::kCount, Ref(e, "ev"), cnt, false}});
  RelExprPtr tree = MakeSelect(
      group,
      MakeCompare(CompareOp::kGe, CRef(cnt, DataType::kInt64), LitInt(0)));
  RelExprPtr simplified = SimplifyOuterJoins(tree);
  const RelExpr* j = simplified.get();
  while (j->kind != RelKind::kJoin) j = j->children[0].get();
  EXPECT_EQ(j->join_kind, JoinKind::kLeftOuter);
}

TEST_F(NormalizeTest, PushdownSplitsJoinConjuncts) {
  std::map<std::string, ColumnId> r, e;
  RelExprPtr gr = Get(r_, &r);
  RelExprPtr ge = Get(e_, &e);
  RelExprPtr join = MakeJoin(JoinKind::kInner, gr, ge, TrueLiteral());
  RelExprPtr tree = MakeSelect(
      join,
      MakeAnd({Eq(Ref(e, "fk"), Ref(r, "rk")),
               MakeCompare(CompareOp::kGt, Ref(r, "rv"), LitInt(5)),
               MakeCompare(CompareOp::kGt, Ref(e, "ev"), LitInt(0))}));
  RelExprPtr pushed = PushdownPredicates(tree, columns_.get());
  ASSERT_EQ(pushed->kind, RelKind::kJoin);
  EXPECT_EQ(pushed->children[0]->kind, RelKind::kSelect);
  EXPECT_EQ(pushed->children[1]->kind, RelKind::kSelect);
}

TEST_F(NormalizeTest, EqualityClosureInference) {
  // rk = ev and ev = fk implies rk = fk.
  std::map<std::string, ColumnId> r, e;
  RelExprPtr gr = Get(r_, &r);
  RelExprPtr ge = Get(e_, &e);
  RelExprPtr join = MakeJoin(
      JoinKind::kInner, gr, ge,
      MakeAnd({Eq(Ref(r, "rk"), Ref(e, "ev")),
               Eq(Ref(e, "ev"), Ref(e, "fk"))}));
  RelExprPtr pushed = PushdownPredicates(join, columns_.get());
  int eq_count = 0;
  std::function<void(const RelExprPtr&)> walk = [&](const RelExprPtr& node) {
    if (node->predicate) {
      for (const ScalarExprPtr& c : SplitConjuncts(node->predicate)) {
        if (c->kind == ScalarKind::kCompare && c->cmp == CompareOp::kEq) {
          ++eq_count;
        }
      }
    }
    for (const RelExprPtr& child : node->children) walk(child);
  };
  walk(pushed);
  EXPECT_GE(eq_count, 3);  // the implied rk = fk was added
}

TEST_F(NormalizeTest, PruneNarrowsGet) {
  std::map<std::string, ColumnId> e;
  RelExprPtr ge = Get(e_, &e);
  RelExprPtr tree = MakeProject(ge, {}, ColumnSet{e.at("ev")});
  RelExprPtr pruned = PruneColumns(tree, columns_.get());
  const RelExpr* leaf = pruned.get();
  while (leaf->kind != RelKind::kGet) leaf = leaf->children[0].get();
  // ev plus the primary key (retained for key derivations).
  EXPECT_EQ(leaf->get_cols.size(), 2u);
}

TEST_F(NormalizeTest, ClassificationCoversAllThreeClasses) {
  // Class 1: plain parameterized select.
  std::map<std::string, ColumnId> r1, e1;
  RelExprPtr gr1 = Get(r_, &r1);
  RelExprPtr ge1 = Get(e_, &e1);
  RelExprPtr c1 = MakeApply(
      ApplyKind::kCross, gr1,
      MakeSelect(ge1, Eq(Ref(e1, "fk"), Ref(r1, "rk"))));
  auto classes1 = ClassifySubqueries(c1);
  ASSERT_EQ(classes1.size(), 1u);
  EXPECT_EQ(classes1[0].cls, SubqueryClass::kClass1);

  // Class 2: union of parameterized branches.
  std::map<std::string, ColumnId> r2, e2a, e2b;
  RelExprPtr gr2 = Get(r_, &r2);
  RelExprPtr ge2a = Get(e_, &e2a);
  RelExprPtr ge2b = Get(e_, &e2b);
  RelExprPtr b1 = MakeSelect(ge2a, Eq(Ref(e2a, "fk"), Ref(r2, "rk")));
  RelExprPtr b2 = MakeSelect(ge2b, Eq(Ref(e2b, "ek"), Ref(r2, "rk")));
  ColumnId uv = columns_->NewColumn("uv", DataType::kInt64, true);
  RelExprPtr c2 = MakeApply(
      ApplyKind::kCross, gr2,
      MakeUnionAll({b1, b2}, {uv}, {{e2a.at("ev")}, {e2b.at("ev")}}));
  auto classes2 = ClassifySubqueries(c2);
  ASSERT_EQ(classes2.size(), 1u);
  EXPECT_EQ(classes2[0].cls, SubqueryClass::kClass2);

  // Class 3: Max1row that key analysis cannot remove.
  std::map<std::string, ColumnId> r3, e3;
  RelExprPtr gr3 = Get(r_, &r3);
  RelExprPtr ge3 = Get(e_, &e3);
  RelExprPtr c3 = MakeApply(
      ApplyKind::kOuter, gr3,
      MakeMax1row(MakeSelect(ge3, Eq(Ref(e3, "fk"), Ref(r3, "rk")))));
  auto classes3 = ClassifySubqueries(c3);
  ASSERT_EQ(classes3.size(), 1u);
  EXPECT_EQ(classes3[0].cls, SubqueryClass::kClass3);
}

TEST_F(NormalizeTest, SemiApplyOverGroupByStripsAggregate) {
  std::map<std::string, ColumnId> r, e;
  RelExprPtr gr = Get(r_, &r);
  RelExprPtr ge = Get(e_, &e);
  ColumnId total = columns_->NewColumn("total", DataType::kInt64, true);
  RelExprPtr inner = MakeGroupBy(
      MakeSelect(ge, Eq(Ref(e, "fk"), Ref(r, "rk"))),
      ColumnSet{e.at("fk")},
      {AggItem{AggFunc::kSum, Ref(e, "ev"), total, false}});
  ExpectDecorrelated(MakeApply(ApplyKind::kSemi, gr, inner));
}

TEST_F(NormalizeTest, AntiApplyCountFallback) {
  std::map<std::string, ColumnId> r, e;
  RelExprPtr gr = Get(r_, &r);
  RelExprPtr ge = Get(e_, &e);
  ColumnId shifted = columns_->NewColumn("shifted", DataType::kInt64, true);
  RelExprPtr inner = MakeProject(
      MakeSelect(ge,
                 MakeCompare(CompareOp::kLt, Ref(e, "ev"), Ref(r, "rv"))),
      {ProjectItem{shifted,
                   MakeArith(ArithOp::kAdd, Ref(e, "ev"), Ref(r, "rk"))}},
      ColumnSet());
  ExpectDecorrelated(MakeApply(ApplyKind::kAnti, gr, inner));
}

// ---- The count bug (paper section 5.4), end to end ---------------------
//
// Scalar COUNT over an empty correlated input must stay 0 after identity
// (9) turns the scalar GroupBy into a vector GroupBy below a left outer
// join; without the repair, the NULL-padded row would surface NULL (or
// count 1) instead. r.rk=4 has no e rows (empty group); e.fk=2's single
// row has ev NULL (all-NULL group).

TEST_F(NormalizeTest, CountBugEmptyGroupYieldsZero) {
  QueryEngine engine(&catalog_);
  Result<QueryEngine::Compiled> compiled = engine.Compile(
      "select rk, (select count(ev) from e where e.fk = r.rk) from r "
      "order by rk");
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  // The correlation must actually be removed — this test covers the
  // rewritten path, not literal Apply execution.
  EXPECT_EQ(CountKind(compiled->normalized, RelKind::kApply), 0)
      << PrintRelTree(*compiled->normalized, compiled->columns.get());

  Result<QueryResult> result = engine.ExecuteCompiled(*compiled);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->rows.size(), 4u);
  EXPECT_EQ(result->rows[0][1].int64_value(), 2);  // rk=1: ev {5, 7}
  EXPECT_EQ(result->rows[1][1].int64_value(), 0);  // rk=2: all-NULL group
  EXPECT_EQ(result->rows[2][1].int64_value(), 2);  // rk=3: ev {9, 1}
  ASSERT_FALSE(result->rows[3][1].is_null());      // rk=4: empty group...
  EXPECT_EQ(result->rows[3][1].int64_value(), 0);  // ...counts 0, not NULL
}

TEST_F(NormalizeTest, CountBugCountStarDistinguishesEmptyFromNullRows) {
  QueryEngine engine(&catalog_);
  Result<QueryResult> result = engine.Execute(
      "select rk, (select count(*) from e where e.fk = r.rk) from r "
      "order by rk");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->rows.size(), 4u);
  EXPECT_EQ(result->rows[1][1].int64_value(), 1);  // rk=2: one NULL-ev row
  EXPECT_EQ(result->rows[3][1].int64_value(), 0);  // rk=4: truly empty
}

TEST_F(NormalizeTest, SumOverEmptyCorrelatedGroupStaysNull) {
  // Contrast: NULL-on-empty aggregates need no repair — sum over the
  // empty (rk=4) and all-NULL (rk=2) groups is NULL either way.
  QueryEngine engine(&catalog_);
  Result<QueryResult> result = engine.Execute(
      "select rk, (select sum(ev) from e where e.fk = r.rk) from r "
      "order by rk");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->rows.size(), 4u);
  EXPECT_EQ(result->rows[0][1].int64_value(), 12);  // rk=1: 5 + 7
  EXPECT_TRUE(result->rows[1][1].is_null());        // rk=2: all-NULL group
  EXPECT_TRUE(result->rows[3][1].is_null());        // rk=4: empty group
}

TEST_F(NormalizeTest, CountBugSurvivesFilterAboveSubquery) {
  // The paper's original count-bug shape: a predicate compares the counted
  // result, so a wrong NULL for empty groups silently drops rows instead
  // of producing a visible NULL. rk=2 and rk=4 have count 0 < 1.
  QueryEngine engine(&catalog_);
  Result<QueryResult> result = engine.Execute(
      "select rk from r "
      "where (select count(ev) from e where e.fk = r.rk) < 1 order by rk");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->rows.size(), 2u);
  EXPECT_EQ(result->rows[0][0].int64_value(), 2);
  EXPECT_EQ(result->rows[1][0].int64_value(), 4);
}

}  // namespace
}  // namespace orq
