// Wire-protocol codec tests: frame round-trips under arbitrary chunking,
// hostile input (oversized / truncated / garbage frames), and the
// result/error payload encodings. Pure byte-level tests — no sockets.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "server/wire.h"

namespace orq {
namespace {

TEST(FrameDecoderTest, RoundTripsSingleFrame) {
  std::string bytes;
  AppendFrame(FrameType::kQuery, "SELECT 1", &bytes);
  FrameDecoder decoder;
  decoder.Feed(bytes);
  Frame frame;
  Result<bool> got = decoder.Next(&frame);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_TRUE(got.value());
  EXPECT_EQ(frame.type, FrameType::kQuery);
  EXPECT_EQ(frame.payload, "SELECT 1");
  // Stream drained: no second frame, no pending bytes.
  got = decoder.Next(&frame);
  ASSERT_TRUE(got.ok());
  EXPECT_FALSE(got.value());
  EXPECT_EQ(decoder.pending_bytes(), 0u);
}

TEST(FrameDecoderTest, RoundTripsEmptyPayload) {
  std::string bytes;
  AppendFrame(FrameType::kPing, "", &bytes);
  FrameDecoder decoder;
  decoder.Feed(bytes);
  Frame frame;
  Result<bool> got = decoder.Next(&frame);
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(got.value());
  EXPECT_EQ(frame.type, FrameType::kPing);
  EXPECT_TRUE(frame.payload.empty());
}

TEST(FrameDecoderTest, ReassemblesByteAtATime) {
  // TCP may deliver any split; feeding one byte at a time is the worst
  // case. The decoder must return "need more" until the frame completes.
  std::string bytes;
  AppendFrame(FrameType::kSet, "threads 4", &bytes);
  FrameDecoder decoder;
  Frame frame;
  for (size_t i = 0; i + 1 < bytes.size(); ++i) {
    decoder.Feed(&bytes[i], 1);
    Result<bool> got = decoder.Next(&frame);
    ASSERT_TRUE(got.ok()) << "byte " << i;
    ASSERT_FALSE(got.value()) << "frame completed early at byte " << i;
  }
  decoder.Feed(&bytes[bytes.size() - 1], 1);
  Result<bool> got = decoder.Next(&frame);
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(got.value());
  EXPECT_EQ(frame.type, FrameType::kSet);
  EXPECT_EQ(frame.payload, "threads 4");
}

TEST(FrameDecoderTest, SplitsCoalescedFrames) {
  // Pipelined senders coalesce frames into one segment; each Next call
  // must pop exactly one.
  std::string bytes;
  AppendFrame(FrameType::kQuery, "q1", &bytes);
  AppendFrame(FrameType::kAdmin, "metrics", &bytes);
  AppendFrame(FrameType::kPing, "", &bytes);
  FrameDecoder decoder;
  decoder.Feed(bytes);
  Frame frame;
  Result<bool> got = decoder.Next(&frame);
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(got.value());
  EXPECT_EQ(frame.payload, "q1");
  got = decoder.Next(&frame);
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(got.value());
  EXPECT_EQ(frame.type, FrameType::kAdmin);
  got = decoder.Next(&frame);
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(got.value());
  EXPECT_EQ(frame.type, FrameType::kPing);
  got = decoder.Next(&frame);
  ASSERT_TRUE(got.ok());
  EXPECT_FALSE(got.value());
}

TEST(FrameDecoderTest, RejectsOversizedFrame) {
  // Length prefix claiming more than the 16 MiB cap: protocol error
  // before any payload is buffered (a hostile peer cannot make the
  // server allocate the claimed size).
  const uint32_t huge = kWireMaxFrameBytes + 1;
  std::string bytes;
  bytes.push_back(static_cast<char>(huge & 0xff));
  bytes.push_back(static_cast<char>((huge >> 8) & 0xff));
  bytes.push_back(static_cast<char>((huge >> 16) & 0xff));
  bytes.push_back(static_cast<char>((huge >> 24) & 0xff));
  FrameDecoder decoder;
  decoder.Feed(bytes);
  Frame frame;
  Result<bool> got = decoder.Next(&frame);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kInvalidArgument);
}

TEST(FrameDecoderTest, RejectsZeroLengthFrame) {
  FrameDecoder decoder;
  decoder.Feed(std::string(4, '\0'));  // length = 0: no type byte possible
  Frame frame;
  Result<bool> got = decoder.Next(&frame);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kInvalidArgument);
}

TEST(FrameDecoderTest, RejectsUnknownFrameType) {
  std::string bytes;
  bytes.push_back(2);  // length 2
  bytes.push_back(0);
  bytes.push_back(0);
  bytes.push_back(0);
  bytes.push_back('z');  // not a FrameType
  bytes.push_back('x');
  FrameDecoder decoder;
  decoder.Feed(bytes);
  Frame frame;
  Result<bool> got = decoder.Next(&frame);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kInvalidArgument);
}

TEST(FrameDecoderTest, TruncatedFrameStaysPending) {
  std::string bytes;
  AppendFrame(FrameType::kQuery, "SELECT * FROM nation", &bytes);
  FrameDecoder decoder;
  decoder.Feed(bytes.substr(0, bytes.size() - 5));
  Frame frame;
  Result<bool> got = decoder.Next(&frame);
  ASSERT_TRUE(got.ok());
  EXPECT_FALSE(got.value());
  EXPECT_GT(decoder.pending_bytes(), 0u);
}

TEST(FrameDecoderTest, GarbageAfterValidFrameIsAnError) {
  std::string bytes;
  AppendFrame(FrameType::kQuery, "ok", &bytes);
  // Garbage tail whose first 4 bytes decode to an enormous length.
  bytes += std::string(8, '\xff');
  FrameDecoder decoder;
  decoder.Feed(bytes);
  Frame frame;
  Result<bool> got = decoder.Next(&frame);
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(got.value());
  EXPECT_EQ(frame.payload, "ok");
  got = decoder.Next(&frame);
  ASSERT_FALSE(got.ok());
}

TEST(WireResultTest, RoundTrips) {
  WireResult result;
  result.columns = {"a", "b"};
  result.rows = {"1|'x'", "2|\xE2\x88\x85"};  // second row carries a NULL
  result.rows_produced = 1234567890123LL;
  Result<WireResult> decoded = DecodeResult(EncodeResult(result));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->columns, result.columns);
  EXPECT_EQ(decoded->rows, result.rows);
  EXPECT_EQ(decoded->rows_produced, result.rows_produced);
}

TEST(WireResultTest, RoundTripsEmptyResult) {
  WireResult result;
  Result<WireResult> decoded = DecodeResult(EncodeResult(result));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->columns.empty());
  EXPECT_TRUE(decoded->rows.empty());
}

TEST(WireResultTest, RejectsTruncatedPayload) {
  WireResult result;
  result.columns = {"a"};
  result.rows = {"1", "2", "3"};
  const std::string payload = EncodeResult(result);
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    Result<WireResult> decoded = DecodeResult(payload.substr(0, cut));
    EXPECT_FALSE(decoded.ok()) << "decoded a " << cut << "-byte prefix";
  }
}

TEST(WireResultTest, RejectsTrailingGarbage) {
  WireResult result;
  result.columns = {"a"};
  Result<WireResult> decoded = DecodeResult(EncodeResult(result) + "x");
  EXPECT_FALSE(decoded.ok());
}

TEST(WireResultTest, RejectsLyingStringLength) {
  // A declared inner-string length far past the payload end must not read
  // out of bounds.
  std::string payload;
  payload.append({1, 0, 0, 0});        // 1 column
  payload.append({'\xff', '\xff', '\xff', '\x7f'});  // name length 2^31-1
  Result<WireResult> decoded = DecodeResult(payload);
  EXPECT_FALSE(decoded.ok());
}

TEST(WireErrorTest, RoundTripsEveryCode) {
  const StatusCode codes[] = {
      StatusCode::kInvalidArgument,    StatusCode::kNotFound,
      StatusCode::kRuntimeError,       StatusCode::kCardinalityViolation,
      StatusCode::kUnsupported,        StatusCode::kInternal,
      StatusCode::kCancelled,          StatusCode::kDeadlineExceeded,
      StatusCode::kUnavailable,
  };
  for (StatusCode code : codes) {
    Status original(code, "message for " + Status::CodeName(code));
    Status decoded = DecodeError(EncodeError(original));
    EXPECT_EQ(decoded.code(), original.code());
    EXPECT_EQ(decoded.message(), original.message());
  }
}

TEST(WireErrorTest, RejectsUnknownCodeByte) {
  std::string payload;
  payload.push_back(static_cast<char>(0x7f));
  payload += "whatever";
  Status decoded = DecodeError(payload);
  EXPECT_EQ(decoded.code(), StatusCode::kInternal);
}

TEST(WireErrorTest, RejectsEmptyPayload) {
  EXPECT_EQ(DecodeError("").code(), StatusCode::kInternal);
}

TEST(WireResultTest, RoundTripsQueryId) {
  WireResult result;
  result.columns = {"a"};
  result.rows = {"1"};
  result.rows_produced = 1;
  result.query_id = "s3q17";
  Result<WireResult> decoded = DecodeResult(EncodeResult(result));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->query_id, "s3q17");
}

TEST(WireErrorTest, CarriesQueryIdInItsOwnField) {
  Status original = Status::DeadlineExceeded("query timed out");
  const std::string payload = EncodeError(original, "s2q9");
  std::string query_id;
  Status decoded = DecodeError(payload, &query_id);
  EXPECT_EQ(decoded.code(), original.code());
  // The id travels as its own field; the message text is untouched (the
  // byte-for-byte serial-vs-wire comparison depends on this).
  EXPECT_EQ(decoded.message(), original.message());
  EXPECT_EQ(query_id, "s2q9");
  // Decoding without asking for the id yields the same status.
  Status plain = DecodeError(payload);
  EXPECT_EQ(plain.code(), original.code());
  EXPECT_EQ(plain.message(), original.message());
}

TEST(WireErrorTest, RejectsTruncatedQueryIdField) {
  const std::string payload =
      EncodeError(Status::RuntimeError("boom"), "s1q1");
  // Chop inside the id's length prefix: malformed, not a silent misparse.
  Status decoded = DecodeError(payload.substr(0, 3));
  EXPECT_EQ(decoded.code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace orq
