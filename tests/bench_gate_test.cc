// Tests for the CI perf-regression gate (obs/bench_gate.h): baseline vs
// current JSON-lines comparison, including the injected-regression case the
// gate exists to catch.
#include <gtest/gtest.h>

#include <string>

#include "obs/bench_gate.h"

namespace orq {
namespace {

const char kBaseline[] =
    "{\"name\":\"bench_q2/5\",\"iterations\":10,\"wall_ms\":2.0,"
    "\"result_rows\":44,\"rows_produced\":9000,\"error\":false}\n"
    "{\"name\":\"bench_q17/5\",\"iterations\":10,\"wall_ms\":5.0,"
    "\"result_rows\":1,\"rows_produced\":12000,\"error\":false}\n";

TEST(BenchGateTest, IdenticalRunsPass) {
  Result<BenchGateReport> report =
      CompareBenchJson(kBaseline, kBaseline, BenchGateOptions{});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->ok()) << report->Summary();
  EXPECT_EQ(report->compared, 2);
  EXPECT_TRUE(report->failures.empty());
}

TEST(BenchGateTest, InjectedWallRegressionFails) {
  // 2.0ms -> 3.0ms is a 1.5x regression: over the default 1.4x tolerance.
  const std::string current =
      "{\"name\":\"bench_q2/5\",\"wall_ms\":3.0,"
      "\"result_rows\":44,\"rows_produced\":9000,\"error\":false}\n"
      "{\"name\":\"bench_q17/5\",\"wall_ms\":5.0,"
      "\"result_rows\":1,\"rows_produced\":12000,\"error\":false}\n";
  Result<BenchGateReport> report =
      CompareBenchJson(kBaseline, current, BenchGateOptions{});
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->ok());
  ASSERT_EQ(report->failures.size(), 1u);
  EXPECT_NE(report->failures[0].find("bench_q2/5"), std::string::npos);
  EXPECT_NE(report->failures[0].find("wall regression"), std::string::npos);
  // A looser tolerance lets the same run pass; <=0 disables wall checks.
  BenchGateOptions loose;
  loose.wall_tolerance = 2.0;
  EXPECT_TRUE(CompareBenchJson(kBaseline, current, loose)->ok());
  BenchGateOptions disabled;
  disabled.wall_tolerance = 0.0;
  EXPECT_TRUE(CompareBenchJson(kBaseline, current, disabled)->ok());
}

TEST(BenchGateTest, SpeedupsNeverFail) {
  const std::string current =
      "{\"name\":\"bench_q2/5\",\"wall_ms\":0.2,"
      "\"result_rows\":44,\"rows_produced\":9000,\"error\":false}\n"
      "{\"name\":\"bench_q17/5\",\"wall_ms\":0.5,"
      "\"result_rows\":1,\"rows_produced\":12000,\"error\":false}\n";
  Result<BenchGateReport> report =
      CompareBenchJson(kBaseline, current, BenchGateOptions{});
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok()) << report->Summary();
}

TEST(BenchGateTest, RowCountMismatchFailsRegardlessOfTolerance) {
  // Wall time identical but the query now returns different rows: a
  // correctness change, gated exactly (no tolerance applies).
  const std::string current =
      "{\"name\":\"bench_q2/5\",\"wall_ms\":2.0,"
      "\"result_rows\":45,\"rows_produced\":9000,\"error\":false}\n"
      "{\"name\":\"bench_q17/5\",\"wall_ms\":5.0,"
      "\"result_rows\":1,\"rows_produced\":11999,\"error\":false}\n";
  BenchGateOptions disabled;
  disabled.wall_tolerance = 0.0;
  Result<BenchGateReport> report =
      CompareBenchJson(kBaseline, current, disabled);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->ok());
  ASSERT_EQ(report->failures.size(), 2u);
  EXPECT_NE(report->failures[0].find("result_rows"), std::string::npos);
  EXPECT_NE(report->failures[1].find("rows_produced"), std::string::npos);
}

TEST(BenchGateTest, MissingAndErroredBenchmarksFail) {
  const std::string current =
      "{\"name\":\"bench_q2/5\",\"wall_ms\":2.0,"
      "\"result_rows\":44,\"rows_produced\":9000,\"error\":true}\n";
  Result<BenchGateReport> report =
      CompareBenchJson(kBaseline, current, BenchGateOptions{});
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->ok());
  // q2 errored; q17 vanished from the current run.
  ASSERT_EQ(report->failures.size(), 2u);
  EXPECT_NE(report->failures[0].find("errored"), std::string::npos);
  EXPECT_NE(report->failures[1].find("missing from current"),
            std::string::npos);
}

TEST(BenchGateTest, NewBenchmarksAreNotesNotFailures) {
  const std::string current = std::string(kBaseline) +
      "{\"name\":\"bench_new/5\",\"wall_ms\":1.0,"
      "\"result_rows\":3,\"rows_produced\":100,\"error\":false}\n";
  Result<BenchGateReport> report =
      CompareBenchJson(kBaseline, current, BenchGateOptions{});
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok());
  ASSERT_EQ(report->notes.size(), 1u);
  EXPECT_NE(report->notes[0].find("bench_new/5"), std::string::npos);
}

TEST(BenchGateTest, AbsentCountersSkipExactChecks) {
  // Baselines that predate a counter must not fail when the current run
  // reports it (and vice versa).
  const std::string old_baseline =
      "{\"name\":\"bench_q2/5\",\"wall_ms\":2.0,\"error\":false}\n";
  const std::string current =
      "{\"name\":\"bench_q2/5\",\"wall_ms\":2.1,"
      "\"result_rows\":44,\"rows_produced\":9000,\"error\":false}\n";
  Result<BenchGateReport> report =
      CompareBenchJson(old_baseline, current, BenchGateOptions{});
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok()) << report->Summary();
}

TEST(BenchGateTest, UnreadableBaselineIsAnErrorNotAPass) {
  Result<BenchGateReport> malformed =
      CompareBenchJson("not json\n", kBaseline, BenchGateOptions{});
  EXPECT_FALSE(malformed.ok());
  Result<BenchGateReport> empty =
      CompareBenchJson("\n\n", kBaseline, BenchGateOptions{});
  EXPECT_FALSE(empty.ok());
  Result<BenchGateReport> malformed_current =
      CompareBenchJson(kBaseline, "{\"name\":\n", BenchGateOptions{});
  EXPECT_FALSE(malformed_current.ok());
}

TEST(BenchGateTest, SubMillisecondBaselinesSkipWallChecks) {
  // 0.1ms -> 1.0ms is a 10x "regression" but entirely noise at this
  // scale in a smoke run; row counts still gate exactly.
  const std::string baseline =
      "{\"name\":\"bench_tiny/1\",\"wall_ms\":0.1,"
      "\"result_rows\":3,\"rows_produced\":50,\"error\":false}\n";
  const std::string current =
      "{\"name\":\"bench_tiny/1\",\"wall_ms\":1.0,"
      "\"result_rows\":3,\"rows_produced\":50,\"error\":false}\n";
  Result<BenchGateReport> report =
      CompareBenchJson(baseline, current, BenchGateOptions{});
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok()) << report->Summary();
  // Lowering the floor re-arms the wall check.
  BenchGateOptions strict;
  strict.min_wall_ms = 0.0;
  EXPECT_FALSE(CompareBenchJson(baseline, current, strict)->ok());
}

TEST(BenchGateTest, BothSidesErroringIsToleratedAsKnownLimitation) {
  const std::string both =
      "{\"name\":\"bench_q2/5\",\"wall_ms\":0,\"error\":true}\n";
  Result<BenchGateReport> report =
      CompareBenchJson(both, both, BenchGateOptions{});
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok()) << report->Summary();
  ASSERT_EQ(report->notes.size(), 1u);
  EXPECT_NE(report->notes[0].find("errors in baseline and current"),
            std::string::npos);
}

TEST(BenchGateTest, BaselineErrorNowPassingIsANote) {
  const std::string baseline =
      "{\"name\":\"bench_q2/5\",\"wall_ms\":0,\"error\":true}\n";
  const std::string current =
      "{\"name\":\"bench_q2/5\",\"wall_ms\":2.0,"
      "\"result_rows\":44,\"rows_produced\":9000,\"error\":false}\n";
  Result<BenchGateReport> report =
      CompareBenchJson(baseline, current, BenchGateOptions{});
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok());
  ASSERT_EQ(report->notes.size(), 1u);
  EXPECT_NE(report->notes[0].find("now passes"), std::string::npos);
}

TEST(BenchGateTest, SummaryNamesEveryFailure) {
  const std::string current =
      "{\"name\":\"bench_q2/5\",\"wall_ms\":30.0,"
      "\"result_rows\":44,\"rows_produced\":9000,\"error\":false}\n"
      "{\"name\":\"bench_q17/5\",\"wall_ms\":5.0,"
      "\"result_rows\":1,\"rows_produced\":12000,\"error\":false}\n";
  Result<BenchGateReport> report =
      CompareBenchJson(kBaseline, current, BenchGateOptions{});
  ASSERT_TRUE(report.ok());
  const std::string summary = report->Summary();
  EXPECT_NE(summary.find("compared=2"), std::string::npos);
  EXPECT_NE(summary.find("failures=1"), std::string::npos);
  EXPECT_NE(summary.find("FAIL bench_q2/5"), std::string::npos);
}

// One report with batch/columnar twins for two workloads plus a row mode
// that the speedup gate must ignore.
const char kModeReport[] =
    "{\"name\":\"Columnar_A/row/20\",\"wall_ms\":60.0,\"error\":false}\n"
    "{\"name\":\"Columnar_A/batch/20\",\"wall_ms\":20.0,\"error\":false}\n"
    "{\"name\":\"Columnar_A/columnar/20\",\"wall_ms\":5.0,\"error\":false}\n"
    "{\"name\":\"Columnar_B/batch/20\",\"wall_ms\":9.0,\"error\":false}\n"
    "{\"name\":\"Columnar_B/columnar/20\",\"wall_ms\":4.0,\"error\":false}\n";

TEST(SpeedupGateTest, PassesWhenEnoughPairsReachTheRatio) {
  // A is 4.0x, B is 2.25x: both clear the default 1.5x, min_pairs=2.
  Result<BenchGateReport> report =
      CheckSpeedupJson(kModeReport, SpeedupGateOptions{});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->ok()) << report->Summary();
  EXPECT_EQ(report->compared, 2);
}

TEST(SpeedupGateTest, FailsWhenTooFewPairsReachTheRatio) {
  // Demanding 3.0x leaves only A (4.0x); B (2.25x) falls short.
  SpeedupGateOptions strict;
  strict.min_ratio = 3.0;
  Result<BenchGateReport> report = CheckSpeedupJson(kModeReport, strict);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->ok());
  ASSERT_EQ(report->failures.size(), 1u);
  EXPECT_NE(report->failures[0].find("only 1 of 2 pairs"),
            std::string::npos);
}

TEST(SpeedupGateTest, MissingCounterpartIsAFailure) {
  const std::string orphan =
      "{\"name\":\"Columnar_A/batch/20\",\"wall_ms\":20.0,"
      "\"error\":false}\n";
  Result<BenchGateReport> report =
      CheckSpeedupJson(orphan, SpeedupGateOptions{});
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->ok());
  EXPECT_NE(report->failures[0].find("no /columnar/ counterpart"),
            std::string::npos);
}

TEST(SpeedupGateTest, NoEligiblePairsIsAnErrorNotAPass) {
  // A report with none of the gated modes (e.g. pointing the gate at the
  // wrong BENCH_*.json) must not silently succeed.
  const std::string unrelated =
      "{\"name\":\"Fig8/Q1/full/5\",\"wall_ms\":2.0,\"error\":false}\n";
  Result<BenchGateReport> report =
      CheckSpeedupJson(unrelated, SpeedupGateOptions{});
  EXPECT_FALSE(report.ok());
}

TEST(SpeedupGateTest, NoiseFlooredPairsDoNotCount) {
  // Both slow sides under the 0.5ms floor: nothing eligible, so the gate
  // errors rather than passing on noise.
  const std::string tiny =
      "{\"name\":\"Columnar_A/batch/1\",\"wall_ms\":0.1,\"error\":false}\n"
      "{\"name\":\"Columnar_A/columnar/1\",\"wall_ms\":0.01,"
      "\"error\":false}\n";
  Result<BenchGateReport> report =
      CheckSpeedupJson(tiny, SpeedupGateOptions{});
  EXPECT_FALSE(report.ok());
}

TEST(SpeedupGateTest, ErroredModeRunsFailTheGate) {
  const std::string errored =
      "{\"name\":\"Columnar_A/batch/20\",\"wall_ms\":20.0,"
      "\"error\":false}\n"
      "{\"name\":\"Columnar_A/columnar/20\",\"wall_ms\":0,"
      "\"error\":true}\n";
  Result<BenchGateReport> report =
      CheckSpeedupJson(errored, SpeedupGateOptions{});
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->ok());
  EXPECT_NE(report->failures[0].find("errored"), std::string::npos);
}

}  // namespace
}  // namespace orq
