// QueryStore tests: ring-buffer eviction order, newest-first Tail, JSON
// well-formedness of records and history envelopes, outcome mapping, and
// a concurrent-writer hammer that gives TSan something to chew on (the
// store is shared by every connection thread in the server).
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "obs/query_store.h"

namespace orq {
namespace {

QueryRecord MakeRecord(const std::string& id) {
  QueryRecord record;
  record.query_id = id;
  record.session_id = 1;
  record.sql = "SELECT 1";
  record.exec_mode = "batch";
  return record;
}

TEST(QueryStoreTest, FillsThenEvictsOldestFirst) {
  QueryStore store(4);
  for (int i = 1; i <= 6; ++i) {
    store.Record(MakeRecord("q" + std::to_string(i)));
  }
  EXPECT_EQ(store.size(), 4u);
  EXPECT_EQ(store.capacity(), 4u);
  EXPECT_EQ(store.total_recorded(), 6);
  // q1/q2 were overwritten; the tail is newest first.
  std::vector<QueryRecord> tail = store.Tail(10);
  ASSERT_EQ(tail.size(), 4u);
  EXPECT_EQ(tail[0].query_id, "q6");
  EXPECT_EQ(tail[1].query_id, "q5");
  EXPECT_EQ(tail[2].query_id, "q4");
  EXPECT_EQ(tail[3].query_id, "q3");
  // A smaller limit trims from the old end, not the new one.
  tail = store.Tail(2);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0].query_id, "q6");
  EXPECT_EQ(tail[1].query_id, "q5");
}

TEST(QueryStoreTest, TailOnPartiallyFilledRing) {
  QueryStore store(8);
  store.Record(MakeRecord("q1"));
  store.Record(MakeRecord("q2"));
  store.Record(MakeRecord("q3"));
  std::vector<QueryRecord> tail = store.Tail(8);
  ASSERT_EQ(tail.size(), 3u);
  EXPECT_EQ(tail[0].query_id, "q3");
  EXPECT_EQ(tail[1].query_id, "q2");
  EXPECT_EQ(tail[2].query_id, "q1");
  EXPECT_TRUE(store.Tail(0).empty());
}

TEST(QueryStoreTest, EightConcurrentWritersKeepTheRingConsistent) {
  // Ring smaller than the total write volume, so writers continuously
  // overwrite each other's slots — the interesting interleaving for TSan
  // (this test runs under ci.sh's TSan suite).
  QueryStore store(64);
  constexpr int kWriters = 8;
  constexpr int kPerWriter = 250;
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&store, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        QueryRecord record = MakeRecord(
            "s" + std::to_string(w) + "q" + std::to_string(i));
        // Concurrent readers while writing: Tail copies records out under
        // the lock, so holding the result is safe while writes continue.
        if (i % 50 == 0) {
          std::vector<QueryRecord> tail = store.Tail(8);
          for (const QueryRecord& r : tail) {
            ASSERT_FALSE(r.query_id.empty());
          }
        }
        store.Record(std::move(record));
      }
    });
  }
  for (std::thread& writer : writers) writer.join();
  EXPECT_EQ(store.size(), 64u);
  EXPECT_EQ(store.total_recorded(), kWriters * kPerWriter);
  std::vector<QueryRecord> tail = store.Tail(64);
  ASSERT_EQ(tail.size(), 64u);
  for (const QueryRecord& record : tail) {
    EXPECT_FALSE(record.query_id.empty());
    EXPECT_EQ(record.sql, "SELECT 1");
  }
}

TEST(QueryStoreTest, RecordAndHistoryJsonAreWellFormed) {
  QueryRecord record = MakeRecord("s1q1");
  record.sql = "SELECT \"quoted\"\nAND newline \\ backslash";
  record.fingerprint = FingerprintHex(record.sql);
  record.outcome = QueryOutcome::kError;
  record.error_message = "bind: no such column \"x\"";
  record.wall_micros = 1234;
  record.has_plan = true;
  record.plan.name = "HashJoin(inner)";
  record.plan.est_rows = 42.5;
  record.plan.stats.rows_out = 40;
  record.plan.stats.peak_cardinality = 99;
  PlanStatsNode child;
  child.name = "Scan(t)";
  child.stats.peak_cardinality = 7;
  record.plan.children.push_back(child);
  record.slow_explain = "== Query s1q1 ==\nphase lines\n";

  const std::string json = QueryRecordJson(record);
  std::string error;
  EXPECT_TRUE(ValidateJson(json, &error)) << error << "\n" << json;

  JsonValue doc;
  ASSERT_TRUE(ParseJson(json, &doc, &error)) << error;
  EXPECT_EQ(doc.StringOr("query_id", ""), "s1q1");
  EXPECT_EQ(doc.StringOr("outcome", ""), "error");
  EXPECT_EQ(doc.StringOr("sql", ""), record.sql);
  EXPECT_EQ(doc.NumberOr("wall_micros", 0), 1234);
  ASSERT_NE(doc.Find("plan"), nullptr);
  ASSERT_NE(doc.Find("profile"), nullptr);
  ASSERT_NE(doc.Find("slow_explain"), nullptr);

  QueryStore store(4);
  store.Record(record);
  store.Record(MakeRecord("s1q2"));
  const std::string history =
      QueryHistoryJson(store.Tail(8), store.total_recorded(),
                       store.capacity());
  EXPECT_TRUE(ValidateJson(history, &error)) << error << "\n" << history;
  ASSERT_TRUE(ParseJson(history, &doc, &error)) << error;
  EXPECT_EQ(doc.NumberOr("total_recorded", 0), 2);
  EXPECT_EQ(doc.NumberOr("capacity", 0), 4);
  EXPECT_EQ(doc.NumberOr("returned", 0), 2);
  const JsonValue* queries = doc.Find("queries");
  ASSERT_NE(queries, nullptr);
  ASSERT_EQ(queries->array.size(), 2u);
  EXPECT_EQ(queries->array[0].StringOr("query_id", ""), "s1q2");
  EXPECT_EQ(queries->array[1].StringOr("query_id", ""), "s1q1");
  // The ok record has no error/plan/slow_explain members at all.
  EXPECT_EQ(queries->array[0].Find("error"), nullptr);
  EXPECT_EQ(queries->array[0].Find("plan"), nullptr);
}

TEST(QueryStoreTest, OutcomeMappingAndPeakCardinality) {
  EXPECT_EQ(OutcomeForStatus(Status::OK()), QueryOutcome::kOk);
  EXPECT_EQ(OutcomeForStatus(Status::Cancelled("c")),
            QueryOutcome::kCancelled);
  EXPECT_EQ(OutcomeForStatus(Status::DeadlineExceeded("d")),
            QueryOutcome::kDeadline);
  EXPECT_EQ(OutcomeForStatus(Status::Unavailable("u")),
            QueryOutcome::kRejected);
  EXPECT_EQ(OutcomeForStatus(Status::RuntimeError("r")),
            QueryOutcome::kError);
  EXPECT_STREQ(QueryOutcomeName(QueryOutcome::kDeadline), "deadline");

  PlanStatsNode root;
  root.stats.peak_cardinality = 10;
  PlanStatsNode mid;
  mid.stats.peak_cardinality = 50;
  PlanStatsNode leaf;
  leaf.stats.peak_cardinality = 20;
  mid.children.push_back(leaf);
  root.children.push_back(mid);
  EXPECT_EQ(MaxPeakCardinality(root), 50);
}

TEST(QueryStoreTest, FingerprintIsStableFnv1a64) {
  // FNV-1a 64 of the empty string is the offset basis.
  EXPECT_EQ(FingerprintHex(""), "cbf29ce484222325");
  // Known vector: FNV-1a 64 of "a".
  EXPECT_EQ(FingerprintHex("a"), "af63dc4c8601ec8c");
  EXPECT_EQ(FingerprintHex("SELECT 1").size(), 16u);
  EXPECT_NE(FingerprintHex("SELECT 1"), FingerprintHex("SELECT 2"));
}

}  // namespace
}  // namespace orq
