file(REMOVE_RECURSE
  "CMakeFiles/bench_apply_removal.dir/bench_apply_removal.cc.o"
  "CMakeFiles/bench_apply_removal.dir/bench_apply_removal.cc.o.d"
  "bench_apply_removal"
  "bench_apply_removal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_apply_removal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
