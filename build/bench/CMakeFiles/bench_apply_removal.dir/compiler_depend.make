# Empty compiler generated dependencies file for bench_apply_removal.
# This may be replaced when dependencies are built.
