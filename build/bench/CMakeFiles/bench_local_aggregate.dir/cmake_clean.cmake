file(REMOVE_RECURSE
  "CMakeFiles/bench_local_aggregate.dir/bench_local_aggregate.cc.o"
  "CMakeFiles/bench_local_aggregate.dir/bench_local_aggregate.cc.o.d"
  "bench_local_aggregate"
  "bench_local_aggregate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_local_aggregate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
