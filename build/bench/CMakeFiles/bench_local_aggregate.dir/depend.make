# Empty dependencies file for bench_local_aggregate.
# This may be replaced when dependencies are built.
