# Empty dependencies file for bench_groupby_reorder.
# This may be replaced when dependencies are built.
