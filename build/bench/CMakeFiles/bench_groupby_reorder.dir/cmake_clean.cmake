file(REMOVE_RECURSE
  "CMakeFiles/bench_groupby_reorder.dir/bench_groupby_reorder.cc.o"
  "CMakeFiles/bench_groupby_reorder.dir/bench_groupby_reorder.cc.o.d"
  "bench_groupby_reorder"
  "bench_groupby_reorder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_groupby_reorder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
