file(REMOVE_RECURSE
  "CMakeFiles/bench_segment_apply.dir/bench_segment_apply.cc.o"
  "CMakeFiles/bench_segment_apply.dir/bench_segment_apply.cc.o.d"
  "bench_segment_apply"
  "bench_segment_apply.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_segment_apply.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
