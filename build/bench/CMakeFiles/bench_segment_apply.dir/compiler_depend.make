# Empty compiler generated dependencies file for bench_segment_apply.
# This may be replaced when dependencies are built.
