# Empty dependencies file for bench_fig9_q2.
# This may be replaced when dependencies are built.
