# Empty compiler generated dependencies file for bench_fig9_q17.
# This may be replaced when dependencies are built.
