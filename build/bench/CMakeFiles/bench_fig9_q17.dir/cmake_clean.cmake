file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_q17.dir/bench_fig9_q17.cc.o"
  "CMakeFiles/bench_fig9_q17.dir/bench_fig9_q17.cc.o.d"
  "bench_fig9_q17"
  "bench_fig9_q17.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_q17.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
