file(REMOVE_RECURSE
  "CMakeFiles/bench_oj_simplify.dir/bench_oj_simplify.cc.o"
  "CMakeFiles/bench_oj_simplify.dir/bench_oj_simplify.cc.o.d"
  "bench_oj_simplify"
  "bench_oj_simplify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_oj_simplify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
