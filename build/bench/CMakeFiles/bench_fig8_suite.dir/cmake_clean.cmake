file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_suite.dir/bench_fig8_suite.cc.o"
  "CMakeFiles/bench_fig8_suite.dir/bench_fig8_suite.cc.o.d"
  "bench_fig8_suite"
  "bench_fig8_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
