# Empty compiler generated dependencies file for orq.
# This may be replaced when dependencies are built.
