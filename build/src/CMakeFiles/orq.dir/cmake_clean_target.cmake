file(REMOVE_RECURSE
  "liborq.a"
)
