
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algebra/column.cc" "src/CMakeFiles/orq.dir/algebra/column.cc.o" "gcc" "src/CMakeFiles/orq.dir/algebra/column.cc.o.d"
  "/root/repo/src/algebra/expr_util.cc" "src/CMakeFiles/orq.dir/algebra/expr_util.cc.o" "gcc" "src/CMakeFiles/orq.dir/algebra/expr_util.cc.o.d"
  "/root/repo/src/algebra/iso.cc" "src/CMakeFiles/orq.dir/algebra/iso.cc.o" "gcc" "src/CMakeFiles/orq.dir/algebra/iso.cc.o.d"
  "/root/repo/src/algebra/printer.cc" "src/CMakeFiles/orq.dir/algebra/printer.cc.o" "gcc" "src/CMakeFiles/orq.dir/algebra/printer.cc.o.d"
  "/root/repo/src/algebra/props.cc" "src/CMakeFiles/orq.dir/algebra/props.cc.o" "gcc" "src/CMakeFiles/orq.dir/algebra/props.cc.o.d"
  "/root/repo/src/algebra/rel_expr.cc" "src/CMakeFiles/orq.dir/algebra/rel_expr.cc.o" "gcc" "src/CMakeFiles/orq.dir/algebra/rel_expr.cc.o.d"
  "/root/repo/src/algebra/scalar_expr.cc" "src/CMakeFiles/orq.dir/algebra/scalar_expr.cc.o" "gcc" "src/CMakeFiles/orq.dir/algebra/scalar_expr.cc.o.d"
  "/root/repo/src/catalog/catalog.cc" "src/CMakeFiles/orq.dir/catalog/catalog.cc.o" "gcc" "src/CMakeFiles/orq.dir/catalog/catalog.cc.o.d"
  "/root/repo/src/catalog/index.cc" "src/CMakeFiles/orq.dir/catalog/index.cc.o" "gcc" "src/CMakeFiles/orq.dir/catalog/index.cc.o.d"
  "/root/repo/src/catalog/stats.cc" "src/CMakeFiles/orq.dir/catalog/stats.cc.o" "gcc" "src/CMakeFiles/orq.dir/catalog/stats.cc.o.d"
  "/root/repo/src/catalog/table.cc" "src/CMakeFiles/orq.dir/catalog/table.cc.o" "gcc" "src/CMakeFiles/orq.dir/catalog/table.cc.o.d"
  "/root/repo/src/common/str_util.cc" "src/CMakeFiles/orq.dir/common/str_util.cc.o" "gcc" "src/CMakeFiles/orq.dir/common/str_util.cc.o.d"
  "/root/repo/src/common/value.cc" "src/CMakeFiles/orq.dir/common/value.cc.o" "gcc" "src/CMakeFiles/orq.dir/common/value.cc.o.d"
  "/root/repo/src/engine/engine.cc" "src/CMakeFiles/orq.dir/engine/engine.cc.o" "gcc" "src/CMakeFiles/orq.dir/engine/engine.cc.o.d"
  "/root/repo/src/exec/aggregate.cc" "src/CMakeFiles/orq.dir/exec/aggregate.cc.o" "gcc" "src/CMakeFiles/orq.dir/exec/aggregate.cc.o.d"
  "/root/repo/src/exec/evaluator.cc" "src/CMakeFiles/orq.dir/exec/evaluator.cc.o" "gcc" "src/CMakeFiles/orq.dir/exec/evaluator.cc.o.d"
  "/root/repo/src/exec/exec.cc" "src/CMakeFiles/orq.dir/exec/exec.cc.o" "gcc" "src/CMakeFiles/orq.dir/exec/exec.cc.o.d"
  "/root/repo/src/exec/joins.cc" "src/CMakeFiles/orq.dir/exec/joins.cc.o" "gcc" "src/CMakeFiles/orq.dir/exec/joins.cc.o.d"
  "/root/repo/src/exec/misc_ops.cc" "src/CMakeFiles/orq.dir/exec/misc_ops.cc.o" "gcc" "src/CMakeFiles/orq.dir/exec/misc_ops.cc.o.d"
  "/root/repo/src/exec/scan.cc" "src/CMakeFiles/orq.dir/exec/scan.cc.o" "gcc" "src/CMakeFiles/orq.dir/exec/scan.cc.o.d"
  "/root/repo/src/exec/segment_exec.cc" "src/CMakeFiles/orq.dir/exec/segment_exec.cc.o" "gcc" "src/CMakeFiles/orq.dir/exec/segment_exec.cc.o.d"
  "/root/repo/src/normalize/apply_removal.cc" "src/CMakeFiles/orq.dir/normalize/apply_removal.cc.o" "gcc" "src/CMakeFiles/orq.dir/normalize/apply_removal.cc.o.d"
  "/root/repo/src/normalize/fold.cc" "src/CMakeFiles/orq.dir/normalize/fold.cc.o" "gcc" "src/CMakeFiles/orq.dir/normalize/fold.cc.o.d"
  "/root/repo/src/normalize/normalizer.cc" "src/CMakeFiles/orq.dir/normalize/normalizer.cc.o" "gcc" "src/CMakeFiles/orq.dir/normalize/normalizer.cc.o.d"
  "/root/repo/src/normalize/oj_simplify.cc" "src/CMakeFiles/orq.dir/normalize/oj_simplify.cc.o" "gcc" "src/CMakeFiles/orq.dir/normalize/oj_simplify.cc.o.d"
  "/root/repo/src/normalize/pushdown.cc" "src/CMakeFiles/orq.dir/normalize/pushdown.cc.o" "gcc" "src/CMakeFiles/orq.dir/normalize/pushdown.cc.o.d"
  "/root/repo/src/normalize/subquery_class.cc" "src/CMakeFiles/orq.dir/normalize/subquery_class.cc.o" "gcc" "src/CMakeFiles/orq.dir/normalize/subquery_class.cc.o.d"
  "/root/repo/src/opt/cost.cc" "src/CMakeFiles/orq.dir/opt/cost.cc.o" "gcc" "src/CMakeFiles/orq.dir/opt/cost.cc.o.d"
  "/root/repo/src/opt/groupby_rules.cc" "src/CMakeFiles/orq.dir/opt/groupby_rules.cc.o" "gcc" "src/CMakeFiles/orq.dir/opt/groupby_rules.cc.o.d"
  "/root/repo/src/opt/optimizer.cc" "src/CMakeFiles/orq.dir/opt/optimizer.cc.o" "gcc" "src/CMakeFiles/orq.dir/opt/optimizer.cc.o.d"
  "/root/repo/src/opt/physical.cc" "src/CMakeFiles/orq.dir/opt/physical.cc.o" "gcc" "src/CMakeFiles/orq.dir/opt/physical.cc.o.d"
  "/root/repo/src/opt/rules.cc" "src/CMakeFiles/orq.dir/opt/rules.cc.o" "gcc" "src/CMakeFiles/orq.dir/opt/rules.cc.o.d"
  "/root/repo/src/opt/segment_rules.cc" "src/CMakeFiles/orq.dir/opt/segment_rules.cc.o" "gcc" "src/CMakeFiles/orq.dir/opt/segment_rules.cc.o.d"
  "/root/repo/src/sql/apply_intro.cc" "src/CMakeFiles/orq.dir/sql/apply_intro.cc.o" "gcc" "src/CMakeFiles/orq.dir/sql/apply_intro.cc.o.d"
  "/root/repo/src/sql/binder.cc" "src/CMakeFiles/orq.dir/sql/binder.cc.o" "gcc" "src/CMakeFiles/orq.dir/sql/binder.cc.o.d"
  "/root/repo/src/sql/lexer.cc" "src/CMakeFiles/orq.dir/sql/lexer.cc.o" "gcc" "src/CMakeFiles/orq.dir/sql/lexer.cc.o.d"
  "/root/repo/src/sql/parser.cc" "src/CMakeFiles/orq.dir/sql/parser.cc.o" "gcc" "src/CMakeFiles/orq.dir/sql/parser.cc.o.d"
  "/root/repo/src/tpch/tpch_gen.cc" "src/CMakeFiles/orq.dir/tpch/tpch_gen.cc.o" "gcc" "src/CMakeFiles/orq.dir/tpch/tpch_gen.cc.o.d"
  "/root/repo/src/tpch/tpch_queries.cc" "src/CMakeFiles/orq.dir/tpch/tpch_queries.cc.o" "gcc" "src/CMakeFiles/orq.dir/tpch/tpch_queries.cc.o.d"
  "/root/repo/src/tpch/tpch_schema.cc" "src/CMakeFiles/orq.dir/tpch/tpch_schema.cc.o" "gcc" "src/CMakeFiles/orq.dir/tpch/tpch_schema.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
