file(REMOVE_RECURSE
  "CMakeFiles/apply_intro_test.dir/apply_intro_test.cc.o"
  "CMakeFiles/apply_intro_test.dir/apply_intro_test.cc.o.d"
  "apply_intro_test"
  "apply_intro_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apply_intro_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
