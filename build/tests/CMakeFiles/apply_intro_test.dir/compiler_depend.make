# Empty compiler generated dependencies file for apply_intro_test.
# This may be replaced when dependencies are built.
