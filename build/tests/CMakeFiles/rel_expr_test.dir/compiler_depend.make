# Empty compiler generated dependencies file for rel_expr_test.
# This may be replaced when dependencies are built.
