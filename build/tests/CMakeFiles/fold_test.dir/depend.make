# Empty dependencies file for fold_test.
# This may be replaced when dependencies are built.
