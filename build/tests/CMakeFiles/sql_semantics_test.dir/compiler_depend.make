# Empty compiler generated dependencies file for sql_semantics_test.
# This may be replaced when dependencies are built.
