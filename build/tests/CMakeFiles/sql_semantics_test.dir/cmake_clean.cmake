file(REMOVE_RECURSE
  "CMakeFiles/sql_semantics_test.dir/sql_semantics_test.cc.o"
  "CMakeFiles/sql_semantics_test.dir/sql_semantics_test.cc.o.d"
  "sql_semantics_test"
  "sql_semantics_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sql_semantics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
