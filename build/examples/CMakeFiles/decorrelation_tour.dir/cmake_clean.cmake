file(REMOVE_RECURSE
  "CMakeFiles/decorrelation_tour.dir/decorrelation_tour.cpp.o"
  "CMakeFiles/decorrelation_tour.dir/decorrelation_tour.cpp.o.d"
  "decorrelation_tour"
  "decorrelation_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decorrelation_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
