# Empty dependencies file for decorrelation_tour.
# This may be replaced when dependencies are built.
