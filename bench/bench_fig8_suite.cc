// Figure 8 reproduction: the paper reprints all published 300 GB TPC-H
// results (vendor systems, QphH, price/performance). We cannot re-run
// 2000-era vendor systems; the preserved comparison is *query-processor
// technology*: the same TPC-H "power run" subset executed under four
// optimizer configurations of this engine, which play the role of the
// competing systems. Rows of the table: configuration x query, elapsed
// time. The paper's claim maps to: `full` dominates, and the margin on the
// subquery-heavy queries (Q2, Q17) is an order of magnitude or more.
//
// Benchmark argument: {milli-scale-factor}.
#include "bench/bench_util.h"
#include "tpch/tpch_queries.h"

namespace orq {
namespace bench {
namespace {

/// Queries whose naive correlated form re-executes a large *uncorrelated*
/// aggregation per outer row (no index can help); at bench scale they run
/// for hours under `correlated_only` — reported as DNF, exactly like
/// missing results in the paper's table.
bool CorrelatedFeasible(const std::string& id) {
  return id != "Q18" && id != "Q15";
}

void BM_TpchQuery(benchmark::State& state, const std::string& config_name,
                  const EngineOptions& options, const std::string& query_id) {
  Catalog* catalog = TpchAt(MilliSf(state.range(0)));
  if (config_name == "correlated_only" && !CorrelatedFeasible(query_id)) {
    state.SkipWithError("DNF: naive correlated re-aggregation (see notes)");
    return;
  }
  RunQueryBenchmark(state, catalog, options, GetTpchQuery(query_id).sql);
}

void RegisterAll() {
  for (const NamedConfig& config : Configurations()) {
    for (const TpchQuery& query : TpchQuerySet()) {
      std::string name =
          "Fig8/" + query.id + "/" + std::string(config.name);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [config, query](benchmark::State& state) {
            BM_TpchQuery(state, config.name, config.options, query.id);
          })
          ->Args({5})  // SF 0.005
          ->Unit(benchmark::kMillisecond);
    }
  }
}

struct Registrar {
  Registrar() { RegisterAll(); }
} registrar;

}  // namespace
}  // namespace bench
}  // namespace orq

ORQ_BENCH_MAIN();
