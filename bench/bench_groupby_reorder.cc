// Ablation: GroupBy reordering around joins (paper section 3.1). A
// dimension/fact join with aggregation:
//
//   select dk, sum(fv) from dim, fact where fd = dk and dv <= S group by dk
//
// With an unselective dimension filter, aggregating fact *before* the join
// (eager aggregation, GroupByPushBelowJoin) shrinks the join input by the
// fan-out factor; with a highly selective filter the join first prunes
// most fact rows and late aggregation wins. The cost-based optimizer
// should track the winner — exactly the argument of section 3.1.
//
// Benchmark arguments: {dim_rows, fanout, selectivity_percent}.
#include "bench/bench_util.h"

namespace orq {
namespace bench {
namespace {

Catalog* SyntheticDb(int64_t dim_rows, int64_t fanout) {
  static auto* cache =
      new std::map<std::pair<int64_t, int64_t>, std::unique_ptr<Catalog>>();
  auto key = std::make_pair(dim_rows, fanout);
  auto it = cache->find(key);
  if (it != cache->end()) return it->second.get();

  auto catalog = std::make_unique<Catalog>();
  Table* dim =
      *catalog->CreateTable("dim", {{"dk", DataType::kInt64, false},
                                    {"dv", DataType::kInt64, false}});
  dim->SetPrimaryKey({0});
  for (int64_t i = 1; i <= dim_rows; ++i) {
    // dv uniform in [0, 100): percent-based selectivity knob.
    (void)dim->Append({Value::Int64(i), Value::Int64((i * 37) % 100)});
  }
  Table* fact =
      *catalog->CreateTable("fact", {{"fk", DataType::kInt64, false},
                                     {"fd", DataType::kInt64, false},
                                     {"fv", DataType::kDouble, false}});
  fact->SetPrimaryKey({0});
  int64_t id = 0;
  for (int64_t d = 1; d <= dim_rows; ++d) {
    for (int64_t j = 0; j < fanout; ++j) {
      (void)fact->Append({Value::Int64(++id), Value::Int64(d),
                          Value::Double((id % 991) * 1.5)});
    }
  }
  dim->BuildIndex({0});
  fact->BuildIndex({1});
  catalog->InvalidateStats();
  // Warm statistics so the first timed iteration does not pay for them.
  for (const std::string& name : catalog->TableNames()) {
    catalog->GetStats(*catalog->FindTable(name));
  }
  Catalog* ptr = catalog.get();
  cache->emplace(key, std::move(catalog));
  return ptr;
}

std::string Query(int64_t selectivity_percent) {
  return "select dk, sum(fv) from dim, fact "
         "where fd = dk and dv < " +
         std::to_string(selectivity_percent) + " group by dk";
}

EngineOptions WithReorder(bool enabled) {
  EngineOptions options = EngineOptions::Full();
  options.optimizer.reorder_groupby = enabled;
  options.optimizer.reorder_groupby_outerjoin = enabled;
  options.optimizer.local_aggregates = enabled;
  options.optimizer.correlated_reintroduction = false;
  options.optimizer.segment_apply = false;
  return options;
}

void BM_ReorderEnabled(benchmark::State& state) {
  Catalog* catalog = SyntheticDb(state.range(0), state.range(1));
  RunQueryBenchmark(state, catalog, WithReorder(true),
                    Query(state.range(2)));
}

void BM_ReorderDisabled(benchmark::State& state) {
  Catalog* catalog = SyntheticDb(state.range(0), state.range(1));
  RunQueryBenchmark(state, catalog, WithReorder(false),
                    Query(state.range(2)));
}

void SweepArgs(benchmark::internal::Benchmark* b) {
  for (int64_t selectivity : {2, 10, 50, 100}) {
    b->Args({2000, 40, selectivity});
  }
  // Fan-out sweep at fixed selectivity.
  for (int64_t fanout : {5, 40, 160}) {
    b->Args({2000, fanout, 100});
  }
  b->Unit(benchmark::kMillisecond);
}

BENCHMARK(BM_ReorderEnabled)->Apply(SweepArgs);
BENCHMARK(BM_ReorderDisabled)->Apply(SweepArgs);

}  // namespace
}  // namespace bench
}  // namespace orq

ORQ_BENCH_MAIN();
