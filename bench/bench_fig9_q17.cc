// Figure 9 (right) reproduction: published TPC-H Q17 elapsed times across
// systems/processor counts. Our substitution (see DESIGN.md): Q17 elapsed
// time across optimizer configurations and scale factors. Q17 is the
// paper's SegmentApply showcase (sections 3.4, Figs. 6-7); the preserved
// shape is the order-of-magnitude gap between the full technique set and
// configurations lacking decorrelation or the GroupBy/SegmentApply
// primitives.
//
// Benchmark argument: {milli-scale-factor}.
#include "bench/bench_util.h"
#include "tpch/tpch_queries.h"

namespace orq {
namespace bench {
namespace {

void RegisterAll() {
  for (const NamedConfig& config : Configurations()) {
    std::string name = "Fig9_Q17/" + std::string(config.name);
    benchmark::RegisterBenchmark(
        name.c_str(),
        [config](benchmark::State& state) {
          Catalog* catalog = TpchAt(MilliSf(state.range(0)));
          RunQueryBenchmark(state, catalog, config.options,
                            GetTpchQuery("Q17").sql);
        })
        ->Arg(2)
        ->Arg(5)
        ->Arg(10)
        ->Arg(20)
        ->Unit(benchmark::kMillisecond);
  }
}

struct Registrar {
  Registrar() { RegisterAll(); }
} registrar;

}  // namespace
}  // namespace bench
}  // namespace orq

ORQ_BENCH_MAIN();
