// Columnar (SoA) execution vs the row-batch and one-row Volcano engines
// on scan/filter/aggregate/join-heavy workloads — the shapes where
// selection vectors and type-specialized kernels should pay: a Q1-style
// scan-filter-aggregate over lineitem, a pure hash group-by over orders,
// a customer-orders join feeding an aggregate, and the section-1.1
// OJ-then-agg subquery (decorrelated GroupBy over outerjoin). The
// columnar/batch ratio on these is the speedup scripts/ci.sh gates.
//
// Benchmark argument: {milli-scale-factor}.
#include "bench/bench_util.h"

namespace orq {
namespace bench {
namespace {

struct Workload {
  const char* name;
  const char* sql;
  /// Join workloads pin the set-oriented (hash join) plan by keeping
  /// cost-based correlated re-introduction out — otherwise the optimizer
  /// turns them into IndexApply and the comparison measures index seeks,
  /// not the execution mode under test.
  bool pin_set_oriented;
};

constexpr Workload kWorkloads[] = {
    {"FilterAgg",
     "select l_returnflag, count(*), sum(l_extendedprice * l_discount), "
     "avg(l_quantity) from lineitem where l_quantity < 30 and "
     "l_discount > 0.02 group by l_returnflag",
     false},
    {"GroupBy",
     "select o_custkey, sum(o_totalprice), count(*) from orders "
     "group by o_custkey",
     false},
    {"JoinAgg",
     "select c_custkey, sum(o_totalprice) from customer, orders "
     "where o_custkey = c_custkey group by c_custkey",
     true},
    {"OjAgg",
     "select c_custkey from customer "
     "where 10000 < (select sum(o_totalprice) from orders "
     "               where o_custkey = c_custkey)",
     true},
};

struct Mode {
  const char* name;
  bool batched;
  bool columnar;
};

constexpr Mode kModes[] = {
    {"row", false, false},
    {"batch", true, false},
    {"columnar", true, true},
};

void RegisterAll() {
  for (const Workload& workload : kWorkloads) {
    for (const Mode& mode : kModes) {
      std::string name =
          "Columnar_" + std::string(workload.name) + "/" + mode.name;
      EngineOptions options = EngineOptions::Full();
      options.exec.batched = mode.batched;
      options.exec.columnar = mode.columnar;
      if (workload.pin_set_oriented) {
        options.optimizer.correlated_reintroduction = false;
      }
      const char* sql = workload.sql;
      benchmark::RegisterBenchmark(
          name.c_str(),
          [options, sql](benchmark::State& state) {
            Catalog* catalog = TpchAt(MilliSf(state.range(0)));
            {
              // One untimed execution first: the columnar scan transposes
              // each table into column chunks lazily on first use, and a
              // cold one-iteration run would record that one-time build
              // instead of steady-state execution.
              QueryEngine warmup(catalog, options);
              (void)warmup.Execute(sql);
            }
            RunQueryBenchmark(state, catalog, options, sql);
          })
          ->Arg(5)
          ->Arg(20)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

struct Registrar {
  Registrar() { RegisterAll(); }
} registrar;

}  // namespace
}  // namespace bench
}  // namespace orq

ORQ_BENCH_MAIN();
