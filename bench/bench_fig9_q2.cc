// Figure 9 (left) reproduction: published TPC-H Q2 elapsed times across
// systems/processor counts. Our substitution (see DESIGN.md): Q2 elapsed
// time across *optimizer configurations* and scale factors on this engine.
// Preserved shape: the full technique set (decorrelation + GroupBy
// reordering + cost-based correlated re-introduction) is fastest by a wide
// margin, mirroring SQL Server's position in the published plot.
//
// Benchmark argument: {milli-scale-factor}.
#include "bench/bench_util.h"
#include "tpch/tpch_queries.h"

namespace orq {
namespace bench {
namespace {

void RegisterAll() {
  for (const NamedConfig& config : Configurations()) {
    std::string name = "Fig9_Q2/" + std::string(config.name);
    benchmark::RegisterBenchmark(
        name.c_str(),
        [config](benchmark::State& state) {
          Catalog* catalog = TpchAt(MilliSf(state.range(0)));
          RunQueryBenchmark(state, catalog, config.options,
                            GetTpchQuery("Q2").sql);
        })
        ->Arg(2)
        ->Arg(5)
        ->Arg(10)
        ->Arg(20)
        ->Unit(benchmark::kMillisecond);
  }
}

struct Registrar {
  Registrar() { RegisterAll(); }
} registrar;

}  // namespace
}  // namespace bench
}  // namespace orq

ORQ_BENCH_MAIN();
