// Ablation: segmented execution (paper section 3.4, Figs. 6-7). Runs the
// core of TPC-H Q17 in both of the paper's formulations:
//  * the correlated subquery form (Q17 proper), and
//  * the self-join form of section 3.4 ("the SQL representation of the
//    query after removing the correlation"),
// under the full optimizer vs. SegmentApply disabled. The join-pushdown
// effect (Fig. 7: part join inside the segment input) is what keeps the
// segmented plan from touching all of lineitem twice.
//
// Benchmark argument: {milli-scale-factor}.
#include "bench/bench_util.h"
#include "tpch/tpch_queries.h"

namespace orq {
namespace bench {
namespace {

// Section 3.4's explicit self-join formulation (no subquery).
constexpr const char* kSelfJoinForm =
    "select sum(l_extendedprice) / 7.0 as avg_yearly "
    "from lineitem, part, "
    "  (select l_partkey as l2_partkey, 0.2 * avg(l_quantity) as x "
    "   from lineitem group by l_partkey) as aggresult "
    "where p_partkey = l_partkey "
    "  and p_brand = 'Brand#23' and p_container = 'MED BOX' "
    "  and p_partkey = l2_partkey and l_quantity < x";

EngineOptions WithSegmentApply(bool enabled) {
  EngineOptions options = EngineOptions::Full();
  options.optimizer.segment_apply = enabled;
  return options;
}

void BM_Q17SubqueryForm_SA(benchmark::State& state) {
  Catalog* catalog = TpchAt(MilliSf(state.range(0)));
  RunQueryBenchmark(state, catalog, WithSegmentApply(true),
                    GetTpchQuery("Q17").sql);
}

void BM_Q17SubqueryForm_NoSA(benchmark::State& state) {
  Catalog* catalog = TpchAt(MilliSf(state.range(0)));
  RunQueryBenchmark(state, catalog, WithSegmentApply(false),
                    GetTpchQuery("Q17").sql);
}

void BM_Q17SelfJoinForm_SA(benchmark::State& state) {
  Catalog* catalog = TpchAt(MilliSf(state.range(0)));
  RunQueryBenchmark(state, catalog, WithSegmentApply(true), kSelfJoinForm);
}

void BM_Q17SelfJoinForm_NoSA(benchmark::State& state) {
  Catalog* catalog = TpchAt(MilliSf(state.range(0)));
  RunQueryBenchmark(state, catalog, WithSegmentApply(false), kSelfJoinForm);
}

void SweepArgs(benchmark::internal::Benchmark* b) {
  b->Arg(2)->Arg(5)->Arg(10)->Arg(20)->Unit(benchmark::kMillisecond);
}

BENCHMARK(BM_Q17SubqueryForm_SA)->Apply(SweepArgs);
BENCHMARK(BM_Q17SubqueryForm_NoSA)->Apply(SweepArgs);
BENCHMARK(BM_Q17SelfJoinForm_SA)->Apply(SweepArgs);
BENCHMARK(BM_Q17SelfJoinForm_NoSA)->Apply(SweepArgs);

}  // namespace
}  // namespace bench
}  // namespace orq

ORQ_BENCH_MAIN();
