# Smoke-checks the benchmark -> JSON pipelines: run one tiny benchmark with
# ORQ_STATS_JSON pointed at a scratch file and `--json` pointed at another,
# then validate every emitted line of both parses as JSON. Driven by the
# bench_smoke ctest:
#   cmake -DBENCH_BIN=<bin> -DJSON_CHECK=<bin> -DOUT=<file> -P bench_smoke.cmake
file(REMOVE "${OUT}")
file(REMOVE "${OUT}.bench")
execute_process(
  COMMAND ${CMAKE_COMMAND} -E env "ORQ_STATS_JSON=${OUT}"
          "${BENCH_BIN}"
          "--benchmark_filter=BM_FullOptimizer/10/10$"
          "--benchmark_min_time=0.001"
          "--json" "${OUT}.bench"
  RESULT_VARIABLE bench_result)
if(NOT bench_result EQUAL 0)
  message(FATAL_ERROR "benchmark run failed with ${bench_result}")
endif()
execute_process(COMMAND "${JSON_CHECK}" "${OUT}"
  RESULT_VARIABLE check_result)
if(NOT check_result EQUAL 0)
  message(FATAL_ERROR "stats JSON validation failed with ${check_result}")
endif()
execute_process(COMMAND "${JSON_CHECK}" "${OUT}.bench"
  RESULT_VARIABLE bench_check_result)
if(NOT bench_check_result EQUAL 0)
  message(FATAL_ERROR
          "--json bench report validation failed with ${bench_check_result}")
endif()
