// Encoded columnar storage vs plain columnar chunks on dict/RLE-friendly
// aggregate workloads — the shapes where encoding-aware kernels should
// pay: a Q1-style group-by over lineitem's two low-cardinality flag
// columns (dict codes feed grouping and the vectorized accumulators walk
// group-constant ranges), a dict-translated filter predicate, a brand
// roll-up over part, and a flag-filtered sum. Both modes run the columnar
// engine; only the chunk encoding differs, so the "/encoded/" vs
// "/plain/" ratio isolates the storage layer. That ratio is the speedup
// scripts/ci.sh gates at 1.2x on at least one workload.
//
// Benchmark argument: {milli-scale-factor}.
#include "bench/bench_util.h"

namespace orq {
namespace bench {
namespace {

struct Workload {
  const char* name;
  const char* sql;
};

constexpr Workload kWorkloads[] = {
    {"FlagGroupBy",
     "select l_returnflag, l_linestatus, count(*), sum(l_quantity), "
     "sum(l_extendedprice), max(l_discount) from lineitem "
     "group by l_returnflag, l_linestatus"},
    {"DictFilterCount",
     "select count(*), sum(l_extendedprice) from lineitem "
     "where l_returnflag = 'R'"},
    {"BrandRollup",
     "select p_brand, count(*), min(p_retailprice), max(p_retailprice) "
     "from part group by p_brand"},
    {"FlagFilteredSum",
     "select l_linestatus, sum(l_quantity), count(l_discount) "
     "from lineitem where l_returnflag <> 'A' group by l_linestatus"},
};

struct Mode {
  const char* name;
  TableEncoding encoding;
};

constexpr Mode kModes[] = {
    {"plain", TableEncoding::kPlain},
    {"encoded", TableEncoding::kAuto},
};

void RegisterAll() {
  for (const Workload& workload : kWorkloads) {
    for (const Mode& mode : kModes) {
      std::string name =
          "Encoding_" + std::string(workload.name) + "/" + mode.name;
      EngineOptions options = EngineOptions::Full();
      options.exec.batched = true;
      options.exec.columnar = true;
      options.exec.table_encoding = mode.encoding;
      const char* sql = workload.sql;
      benchmark::RegisterBenchmark(
          name.c_str(),
          [options, sql](benchmark::State& state) {
            Catalog* catalog = TpchAt(MilliSf(state.range(0)));
            {
              // One untimed execution first: chunks (plain or encoded) are
              // built lazily on first scan, and a cold one-iteration run
              // would record that one-time transpose+encode instead of
              // steady-state execution.
              QueryEngine warmup(catalog, options);
              (void)warmup.Execute(sql);
            }
            RunQueryBenchmark(state, catalog, options, sql);
          })
          ->Arg(5)
          ->Arg(20)
          ->Arg(100)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

struct Registrar {
  Registrar() { RegisterAll(); }
} registrar;

}  // namespace
}  // namespace bench
}  // namespace orq

ORQ_BENCH_MAIN();
