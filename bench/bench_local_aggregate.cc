// Ablation: local/global aggregate split (paper section 3.3). Grouping by
// a non-key dimension attribute:
//
//   select dv, sum(fv) from dim, fact where fd = dk group by dv
//
// blocks the full GroupBy pushdown (condition 2 needs a key of dim among
// the grouping columns), so LocalGroupBy is the only way to aggregate
// early: LG[fd](fact) collapses the fan-out before the join, the global
// GroupBy combines partials after. The win scales with the fan-out.
//
// Benchmark arguments: {dim_rows, fanout}.
#include "bench/bench_util.h"

namespace orq {
namespace bench {
namespace {

Catalog* SyntheticDb(int64_t dim_rows, int64_t fanout) {
  static auto* cache =
      new std::map<std::pair<int64_t, int64_t>, std::unique_ptr<Catalog>>();
  auto key = std::make_pair(dim_rows, fanout);
  auto it = cache->find(key);
  if (it != cache->end()) return it->second.get();

  auto catalog = std::make_unique<Catalog>();
  Table* dim =
      *catalog->CreateTable("dim", {{"dk", DataType::kInt64, false},
                                    {"dv", DataType::kInt64, false}});
  dim->SetPrimaryKey({0});
  for (int64_t i = 1; i <= dim_rows; ++i) {
    (void)dim->Append({Value::Int64(i), Value::Int64(i % 20)});
  }
  Table* fact =
      *catalog->CreateTable("fact", {{"fk", DataType::kInt64, false},
                                     {"fd", DataType::kInt64, false},
                                     {"fv", DataType::kDouble, false}});
  fact->SetPrimaryKey({0});
  int64_t id = 0;
  for (int64_t d = 1; d <= dim_rows; ++d) {
    for (int64_t j = 0; j < fanout; ++j) {
      (void)fact->Append({Value::Int64(++id), Value::Int64(d),
                          Value::Double((id % 991) * 1.5)});
    }
  }
  catalog->InvalidateStats();
  // Warm statistics so the first timed iteration does not pay for them.
  for (const std::string& name : catalog->TableNames()) {
    catalog->GetStats(*catalog->FindTable(name));
  }
  Catalog* ptr = catalog.get();
  cache->emplace(key, std::move(catalog));
  return ptr;
}

constexpr const char* kQuery =
    "select dv, sum(fv) from dim, fact where fd = dk group by dv";

EngineOptions WithLocalAggregates(bool enabled) {
  EngineOptions options = EngineOptions::Full();
  options.optimizer.local_aggregates = enabled;
  options.optimizer.correlated_reintroduction = false;
  options.optimizer.segment_apply = false;
  return options;
}

void BM_LocalAggregateEnabled(benchmark::State& state) {
  Catalog* catalog = SyntheticDb(state.range(0), state.range(1));
  RunQueryBenchmark(state, catalog, WithLocalAggregates(true), kQuery);
}

void BM_LocalAggregateDisabled(benchmark::State& state) {
  Catalog* catalog = SyntheticDb(state.range(0), state.range(1));
  RunQueryBenchmark(state, catalog, WithLocalAggregates(false), kQuery);
}

void SweepArgs(benchmark::internal::Benchmark* b) {
  for (int64_t fanout : {2, 10, 50, 200}) b->Args({2000, fanout});
  b->Unit(benchmark::kMillisecond);
}

BENCHMARK(BM_LocalAggregateEnabled)->Apply(SweepArgs);
BENCHMARK(BM_LocalAggregateDisabled)->Apply(SweepArgs);

}  // namespace
}  // namespace bench
}  // namespace orq

ORQ_BENCH_MAIN();
