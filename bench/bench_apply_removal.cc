// Ablation: correlation removal (paper sections 2.2-2.3). Measures the
// section-1.1 query as the outer cardinality grows, comparing
//   * decorrelated set-oriented execution (normalization on),
//   * correlated execution with index support,
//   * correlated execution without indexes (the naive strategy whose cost
//     grows with |outer| x |inner|).
// The decorrelated plan's flat profile vs the correlated plans' growth is
// the "query flattening" payoff; the indexed correlated plan's win at very
// small outers is why re-introduction stays in the rule set.
//
// Benchmark arguments: {milli-scale-factor, outer_limit (0 = all)}.
#include "bench/bench_util.h"

namespace orq {
namespace bench {
namespace {

std::string Query(int64_t outer_limit) {
  std::string where_outer =
      outer_limit > 0
          ? "c_custkey <= " + std::to_string(outer_limit) + " and "
          : "";
  return "select c_custkey from customer where " + where_outer +
         "10000 < (select sum(o_totalprice) from orders "
         "where o_custkey = c_custkey)";
}

void BM_Decorrelated(benchmark::State& state) {
  Catalog* catalog = TpchAt(MilliSf(state.range(0)));
  EngineOptions options = EngineOptions::Full();
  options.optimizer.correlated_reintroduction = false;  // stay set-oriented
  RunQueryBenchmark(state, catalog, options, Query(state.range(1)));
}

void BM_CorrelatedWithIndex(benchmark::State& state) {
  Catalog* catalog = TpchAt(MilliSf(state.range(0)));
  RunQueryBenchmark(state, catalog, EngineOptions::CorrelatedOnly(),
                    Query(state.range(1)));
}

void BM_CorrelatedNoIndex(benchmark::State& state) {
  Catalog* catalog = TpchAt(MilliSf(state.range(0)));
  EngineOptions options = EngineOptions::CorrelatedOnly();
  options.physical.use_index_seek = false;
  RunQueryBenchmark(state, catalog, options, Query(state.range(1)));
}

void SweepArgs(benchmark::internal::Benchmark* b) {
  for (int64_t outer : {10, 50, 250, 1000, 0}) b->Args({10, outer});
  b->Unit(benchmark::kMillisecond);
}

BENCHMARK(BM_Decorrelated)->Apply(SweepArgs);
BENCHMARK(BM_CorrelatedWithIndex)->Apply(SweepArgs);
BENCHMARK(BM_CorrelatedNoIndex)
    ->Args({10, 10})
    ->Args({10, 50})
    ->Args({10, 250})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace orq

ORQ_BENCH_MAIN();
