// Ablation: outerjoin simplification ([7], extended through GroupBy in
// section 1.2). Two workloads:
//  * a user-written LEFT OUTER JOIN under a null-rejecting filter — the
//    direct simplification;
//  * the section-1.1 subquery, where decorrelation produces
//    GroupBy-over-outerjoin and the HAVING-style comparison rejects NULL
//    aggregates *through* the GroupBy, unlocking the inner-join form and
//    with it commutativity and GroupBy pushdown.
//
// Benchmark argument: {milli-scale-factor}.
#include "bench/bench_util.h"

namespace orq {
namespace bench {
namespace {

constexpr const char* kDirectLoj =
    "select c_custkey, o_totalprice "
    "from customer left outer join orders on o_custkey = c_custkey "
    "where o_totalprice > 40000";

constexpr const char* kSubqueryForm =
    "select c_custkey from customer "
    "where 10000 < (select sum(o_totalprice) from orders "
    "               where o_custkey = c_custkey)";

EngineOptions WithSimplification(bool enabled) {
  EngineOptions options = EngineOptions::Full();
  options.normalizer.simplify_outerjoins = enabled;
  // Keep re-introduction out so the set-oriented plans are compared.
  options.optimizer.correlated_reintroduction = false;
  return options;
}

void BM_DirectLoj_Simplified(benchmark::State& state) {
  RunQueryBenchmark(state, TpchAt(MilliSf(state.range(0))),
                    WithSimplification(true), kDirectLoj);
}
void BM_DirectLoj_Kept(benchmark::State& state) {
  RunQueryBenchmark(state, TpchAt(MilliSf(state.range(0))),
                    WithSimplification(false), kDirectLoj);
}
void BM_DecorrelatedAgg_Simplified(benchmark::State& state) {
  RunQueryBenchmark(state, TpchAt(MilliSf(state.range(0))),
                    WithSimplification(true), kSubqueryForm);
}
void BM_DecorrelatedAgg_Kept(benchmark::State& state) {
  RunQueryBenchmark(state, TpchAt(MilliSf(state.range(0))),
                    WithSimplification(false), kSubqueryForm);
}

void SweepArgs(benchmark::internal::Benchmark* b) {
  b->Arg(5)->Arg(10)->Arg(20)->Unit(benchmark::kMillisecond);
}

BENCHMARK(BM_DirectLoj_Simplified)->Apply(SweepArgs);
BENCHMARK(BM_DirectLoj_Kept)->Apply(SweepArgs);
BENCHMARK(BM_DecorrelatedAgg_Simplified)->Apply(SweepArgs);
BENCHMARK(BM_DecorrelatedAgg_Kept)->Apply(SweepArgs);

}  // namespace
}  // namespace bench
}  // namespace orq

ORQ_BENCH_MAIN();
