#ifndef ORQ_BENCH_BENCH_UTIL_H_
#define ORQ_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>

#include "engine/engine.h"
#include "tpch/tpch_gen.h"

namespace orq {
namespace bench {

/// Scale factors are passed through google-benchmark's integer Args as
/// "milli scale factor": 5 -> SF 0.005.
inline double MilliSf(int64_t arg) { return arg / 1000.0; }

/// Shared TPC-H catalogs, generated once per scale factor.
inline Catalog* TpchAt(double scale_factor) {
  static auto* catalogs = new std::map<double, std::unique_ptr<Catalog>>();
  auto it = catalogs->find(scale_factor);
  if (it == catalogs->end()) {
    auto catalog = std::make_unique<Catalog>();
    TpchGenOptions options;
    options.scale_factor = scale_factor;
    Status status = GenerateTpch(catalog.get(), options);
    if (!status.ok()) {
      std::fprintf(stderr, "TPC-H generation failed: %s\n",
                   status.ToString().c_str());
      std::abort();
    }
    // Warm the statistics cache so the first timed iteration does not pay
    // the one-time stats computation.
    for (const std::string& name : catalog->TableNames()) {
      catalog->GetStats(*catalog->FindTable(name));
    }
    it = catalogs->emplace(scale_factor, std::move(catalog)).first;
  }
  return it->second.get();
}

/// When ORQ_STATS_JSON names a file, re-runs `sql` once with full
/// instrumentation and appends the per-operator stats + rule trace as one
/// JSON line (schema in DESIGN.md). Outside the timing loop, so the
/// stats-collection overhead never contaminates reported numbers.
inline void MaybeDumpStatsJson(QueryEngine* engine, const std::string& sql,
                               const std::string& label) {
  const char* path = std::getenv("ORQ_STATS_JSON");
  if (path == nullptr || path[0] == '\0') return;
  Result<AnalyzedQuery> analyzed = engine->ExecuteAnalyzed(sql);
  if (!analyzed.ok()) {
    std::fprintf(stderr, "ORQ_STATS_JSON: analyze failed: %s\n",
                 analyzed.status().ToString().c_str());
    return;
  }
  std::FILE* file = std::fopen(path, "a");
  if (file == nullptr) {
    std::fprintf(stderr, "ORQ_STATS_JSON: cannot open %s\n", path);
    return;
  }
  std::fprintf(file, "%s\n", analyzed->ToJson(label).c_str());
  std::fclose(file);
}

/// Runs one query per benchmark iteration; reports result rows and the
/// engine's rows_produced work metric as counters.
inline void RunQueryBenchmark(benchmark::State& state, Catalog* catalog,
                              const EngineOptions& options,
                              const std::string& sql,
                              const std::string& label = std::string()) {
  QueryEngine engine(catalog, options);
  // Compile once outside the timing loop? No — the paper measures elapsed
  // query time, which includes optimization; ours is dominated by
  // execution anyway.
  int64_t result_rows = 0;
  int64_t produced = 0;
  for (auto _ : state) {
    Result<QueryResult> result = engine.Execute(sql);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    result_rows = static_cast<int64_t>(result->rows.size());
    produced = result->rows_produced;
    benchmark::DoNotOptimize(result->rows.data());
  }
  state.counters["result_rows"] = static_cast<double>(result_rows);
  state.counters["rows_produced"] = static_cast<double>(produced);
  MaybeDumpStatsJson(&engine, sql, label);
}

/// The named engine configurations compared across the evaluation —
/// the "systems" of our Figure 8/9 reproduction.
struct NamedConfig {
  const char* name;
  EngineOptions options;
};

inline const std::vector<NamedConfig>& Configurations() {
  static const auto* configs = new std::vector<NamedConfig>{
      {"full", EngineOptions::Full()},
      {"no_groupby_opts", EngineOptions::NoGroupByOptimizations()},
      {"no_segment_apply", EngineOptions::NoSegmentApply()},
      {"correlated_only", EngineOptions::CorrelatedOnly()},
  };
  return *configs;
}

}  // namespace bench
}  // namespace orq

#endif  // ORQ_BENCH_BENCH_UTIL_H_
