#ifndef ORQ_BENCH_BENCH_UTIL_H_
#define ORQ_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "obs/json.h"
#include "obs/report.h"
#include "tpch/tpch_gen.h"

namespace orq {
namespace bench {

/// Destination of the machine-readable benchmark report, set by the
/// `--json <path>` flag that ORQ_BENCH_MAIN strips before handing argv to
/// google-benchmark. Empty when no report was requested.
inline std::string& BenchJsonPath() {
  static auto* path = new std::string();
  return *path;
}

/// Worker-thread count applied to every benchmarked engine, set by the
/// `--threads N` flag that ORQ_BENCH_MAIN strips before handing argv to
/// google-benchmark. 0 (the default) leaves each configuration's serial
/// engine untouched; a positive count turns every run morsel-parallel —
/// how BENCH_parallel.json baselines are produced.
inline int& BenchThreads() {
  static int threads = 0;
  return threads;
}

/// Per-iteration query deadline in milliseconds, set by the
/// `--timeout-ms N` flag that ORQ_BENCH_MAIN strips before handing argv to
/// google-benchmark. 0 (the default) runs unbounded; a positive value arms
/// a CancelToken per Execute, so a pathological configuration aborts the
/// run with a DeadlineExceeded skip instead of hanging the suite.
inline int64_t& BenchTimeoutMs() {
  static int64_t timeout_ms = 0;
  return timeout_ms;
}

/// Scale factors are passed through google-benchmark's integer Args as
/// "milli scale factor": 5 -> SF 0.005.
inline double MilliSf(int64_t arg) { return arg / 1000.0; }

/// Per-operator plan JSON captured during `--json` runs, keyed by the
/// "plan#N" label each benchmark sets. google-benchmark's Run carries the
/// label but no arbitrary payload, so the JSON rides in this registry and
/// WriteBenchJson joins them back up by index.
inline std::vector<std::string>& PlanJsonRegistry() {
  static auto* plans = new std::vector<std::string>();
  return *plans;
}

/// Shared TPC-H catalogs, generated once per scale factor.
inline Catalog* TpchAt(double scale_factor) {
  static auto* catalogs = new std::map<double, std::unique_ptr<Catalog>>();
  auto it = catalogs->find(scale_factor);
  if (it == catalogs->end()) {
    auto catalog = std::make_unique<Catalog>();
    TpchGenOptions options;
    options.scale_factor = scale_factor;
    Status status = GenerateTpch(catalog.get(), options);
    if (!status.ok()) {
      std::fprintf(stderr, "TPC-H generation failed: %s\n",
                   status.ToString().c_str());
      std::abort();
    }
    // Warm the statistics cache so the first timed iteration does not pay
    // the one-time stats computation.
    for (const std::string& name : catalog->TableNames()) {
      catalog->GetStats(*catalog->FindTable(name));
    }
    it = catalogs->emplace(scale_factor, std::move(catalog)).first;
  }
  return it->second.get();
}

/// When ORQ_STATS_JSON names a file, re-runs `sql` once with full
/// instrumentation and appends the per-operator stats + rule trace as one
/// JSON line (schema in DESIGN.md). Outside the timing loop, so the
/// stats-collection overhead never contaminates reported numbers.
inline void MaybeDumpStatsJson(QueryEngine* engine, const std::string& sql,
                               const std::string& label) {
  const char* path = std::getenv("ORQ_STATS_JSON");
  if (path == nullptr || path[0] == '\0') return;
  Result<AnalyzedQuery> analyzed = engine->ExecuteAnalyzed(sql);
  if (!analyzed.ok()) {
    std::fprintf(stderr, "ORQ_STATS_JSON: analyze failed: %s\n",
                 analyzed.status().ToString().c_str());
    return;
  }
  std::FILE* file = std::fopen(path, "a");
  if (file == nullptr) {
    std::fprintf(stderr, "ORQ_STATS_JSON: cannot open %s\n", path);
    return;
  }
  std::fprintf(file, "%s\n", analyzed->ToJson(label).c_str());
  std::fclose(file);
}

/// Largest hash-table/buffer cardinality any operator in the plan held.
inline int64_t MaxPeakCardinality(const PlanStatsNode& node) {
  int64_t peak = node.stats.peak_cardinality;
  for (const PlanStatsNode& child : node.children) {
    int64_t p = MaxPeakCardinality(child);
    if (p > peak) peak = p;
  }
  return peak;
}

/// Runs one query per benchmark iteration; reports result rows and the
/// engine's rows_produced work metric as counters. When a `--json` report
/// was requested, also re-runs the query once instrumented (outside the
/// timing loop) to report peak cardinality.
inline void RunQueryBenchmark(benchmark::State& state, Catalog* catalog,
                              const EngineOptions& options,
                              const std::string& sql,
                              const std::string& label = std::string()) {
  EngineOptions effective = options;
  if (BenchThreads() > 0) effective.exec.num_threads = BenchThreads();
  QueryEngine engine(catalog, effective);
  // Compile once outside the timing loop? No — the paper measures elapsed
  // query time, which includes optimization; ours is dominated by
  // execution anyway.
  int64_t result_rows = 0;
  int64_t produced = 0;
  for (auto _ : state) {
    CancelToken token;
    ExecControl control;
    if (BenchTimeoutMs() > 0) {
      token.SetTimeoutMs(BenchTimeoutMs());
      control.cancel = &token;
    }
    Result<QueryResult> result = engine.Execute(sql, control);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    result_rows = static_cast<int64_t>(result->rows.size());
    produced = result->rows_produced;
    benchmark::DoNotOptimize(result->rows.data());
  }
  state.counters["result_rows"] = static_cast<double>(result_rows);
  state.counters["rows_produced"] = static_cast<double>(produced);
  if (!BenchJsonPath().empty()) {
    Result<AnalyzedQuery> analyzed = engine.ExecuteAnalyzed(sql);
    if (analyzed.ok()) {
      state.counters["peak_cardinality"] =
          static_cast<double>(MaxPeakCardinality(analyzed->plan));
      state.SetLabel("plan#" + std::to_string(PlanJsonRegistry().size()));
      PlanJsonRegistry().push_back(PlanStatsToJson(analyzed->plan));
    }
  }
  MaybeDumpStatsJson(&engine, sql, label);
}

/// The named engine configurations compared across the evaluation —
/// the "systems" of our Figure 8/9 reproduction.
struct NamedConfig {
  const char* name;
  EngineOptions options;
};

inline const std::vector<NamedConfig>& Configurations() {
  static const auto* configs = new std::vector<NamedConfig>{
      {"full", EngineOptions::Full()},
      {"no_groupby_opts", EngineOptions::NoGroupByOptimizations()},
      {"no_segment_apply", EngineOptions::NoSegmentApply()},
      {"correlated_only", EngineOptions::CorrelatedOnly()},
  };
  return *configs;
}

/// Console reporter that additionally collects every finished run so
/// ORQ_BENCH_MAIN can serialize them after the suite completes.
class JsonLinesReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    runs_.insert(runs_.end(), reports.begin(), reports.end());
    benchmark::ConsoleReporter::ReportRuns(reports);
  }
  const std::vector<Run>& runs() const { return runs_; }

 private:
  std::vector<Run> runs_;
};

/// Writes one JSON object per run (JSON-lines, the BENCH_*.json baseline
/// format): name, iterations, per-iteration wall_ms, every user counter
/// (result_rows, rows_produced, peak_cardinality), and an error flag.
inline bool WriteBenchJson(
    const std::string& path,
    const std::vector<benchmark::BenchmarkReporter::Run>& runs) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "--json: cannot open %s\n", path.c_str());
    return false;
  }
  for (const benchmark::BenchmarkReporter::Run& run : runs) {
    std::string line = "{\"name\":";
    AppendJsonString(run.benchmark_name(), &line);
    char buf[64];
    std::snprintf(buf, sizeof buf, ",\"iterations\":%lld",
                  static_cast<long long>(run.iterations));
    line += buf;
    const double wall_ms =
        run.iterations > 0
            ? run.real_accumulated_time * 1e3 /
                  static_cast<double>(run.iterations)
            : run.real_accumulated_time * 1e3;
    std::snprintf(buf, sizeof buf, ",\"wall_ms\":%.6g", wall_ms);
    line += buf;
    // Thread count the suite ran under, so a parallel report is never
    // mistaken for (or gated against) a serial baseline by accident.
    std::snprintf(buf, sizeof buf, ",\"threads\":%d", BenchThreads());
    line += buf;
    for (const auto& [counter_name, counter] : run.counters) {
      line += ',';
      AppendJsonString(counter_name, &line);
      std::snprintf(buf, sizeof buf, ":%.17g", counter.value);
      line += buf;
    }
    // Rejoin the per-operator plan JSON captured under this run's
    // "plan#N" label (see PlanJsonRegistry).
    if (run.report_label.rfind("plan#", 0) == 0) {
      const size_t index = static_cast<size_t>(
          std::strtoul(run.report_label.c_str() + 5, nullptr, 10));
      if (index < PlanJsonRegistry().size()) {
        line += ",\"plan\":";
        line += PlanJsonRegistry()[index];
      }
    }
    line += run.error_occurred ? ",\"error\":true}" : ",\"error\":false}";
    std::fprintf(file, "%s\n", line.c_str());
  }
  std::fclose(file);
  return true;
}

}  // namespace bench
}  // namespace orq

/// Drop-in replacement for BENCHMARK_MAIN() that understands
/// `--json <path>`, `--threads N` and `--timeout-ms N`: runs the suite
/// normally (console output preserved) and then writes the
/// machine-readable JSON-lines report; a positive thread count makes every
/// benchmarked engine morsel-parallel; a positive timeout arms a per-query
/// deadline so a pathological plan aborts its benchmark instead of
/// hanging the suite.
#define ORQ_BENCH_MAIN()                                                    \
  int main(int argc, char** argv) {                                         \
    std::string json_path;                                                  \
    int bench_threads = 0;                                                  \
    long long bench_timeout_ms = 0;                                         \
    int kept = 1;                                                           \
    for (int i = 1; i < argc; ++i) {                                        \
      if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {            \
        json_path = argv[++i];                                              \
      } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {  \
        bench_threads = std::atoi(argv[++i]);                               \
        if (bench_threads < 1) {                                            \
          std::fprintf(stderr, "--threads expects a positive count\n");     \
          return 1;                                                         \
        }                                                                   \
      } else if (std::strcmp(argv[i], "--timeout-ms") == 0 &&               \
                 i + 1 < argc) {                                            \
        bench_timeout_ms = std::atoll(argv[++i]);                           \
        if (bench_timeout_ms < 1) {                                         \
          std::fprintf(stderr, "--timeout-ms expects a positive value\n");  \
          return 1;                                                         \
        }                                                                   \
      } else {                                                              \
        argv[kept++] = argv[i];                                             \
      }                                                                     \
    }                                                                       \
    argc = kept;                                                            \
    ::orq::bench::BenchJsonPath() = json_path;                              \
    ::orq::bench::BenchThreads() = bench_threads;                           \
    ::orq::bench::BenchTimeoutMs() = bench_timeout_ms;                      \
    ::benchmark::Initialize(&argc, argv);                                   \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;     \
    ::orq::bench::JsonLinesReporter reporter;                               \
    ::benchmark::RunSpecifiedBenchmarks(&reporter);                         \
    bool json_ok = json_path.empty() ||                                     \
                   ::orq::bench::WriteBenchJson(json_path, reporter.runs());\
    ::benchmark::Shutdown();                                                \
    return json_ok ? 0 : 1;                                                 \
  }                                                                         \
  static_assert(true, "require trailing semicolon")

#endif  // ORQ_BENCH_BENCH_UTIL_H_
