// Figure 1 reproduction: the paper's diagram connects subquery execution
// strategies through primitive optimizations. This harness *executes* each
// strategy box on the section-1.1 query ("customers who have ordered more
// than $X") and sweeps the outer-table size, demonstrating the crossover
// the paper argues for: correlated execution with an index wins for small
// outers, set-oriented plans win at scale, and the cost-based optimizer
// ("full") tracks the winner.
//
// Benchmark arguments: {milli-scale-factor, outer_limit}
//   outer_limit = number of customers admitted by a key-range filter
//   (0 means all).
#include "bench/bench_util.h"

namespace orq {
namespace bench {
namespace {

std::string SubqueryForm(int64_t outer_limit) {
  std::string where_outer =
      outer_limit > 0
          ? "c_custkey <= " + std::to_string(outer_limit) + " and "
          : "";
  return "select c_custkey from customer where " + where_outer +
         "10000 < (select sum(o_totalprice) from orders "
         "where o_custkey = c_custkey)";
}

std::string OuterjoinForm(int64_t outer_limit) {
  std::string where_outer =
      outer_limit > 0
          ? " where c_custkey <= " + std::to_string(outer_limit)
          : "";
  return "select c_custkey from customer left outer join orders "
         "on o_custkey = c_custkey" +
         where_outer +
         " group by c_custkey having 10000 < sum(o_totalprice)";
}

std::string AggThenJoinForm(int64_t outer_limit) {
  std::string where_outer =
      outer_limit > 0
          ? " and c_custkey <= " + std::to_string(outer_limit)
          : "";
  return "select c_custkey from customer, "
         "(select o_custkey from orders group by o_custkey "
         " having 10000 < sum(o_totalprice)) as aggresult "
         "where o_custkey = c_custkey" +
         where_outer;
}

/// "Correlated execution" box: no normalization, per-row subquery with
/// index lookup (the strategy closest to the SQL formulation).
void BM_CorrelatedIndexed(benchmark::State& state) {
  Catalog* catalog = TpchAt(MilliSf(state.range(0)));
  RunQueryBenchmark(state, catalog, EngineOptions::CorrelatedOnly(),
                    SubqueryForm(state.range(1)), "fig1/correlated_indexed");
}

/// Correlated execution without index support (pure tuple-at-a-time).
void BM_CorrelatedScan(benchmark::State& state) {
  Catalog* catalog = TpchAt(MilliSf(state.range(0)));
  EngineOptions options = EngineOptions::CorrelatedOnly();
  options.physical.use_index_seek = false;
  RunQueryBenchmark(state, catalog, options, SubqueryForm(state.range(1)),
                    "fig1/correlated_scan");
}

/// Dayal's strategy: outerjoin, then aggregate (written directly; GroupBy
/// reordering and correlated re-introduction disabled so the plan stays
/// put).
void BM_OuterjoinThenAggregate(benchmark::State& state) {
  Catalog* catalog = TpchAt(MilliSf(state.range(0)));
  EngineOptions options = EngineOptions::NoGroupByOptimizations();
  options.optimizer.correlated_reintroduction = false;
  RunQueryBenchmark(state, catalog, options, OuterjoinForm(state.range(1)),
                    "fig1/outerjoin_then_aggregate");
}

/// Kim's strategy: aggregate orders first, then join.
void BM_AggregateThenJoin(benchmark::State& state) {
  Catalog* catalog = TpchAt(MilliSf(state.range(0)));
  EngineOptions options = EngineOptions::NoGroupByOptimizations();
  options.optimizer.correlated_reintroduction = false;
  RunQueryBenchmark(state, catalog, options, AggThenJoinForm(state.range(1)),
                    "fig1/aggregate_then_join");
}

/// The full orthogonal-primitives optimizer choosing cost-based (the
/// paper's approach: all boxes reachable, cheapest wins).
void BM_FullOptimizer(benchmark::State& state) {
  Catalog* catalog = TpchAt(MilliSf(state.range(0)));
  RunQueryBenchmark(state, catalog, EngineOptions::Full(),
                    SubqueryForm(state.range(1)), "fig1/full_optimizer");
}

void StrategyArgs(benchmark::internal::Benchmark* b) {
  for (int64_t outer : {10, 100, 1000, 0}) {
    b->Args({10, outer});  // SF 0.01
  }
  b->Unit(benchmark::kMillisecond);
}

BENCHMARK(BM_CorrelatedIndexed)->Apply(StrategyArgs);
// The unindexed correlated strategy is quadratic; cap the outer size so
// the harness stays minutes, not hours (its slope is already clear).
BENCHMARK(BM_CorrelatedScan)
    ->Args({10, 10})
    ->Args({10, 100})
    ->Args({10, 300})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_OuterjoinThenAggregate)->Apply(StrategyArgs);
BENCHMARK(BM_AggregateThenJoin)->Apply(StrategyArgs);
BENCHMARK(BM_FullOptimizer)->Apply(StrategyArgs);

}  // namespace
}  // namespace bench
}  // namespace orq

ORQ_BENCH_MAIN();
