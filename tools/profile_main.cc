// Query-lifecycle profiler: runs one query against a generated TPC-H
// catalog with full instrumentation and writes a Chrome-trace-event JSON
// file (load it at https://ui.perfetto.dev or chrome://tracing). Console
// output shows the phase-time breakdown and engine metrics.
//
// Usage:
//   orq_profile --tpch Q2 [--sf 0.01] [--config full] [--out trace.json]
//   orq_profile --sql "SELECT ..." [--sf 0.01] [--out trace.json]
//   orq_profile --tpch Q2 --overhead   # instrumented-vs-plain timing
//
// Configs: full | correlated_only | no_groupby_opts | no_segment_apply
// (the named engine configurations of EXPERIMENTS.md).
//
// --overhead runs the query repeatedly through both Execute (instrumentation
// off: one null-check per operator call) and ExecuteAnalyzed (stats +
// metrics + spans) and reports both wall times — the number quoted in
// EXPERIMENTS.md's overhead section.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "engine/engine.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/spans.h"
#include "obs/stats.h"
#include "tpch/tpch_gen.h"
#include "tpch/tpch_queries.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: orq_profile (--tpch QID | --sql SQL) [--sf X]\n"
               "                   [--config full|correlated_only|"
               "no_groupby_opts|no_segment_apply]\n"
               "                   [--out trace.json] [--overhead]\n");
  return 2;
}

bool PickConfig(const char* name, orq::EngineOptions* out) {
  if (std::strcmp(name, "full") == 0) {
    *out = orq::EngineOptions::Full();
  } else if (std::strcmp(name, "correlated_only") == 0) {
    *out = orq::EngineOptions::CorrelatedOnly();
  } else if (std::strcmp(name, "no_groupby_opts") == 0) {
    *out = orq::EngineOptions::NoGroupByOptimizations();
  } else if (std::strcmp(name, "no_segment_apply") == 0) {
    *out = orq::EngineOptions::NoSegmentApply();
  } else {
    return false;
  }
  return true;
}

/// Instrumented-vs-plain comparison: alternates the two paths so cache and
/// frequency effects hit both equally; reports best-of-N per path.
int RunOverhead(orq::QueryEngine* engine, const std::string& sql) {
  constexpr int kRounds = 9;
  double plain_best_ms = 0.0;
  double analyzed_best_ms = 0.0;
  for (int round = 0; round < kRounds; ++round) {
    int64_t start = orq::ObsNowNanos();
    orq::Result<orq::QueryResult> plain = engine->Execute(sql);
    double plain_ms = (orq::ObsNowNanos() - start) / 1e6;
    if (!plain.ok()) {
      std::fprintf(stderr, "orq_profile: %s\n",
                   plain.status().ToString().c_str());
      return 1;
    }
    orq::AnalyzeOptions analyze;
    analyze.record_spans = true;
    start = orq::ObsNowNanos();
    orq::Result<orq::AnalyzedQuery> analyzed =
        engine->ExecuteAnalyzed(sql, analyze);
    double analyzed_ms = (orq::ObsNowNanos() - start) / 1e6;
    if (!analyzed.ok()) {
      std::fprintf(stderr, "orq_profile: %s\n",
                   analyzed.status().ToString().c_str());
      return 1;
    }
    if (round == 0 || plain_ms < plain_best_ms) plain_best_ms = plain_ms;
    if (round == 0 || analyzed_ms < analyzed_best_ms) {
      analyzed_best_ms = analyzed_ms;
    }
  }
  std::printf("plain Execute:      %10.3f ms (best of %d)\n", plain_best_ms,
              kRounds);
  std::printf("ExecuteAnalyzed:    %10.3f ms (best of %d)\n",
              analyzed_best_ms, kRounds);
  std::printf("overhead:           %10.1f %%\n",
              plain_best_ms > 0
                  ? 100.0 * (analyzed_best_ms - plain_best_ms) / plain_best_ms
                  : 0.0);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string sql;
  std::string label = "adhoc";
  double scale_factor = 0.01;
  std::string out_path = "trace.json";
  orq::EngineOptions options = orq::EngineOptions::Full();
  std::string config_name = "full";
  bool overhead = false;

  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--tpch") == 0) {
      label = next("--tpch");
      sql = orq::GetTpchQuery(label).sql;
    } else if (std::strcmp(argv[i], "--sql") == 0) {
      sql = next("--sql");
    } else if (std::strcmp(argv[i], "--sf") == 0) {
      scale_factor = std::atof(next("--sf"));
    } else if (std::strcmp(argv[i], "--config") == 0) {
      config_name = next("--config");
      if (!PickConfig(config_name.c_str(), &options)) {
        std::fprintf(stderr, "unknown config %s\n", config_name.c_str());
        return 2;
      }
    } else if (std::strcmp(argv[i], "--out") == 0) {
      out_path = next("--out");
    } else if (std::strcmp(argv[i], "--overhead") == 0) {
      overhead = true;
    } else {
      std::fprintf(stderr, "unknown argument %s\n", argv[i]);
      return Usage();
    }
  }
  if (sql.empty()) return Usage();
  if (scale_factor <= 0) {
    std::fprintf(stderr, "--sf must be positive\n");
    return 2;
  }

  orq::Catalog catalog;
  orq::TpchGenOptions gen;
  gen.scale_factor = scale_factor;
  orq::Status gen_status = orq::GenerateTpch(&catalog, gen);
  if (!gen_status.ok()) {
    std::fprintf(stderr, "TPC-H generation failed: %s\n",
                 gen_status.ToString().c_str());
    return 2;
  }
  orq::QueryEngine engine(&catalog, options);

  if (overhead) return RunOverhead(&engine, sql);

  orq::AnalyzeOptions analyze;
  analyze.record_spans = true;
  orq::Result<orq::AnalyzedQuery> analyzed =
      engine.ExecuteAnalyzed(sql, analyze);
  if (!analyzed.ok()) {
    std::fprintf(stderr, "orq_profile: %s\n",
                 analyzed.status().ToString().c_str());
    return 1;
  }

  std::printf("%s @ SF %g, config %s: %lld row(s)\n\n", label.c_str(),
              scale_factor, config_name.c_str(),
              static_cast<long long>(analyzed->result.rows.size()));
  std::printf("== Phase times ==\n%s",
              orq::RenderProfile(analyzed->profile, &analyzed->trace).c_str());
  if (!analyzed->metrics.empty()) {
    std::printf("\n== Engine metrics ==\n%s",
                orq::RenderMetrics(analyzed->metrics).c_str());
  }

  const std::string trace_json =
      orq::ChromeTraceJson(&analyzed->profile, analyzed->spans);
  std::FILE* file = std::fopen(out_path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "orq_profile: cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(file, "%s\n", trace_json.c_str());
  std::fclose(file);
  std::printf("\nwrote %s (%zu bytes, %zu span(s)) — load in "
              "https://ui.perfetto.dev\n",
              out_path.c_str(), trace_json.size(),
              analyzed->spans.spans().size());
  return 0;
}
