// The network query daemon: loads a generated catalog (difftest-shaped or
// TPC-H), starts the QueryServer, and serves wire-protocol clients until
// SIGINT/SIGTERM (or --runtime-ms elapses).
//
// Usage:
//   orq_serve [--host H] [--port N] [--port-file PATH]
//             [--metrics-port N] [--metrics-port-file PATH]
//             [--catalog difftest|tpch] [--seed N] [--sf X]
//             [--workers N] [--max-concurrent N] [--max-queued N]
//             [--timeout-ms N] [--threads N] [--runtime-ms N]
//             [--slow-query-ms N] [--history N]
//             [--config full|correlated_only|no_groupby_opts|no_segment_apply]
//
// --port 0 (the default) binds an ephemeral port; --port-file writes the
// bound port to a file so scripts can discover it. --timeout-ms is the
// default per-query deadline new sessions start with (SET timeout_ms
// overrides per session); --threads the default engine worker count.
// --metrics-port exposes a plain-HTTP GET /metrics endpoint (Prometheus
// text format; 0 = ephemeral, discoverable via --metrics-port-file).
// --slow-query-ms sets the default slow-query capture threshold and
// --history the completed-query ring capacity behind the history admin
// command.

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include "difftest/dataset.h"
#include "obs/stats.h"
#include "server/server.h"
#include "tpch/tpch_gen.h"

namespace {

volatile std::sig_atomic_t g_stop_requested = 0;

void HandleStopSignal(int) { g_stop_requested = 1; }

int Usage() {
  std::fprintf(
      stderr,
      "usage: orq_serve [--host H] [--port N] [--port-file PATH]\n"
      "                 [--metrics-port N] [--metrics-port-file PATH]\n"
      "                 [--catalog difftest|tpch] [--seed N] [--sf X]\n"
      "                 [--workers N] [--max-concurrent N] [--max-queued N]\n"
      "                 [--timeout-ms N] [--threads N] [--runtime-ms N]\n"
      "                 [--slow-query-ms N] [--history N]\n"
      "                 [--config full|correlated_only|no_groupby_opts|"
      "no_segment_apply]\n");
  return 2;
}

bool PickConfig(const char* name, orq::EngineOptions* out) {
  if (std::strcmp(name, "full") == 0) {
    *out = orq::EngineOptions::Full();
  } else if (std::strcmp(name, "correlated_only") == 0) {
    *out = orq::EngineOptions::CorrelatedOnly();
  } else if (std::strcmp(name, "no_groupby_opts") == 0) {
    *out = orq::EngineOptions::NoGroupByOptimizations();
  } else if (std::strcmp(name, "no_segment_apply") == 0) {
    *out = orq::EngineOptions::NoSegmentApply();
  } else {
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  orq::ServerOptions options;
  std::string catalog_kind = "difftest";
  std::string port_file;
  std::string metrics_port_file;
  uint64_t seed = 20260806;
  double scale_factor = 0.01;
  long long runtime_ms = 0;

  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--host") == 0) {
      options.host = next("--host");
    } else if (std::strcmp(argv[i], "--port") == 0) {
      options.port = std::atoi(next("--port"));
    } else if (std::strcmp(argv[i], "--port-file") == 0) {
      port_file = next("--port-file");
    } else if (std::strcmp(argv[i], "--metrics-port") == 0) {
      options.metrics_port = std::atoi(next("--metrics-port"));
    } else if (std::strcmp(argv[i], "--metrics-port-file") == 0) {
      metrics_port_file = next("--metrics-port-file");
    } else if (std::strcmp(argv[i], "--slow-query-ms") == 0) {
      options.default_slow_query_ms = std::atoll(next("--slow-query-ms"));
    } else if (std::strcmp(argv[i], "--history") == 0) {
      options.query_store_capacity =
          static_cast<size_t>(std::atoll(next("--history")));
    } else if (std::strcmp(argv[i], "--catalog") == 0) {
      catalog_kind = next("--catalog");
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      seed = static_cast<uint64_t>(std::atoll(next("--seed")));
    } else if (std::strcmp(argv[i], "--sf") == 0) {
      scale_factor = std::atof(next("--sf"));
    } else if (std::strcmp(argv[i], "--workers") == 0) {
      options.worker_threads = std::atoi(next("--workers"));
    } else if (std::strcmp(argv[i], "--max-concurrent") == 0) {
      options.admission.max_concurrent = std::atoi(next("--max-concurrent"));
    } else if (std::strcmp(argv[i], "--max-queued") == 0) {
      options.admission.max_queued = std::atoi(next("--max-queued"));
    } else if (std::strcmp(argv[i], "--timeout-ms") == 0) {
      options.default_timeout_ms = std::atoll(next("--timeout-ms"));
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      options.engine.exec.num_threads = std::atoi(next("--threads"));
    } else if (std::strcmp(argv[i], "--runtime-ms") == 0) {
      runtime_ms = std::atoll(next("--runtime-ms"));
    } else if (std::strcmp(argv[i], "--config") == 0) {
      const char* name = next("--config");
      if (!PickConfig(name, &options.engine)) {
        std::fprintf(stderr, "unknown config %s\n", name);
        return 2;
      }
    } else {
      std::fprintf(stderr, "unknown argument %s\n", argv[i]);
      return Usage();
    }
  }
  if (options.worker_threads < 1 || options.admission.max_concurrent < 1 ||
      options.admission.max_queued < 0) {
    std::fprintf(stderr, "worker/admission counts out of range\n");
    return 2;
  }

  auto catalog = std::make_shared<orq::Catalog>();
  if (catalog_kind == "difftest") {
    orq::Status built = orq::BuildDifftestCatalog(catalog.get(), seed);
    if (!built.ok()) {
      std::fprintf(stderr, "catalog build failed: %s\n",
                   built.ToString().c_str());
      return 2;
    }
  } else if (catalog_kind == "tpch") {
    orq::TpchGenOptions gen;
    gen.scale_factor = scale_factor;
    orq::Status built = orq::GenerateTpch(catalog.get(), gen);
    if (!built.ok()) {
      std::fprintf(stderr, "TPC-H generation failed: %s\n",
                   built.ToString().c_str());
      return 2;
    }
  } else {
    std::fprintf(stderr, "--catalog expects difftest|tpch, got %s\n",
                 catalog_kind.c_str());
    return 2;
  }
  // Warm the statistics cache so the first queries do not all pile into
  // the lazy stats computation.
  for (const std::string& name : catalog->TableNames()) {
    catalog->GetStats(*catalog->FindTable(name));
  }

  orq::QueryServer server(catalog, options);
  orq::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "orq_serve: %s\n", started.ToString().c_str());
    return 1;
  }
  if (!port_file.empty()) {
    std::FILE* file = std::fopen(port_file.c_str(), "w");
    if (file == nullptr) {
      std::fprintf(stderr, "orq_serve: cannot open %s\n", port_file.c_str());
      return 1;
    }
    std::fprintf(file, "%d\n", server.port());
    std::fclose(file);
  }
  if (!metrics_port_file.empty()) {
    std::FILE* file = std::fopen(metrics_port_file.c_str(), "w");
    if (file == nullptr) {
      std::fprintf(stderr, "orq_serve: cannot open %s\n",
                   metrics_port_file.c_str());
      return 1;
    }
    std::fprintf(file, "%d\n", server.metrics_port());
    std::fclose(file);
  }
  std::printf("orq_serve: listening on %s:%d (catalog=%s, workers=%d, "
              "max_concurrent=%d, max_queued=%d)\n",
              options.host.c_str(), server.port(), catalog_kind.c_str(),
              options.worker_threads, options.admission.max_concurrent,
              options.admission.max_queued);
  if (server.metrics_port() >= 0) {
    std::printf("orq_serve: metrics on http://%s:%d/metrics\n",
                options.host.c_str(), server.metrics_port());
  }
  std::fflush(stdout);

  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);

  const int64_t deadline_nanos =
      runtime_ms > 0 ? orq::ObsNowNanos() + runtime_ms * 1000000 : 0;
  while (g_stop_requested == 0) {
    if (deadline_nanos > 0 && orq::ObsNowNanos() >= deadline_nanos) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  std::printf("orq_serve: shutting down\n%s", server.MetricsText().c_str());
  server.Stop();
  return 0;
}
