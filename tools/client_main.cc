// Interactive / scripting client for orq_serve.
//
// Usage:
//   orq_client --port N [--host H] [commands...]
//
// Commands are executed in argv order:
//   --sql "SELECT ..."     run a query, print header + rows to stdout
//   --set "name value"     session SET (threads, batch, batch_size,
//                          morsel_rows, timeout_ms)
//   --admin CMD            admin command ("metrics", "ping")
//   --ping                 liveness round-trip
//
// With no commands, reads a mini-REPL from stdin: each line is a query;
// \set name value, \metrics, \ping, \q are meta commands (mirroring the
// frame types of the wire protocol).
//
// Exit code 0 when every command succeeded, 1 on the first failure.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "server/client.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: orq_client --port N [--host H] [--sql SQL] "
               "[--set \"name value\"] [--admin CMD] [--ping]\n");
  return 2;
}

void PrintResult(const orq::WireResult& result) {
  std::string header;
  for (size_t i = 0; i < result.columns.size(); ++i) {
    if (i > 0) header += "|";
    header += result.columns[i];
  }
  std::printf("%s\n", header.c_str());
  for (const std::string& row : result.rows) {
    std::printf("%s\n", row.c_str());
  }
  std::printf("(%zu row(s), %lld produced)\n", result.rows.size(),
              static_cast<long long>(result.rows_produced));
}

bool RunQuery(orq::Client* client, const std::string& sql) {
  orq::Result<orq::WireResult> result = client->Query(sql);
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    return false;
  }
  PrintResult(result.value());
  return true;
}

bool RunSet(orq::Client* client, const std::string& spec) {
  const size_t space = spec.find_first_of(" =");
  if (space == std::string::npos) {
    std::fprintf(stderr, "error: --set expects \"name value\"\n");
    return false;
  }
  orq::Status status =
      client->Set(spec.substr(0, space), spec.substr(space + 1));
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return false;
  }
  std::printf("SET ok\n");
  return true;
}

bool RunAdmin(orq::Client* client, const std::string& command) {
  orq::Result<std::string> reply = client->Admin(command);
  if (!reply.ok()) {
    std::fprintf(stderr, "error: %s\n", reply.status().ToString().c_str());
    return false;
  }
  std::printf("%s", reply.value().c_str());
  if (!reply.value().empty() && reply.value().back() != '\n') {
    std::printf("\n");
  }
  return true;
}

bool RunPing(orq::Client* client) {
  orq::Status status = client->Ping();
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return false;
  }
  std::printf("pong\n");
  return true;
}

int RunRepl(orq::Client* client) {
  std::string line;
  char buf[4096];
  while (std::fgets(buf, sizeof buf, stdin) != nullptr) {
    line = buf;
    while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
      line.pop_back();
    }
    if (line.empty()) continue;
    if (line == "\\q" || line == "\\quit") break;
    if (line == "\\metrics") {
      if (!RunAdmin(client, "metrics")) return 1;
    } else if (line == "\\ping") {
      if (!RunPing(client)) return 1;
    } else if (line.rfind("\\set ", 0) == 0) {
      if (!RunSet(client, line.substr(5))) return 1;
    } else if (line[0] == '\\') {
      std::fprintf(stderr,
                   "unknown command %s (known: \\set, \\metrics, \\ping, "
                   "\\q)\n",
                   line.c_str());
    } else {
      // Query failures keep the REPL alive; only transport errors exit.
      RunQuery(client, line);
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = 0;
  struct Command {
    char kind;  // 'q' sql, 's' set, 'a' admin, 'p' ping
    std::string arg;
  };
  std::vector<Command> commands;

  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--host") == 0) {
      host = next("--host");
    } else if (std::strcmp(argv[i], "--port") == 0) {
      port = std::atoi(next("--port"));
    } else if (std::strcmp(argv[i], "--sql") == 0) {
      commands.push_back({'q', next("--sql")});
    } else if (std::strcmp(argv[i], "--set") == 0) {
      commands.push_back({'s', next("--set")});
    } else if (std::strcmp(argv[i], "--admin") == 0) {
      commands.push_back({'a', next("--admin")});
    } else if (std::strcmp(argv[i], "--ping") == 0) {
      commands.push_back({'p', ""});
    } else {
      std::fprintf(stderr, "unknown argument %s\n", argv[i]);
      return Usage();
    }
  }
  if (port <= 0) {
    std::fprintf(stderr, "--port is required\n");
    return Usage();
  }

  orq::Result<orq::Client> connected = orq::Client::Connect(host, port);
  if (!connected.ok()) {
    std::fprintf(stderr, "connect failed: %s\n",
                 connected.status().ToString().c_str());
    return 1;
  }
  orq::Client client = std::move(connected.value());

  if (commands.empty()) return RunRepl(&client);

  for (const Command& command : commands) {
    bool ok = false;
    switch (command.kind) {
      case 'q': ok = RunQuery(&client, command.arg); break;
      case 's': ok = RunSet(&client, command.arg); break;
      case 'a': ok = RunAdmin(&client, command.arg); break;
      case 'p': ok = RunPing(&client); break;
    }
    if (!ok) return 1;
  }
  return 0;
}
