// Interactive / scripting client for orq_serve.
//
// Usage:
//   orq_client --port N [--host H] [commands...]
//
// Commands are executed in argv order:
//   --sql "SELECT ..."     run a query, print header + rows to stdout
//   --set "name value"     session SET (threads, batch, batch_size,
//                          morsel_rows, timeout_ms, slow_query_ms,
//                          plan_cache)
//   --admin CMD            admin command ("metrics", "metrics json",
//                          "metrics prom", "queries", "history [n]",
//                          "cancel <id>", "ping")
//   --scrape PORT          HTTP GET /metrics against the server's
//                          Prometheus listener, print the body
//   --ping                 liveness round-trip
//   --prepare "name SQL"   register a prepared statement (SQL may use ?)
//   --execute "name v..."  run a prepared statement; values are parsed
//                          per the types the server inferred at prepare
//                          time ('quoted strings' may contain spaces,
//                          null is the typed NULL)
//   --deallocate NAME      drop a prepared statement
//
// With no commands, reads a mini-REPL from stdin: each line is a query;
// \set name value, \metrics [json|prom], \queries, \history [n],
// \cancel id, \ping, \prepare name SQL, \execute name v1 v2 ...,
// \deallocate name, \q are meta commands (mirroring the frame types of
// the wire protocol).
//
// Exit code 0 when every command succeeded, 1 on the first failure.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "server/client.h"
#include "server/net.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: orq_client --port N [--host H] [--sql SQL] "
               "[--set \"name value\"] [--admin CMD] [--scrape PORT] "
               "[--ping] [--prepare \"name SQL\"] "
               "[--execute \"name values...\"] [--deallocate NAME]\n");
  return 2;
}

/// Parameter types per prepared-statement name, remembered from the
/// server's Prepare reply so \execute can parse value text into typed
/// wire Values.
using PreparedTypes = std::map<std::string, std::vector<orq::DataType>>;

void PrintResult(const orq::WireResult& result) {
  std::string header;
  for (size_t i = 0; i < result.columns.size(); ++i) {
    if (i > 0) header += "|";
    header += result.columns[i];
  }
  std::printf("%s\n", header.c_str());
  for (const std::string& row : result.rows) {
    std::printf("%s\n", row.c_str());
  }
  std::printf("(%zu row(s), %lld produced)\n", result.rows.size(),
              static_cast<long long>(result.rows_produced));
}

bool RunQuery(orq::Client* client, const std::string& sql) {
  orq::Result<orq::WireResult> result = client->Query(sql);
  if (!result.ok()) {
    // The server mints an id even for failed queries; print it so the
    // error can be cross-referenced against \history.
    if (!client->last_query_id().empty()) {
      std::fprintf(stderr, "error [%s]: %s\n",
                   client->last_query_id().c_str(),
                   result.status().ToString().c_str());
    } else {
      std::fprintf(stderr, "error: %s\n",
                   result.status().ToString().c_str());
    }
    return false;
  }
  PrintResult(result.value());
  return true;
}

bool RunScrape(const std::string& host, const std::string& port_text) {
  const int port = std::atoi(port_text.c_str());
  if (port <= 0) {
    std::fprintf(stderr, "error: --scrape expects a port, got \"%s\"\n",
                 port_text.c_str());
    return false;
  }
  orq::Result<std::string> body = orq::HttpGet(host, port, "/metrics");
  if (!body.ok()) {
    std::fprintf(stderr, "error: %s\n", body.status().ToString().c_str());
    return false;
  }
  std::printf("%s", body.value().c_str());
  return true;
}

bool RunSet(orq::Client* client, const std::string& spec) {
  const size_t space = spec.find_first_of(" =");
  if (space == std::string::npos) {
    std::fprintf(stderr, "error: --set expects \"name value\"\n");
    return false;
  }
  orq::Status status =
      client->Set(spec.substr(0, space), spec.substr(space + 1));
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return false;
  }
  std::printf("SET ok\n");
  return true;
}

bool RunAdmin(orq::Client* client, const std::string& command) {
  orq::Result<std::string> reply = client->Admin(command);
  if (!reply.ok()) {
    std::fprintf(stderr, "error: %s\n", reply.status().ToString().c_str());
    return false;
  }
  std::printf("%s", reply.value().c_str());
  if (!reply.value().empty() && reply.value().back() != '\n') {
    std::printf("\n");
  }
  return true;
}

/// Splits on whitespace; a 'single-quoted' token may contain spaces (the
/// quotes are stripped, there is no escaping).
std::vector<std::string> Tokenize(const std::string& text) {
  std::vector<std::string> tokens;
  size_t i = 0;
  while (i < text.size()) {
    if (text[i] == ' ' || text[i] == '\t') {
      ++i;
    } else if (text[i] == '\'') {
      size_t end = text.find('\'', i + 1);
      if (end == std::string::npos) end = text.size();
      tokens.push_back(text.substr(i + 1, end - i - 1));
      i = end + 1;
    } else {
      size_t end = text.find_first_of(" \t", i);
      if (end == std::string::npos) end = text.size();
      tokens.push_back(text.substr(i, end - i));
      i = end;
    }
  }
  return tokens;
}

bool ParseParam(const std::string& text, orq::DataType type,
                orq::Value* out) {
  if (text == "null") {
    *out = orq::Value::Null(type);
    return true;
  }
  char* end = nullptr;
  switch (type) {
    case orq::DataType::kBool:
      if (text == "true" || text == "1") { *out = orq::Value::Bool(true); }
      else if (text == "false" || text == "0") {
        *out = orq::Value::Bool(false);
      } else { return false; }
      return true;
    case orq::DataType::kInt64: {
      long long v = std::strtoll(text.c_str(), &end, 10);
      if (end == text.c_str() || *end != '\0') return false;
      *out = orq::Value::Int64(v);
      return true;
    }
    case orq::DataType::kDouble: {
      double v = std::strtod(text.c_str(), &end);
      if (end == text.c_str() || *end != '\0') return false;
      *out = orq::Value::Double(v);
      return true;
    }
    case orq::DataType::kString:
    case orq::DataType::kDate:
      // Dates travel as strings ("1995-06-01"); the server coerces.
      *out = orq::Value::String(text);
      return true;
  }
  return false;
}

bool RunPrepare(orq::Client* client, PreparedTypes* types,
                const std::string& spec) {
  const size_t space = spec.find(' ');
  if (space == std::string::npos) {
    std::fprintf(stderr, "error: prepare expects \"name SQL\"\n");
    return false;
  }
  const std::string name = spec.substr(0, space);
  orq::Result<orq::WirePrepared> prepared =
      client->Prepare(name, spec.substr(space + 1));
  if (!prepared.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 prepared.status().ToString().c_str());
    return false;
  }
  (*types)[name] = prepared->param_types;
  std::string type_names;
  for (orq::DataType t : prepared->param_types) {
    if (!type_names.empty()) type_names += ", ";
    type_names += orq::DataTypeName(t);
  }
  std::printf("PREPARE %s ok (%zu param(s)%s%s)\n", name.c_str(),
              prepared->param_types.size(),
              type_names.empty() ? "" : ": ", type_names.c_str());
  return true;
}

bool RunExecute(orq::Client* client, const PreparedTypes& types,
                const std::string& spec) {
  std::vector<std::string> tokens = Tokenize(spec);
  if (tokens.empty()) {
    std::fprintf(stderr, "error: execute expects \"name [values...]\"\n");
    return false;
  }
  const std::string name = tokens[0];
  auto it = types.find(name);
  if (it == types.end()) {
    std::fprintf(stderr, "error: no statement prepared as \"%s\" in this "
                         "client\n", name.c_str());
    return false;
  }
  if (tokens.size() - 1 != it->second.size()) {
    std::fprintf(stderr, "error: \"%s\" expects %zu value(s), got %zu\n",
                 name.c_str(), it->second.size(), tokens.size() - 1);
    return false;
  }
  std::vector<orq::Value> params;
  for (size_t i = 1; i < tokens.size(); ++i) {
    orq::Value value;
    if (!ParseParam(tokens[i], it->second[i - 1], &value)) {
      std::fprintf(stderr, "error: cannot parse \"%s\" as %s\n",
                   tokens[i].c_str(),
                   orq::DataTypeName(it->second[i - 1]).c_str());
      return false;
    }
    params.push_back(std::move(value));
  }
  orq::Result<orq::WireResult> result =
      client->ExecutePrepared(name, params);
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    return false;
  }
  PrintResult(result.value());
  return true;
}

bool RunDeallocate(orq::Client* client, PreparedTypes* types,
                   const std::string& name) {
  orq::Status status = client->Deallocate(name);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return false;
  }
  types->erase(name);
  std::printf("DEALLOCATE %s ok\n", name.c_str());
  return true;
}

bool RunPing(orq::Client* client) {
  orq::Status status = client->Ping();
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return false;
  }
  std::printf("pong\n");
  return true;
}

int RunRepl(orq::Client* client) {
  PreparedTypes prepared_types;
  std::string line;
  char buf[4096];
  while (std::fgets(buf, sizeof buf, stdin) != nullptr) {
    line = buf;
    while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
      line.pop_back();
    }
    if (line.empty()) continue;
    if (line == "\\q" || line == "\\quit") break;
    if (line == "\\metrics" || line.rfind("\\metrics ", 0) == 0 ||
        line == "\\queries" || line == "\\history" ||
        line.rfind("\\history ", 0) == 0) {
      // Pass through sans backslash ("\metrics prom" -> "metrics prom");
      // introspection failures keep the REPL alive, like query errors.
      RunAdmin(client, line.substr(1));
    } else if (line.rfind("\\cancel ", 0) == 0) {
      // NotFound (the query already finished) is not fatal either.
      RunAdmin(client, line.substr(1));
    } else if (line == "\\ping") {
      if (!RunPing(client)) return 1;
    } else if (line.rfind("\\set ", 0) == 0) {
      if (!RunSet(client, line.substr(5))) return 1;
    } else if (line.rfind("\\prepare ", 0) == 0) {
      // Statement errors keep the REPL alive, like query errors.
      RunPrepare(client, &prepared_types, line.substr(9));
    } else if (line.rfind("\\execute ", 0) == 0) {
      RunExecute(client, prepared_types, line.substr(9));
    } else if (line.rfind("\\deallocate ", 0) == 0) {
      RunDeallocate(client, &prepared_types, line.substr(12));
    } else if (line[0] == '\\') {
      std::fprintf(stderr,
                   "unknown command %s (known: \\set, \\metrics, \\queries, "
                   "\\history, \\cancel, \\ping, \\prepare, \\execute, "
                   "\\deallocate, \\q)\n",
                   line.c_str());
    } else {
      // Query failures keep the REPL alive; only transport errors exit.
      RunQuery(client, line);
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = 0;
  struct Command {
    char kind;  // 'q' sql, 's' set, 'a' admin, 'm' scrape, 'p' ping
    std::string arg;
  };
  std::vector<Command> commands;

  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--host") == 0) {
      host = next("--host");
    } else if (std::strcmp(argv[i], "--port") == 0) {
      port = std::atoi(next("--port"));
    } else if (std::strcmp(argv[i], "--sql") == 0) {
      commands.push_back({'q', next("--sql")});
    } else if (std::strcmp(argv[i], "--set") == 0) {
      commands.push_back({'s', next("--set")});
    } else if (std::strcmp(argv[i], "--admin") == 0) {
      commands.push_back({'a', next("--admin")});
    } else if (std::strcmp(argv[i], "--scrape") == 0) {
      commands.push_back({'m', next("--scrape")});
    } else if (std::strcmp(argv[i], "--ping") == 0) {
      commands.push_back({'p', ""});
    } else if (std::strcmp(argv[i], "--prepare") == 0) {
      commands.push_back({'P', next("--prepare")});
    } else if (std::strcmp(argv[i], "--execute") == 0) {
      commands.push_back({'x', next("--execute")});
    } else if (std::strcmp(argv[i], "--deallocate") == 0) {
      commands.push_back({'d', next("--deallocate")});
    } else {
      std::fprintf(stderr, "unknown argument %s\n", argv[i]);
      return Usage();
    }
  }
  if (port <= 0) {
    std::fprintf(stderr, "--port is required\n");
    return Usage();
  }

  orq::Result<orq::Client> connected = orq::Client::Connect(host, port);
  if (!connected.ok()) {
    std::fprintf(stderr, "connect failed: %s\n",
                 connected.status().ToString().c_str());
    return 1;
  }
  orq::Client client = std::move(connected.value());

  if (commands.empty()) return RunRepl(&client);

  PreparedTypes prepared_types;
  for (const Command& command : commands) {
    bool ok = false;
    switch (command.kind) {
      case 'q': ok = RunQuery(&client, command.arg); break;
      case 's': ok = RunSet(&client, command.arg); break;
      case 'a': ok = RunAdmin(&client, command.arg); break;
      case 'm': ok = RunScrape(host, command.arg); break;
      case 'p': ok = RunPing(&client); break;
      case 'P': ok = RunPrepare(&client, &prepared_types, command.arg); break;
      case 'x': ok = RunExecute(&client, prepared_types, command.arg); break;
      case 'd': ok = RunDeallocate(&client, &prepared_types, command.arg);
                break;
    }
    if (!ok) return 1;
  }
  return 0;
}
