// Differential testing driver: dual-executes seeded random queries on the
// naive reference engine and the full rewrite pipeline, and reports any
// bag-comparison divergence with a minimized reproducer and both plans.
//
// Usage: difftest [--seed N] [--queries N] [--max-failures N] [--verbose]
//                 [--reference-exec row|batch] [--test-exec row|batch]
//
// The exec flags pick the pull discipline per side: "batch" (default)
// drains through NextBatch, "row" forces the classic one-row Volcano
// adapter. Mixing them cross-checks the batched engine against the
// row-at-a-time engine on the same query stream.
//
// Exit code 0 when every query agreed, 1 on divergence, 2 on setup error.

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "difftest/harness.h"

int main(int argc, char** argv) {
  orq::HarnessOptions options;
  for (int i = 1; i < argc; ++i) {
    auto next_int = [&](const char* flag) -> long long {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        std::exit(2);
      }
      return std::atoll(argv[++i]);
    };
    if (std::strcmp(argv[i], "--seed") == 0) {
      options.seed = static_cast<uint64_t>(next_int("--seed"));
    } else if (std::strcmp(argv[i], "--queries") == 0) {
      options.num_queries = static_cast<int>(next_int("--queries"));
    } else if (std::strcmp(argv[i], "--max-failures") == 0) {
      options.max_failures = static_cast<int>(next_int("--max-failures"));
    } else if (std::strcmp(argv[i], "--verbose") == 0) {
      options.verbose = true;
    } else if (std::strcmp(argv[i], "--reference-exec") == 0 ||
               std::strcmp(argv[i], "--test-exec") == 0) {
      const char* flag = argv[i];
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires row|batch\n", flag);
        return 2;
      }
      const char* mode = argv[++i];
      bool batched;
      if (std::strcmp(mode, "row") == 0) {
        batched = false;
      } else if (std::strcmp(mode, "batch") == 0) {
        batched = true;
      } else {
        std::fprintf(stderr, "%s expects row|batch, got %s\n", flag, mode);
        return 2;
      }
      if (std::strcmp(flag, "--reference-exec") == 0) {
        options.reference_batched = batched;
      } else {
        options.test_batched = batched;
      }
    } else {
      std::fprintf(stderr,
                   "unknown argument %s\nusage: difftest [--seed N] "
                   "[--queries N] [--max-failures N] [--verbose] "
                   "[--reference-exec row|batch] [--test-exec row|batch]\n",
                   argv[i]);
      return 2;
    }
  }

  orq::Result<orq::HarnessReport> report = orq::RunDifftest(options);
  if (!report.ok()) {
    std::fprintf(stderr, "difftest setup failed: %s\n",
                 report.status().ToString().c_str());
    return 2;
  }
  std::fputs(report->Summary().c_str(), stdout);
  return report->ok() ? 0 : 1;
}
