// Differential testing driver: dual-executes seeded random queries on the
// naive reference engine and the full rewrite pipeline, and reports any
// bag-comparison divergence with a minimized reproducer and both plans.
//
// Usage: difftest [--seed N] [--queries N] [--max-failures N] [--verbose]
//                 [--reference-exec row|batch|columnar|parallel]
//                 [--test-exec row|batch|columnar|parallel] [--threads N]
//                 [--table-encoding plain|dict|rle|auto]
//                 [--timeout-ms N] [--plan-cache]
//
// --plan-cache adds a cached-vs-cold oracle side: every non-divergent
// query also runs twice through one plan-cache-enabled engine, and the
// cached execution must be a cache hit with byte-identical results.
//
// --timeout-ms arms a per-query deadline on each oracle side (useful when
// hunting for pathological plans without letting the naive reference run
// unbounded). One-sided timeouts are tolerated, never divergences.
//
// The exec flags pick the engine per side: "batch" (default) drains
// through NextBatch, "row" forces the classic one-row Volcano adapter,
// "columnar" runs the columnar (SoA) engine, and "parallel" runs the
// morsel-driven parallel engine with --threads workers (default 4). Mixing modes cross-checks engines on the same
// query stream — e.g. `--reference-exec row --test-exec parallel` is the
// parallel-vs-serial oracle.
//
// --table-encoding sets the test side's columnar storage encoding
// (reference scans stay plain), so `--reference-exec row --test-exec
// columnar --table-encoding auto` is the encoded-storage oracle.
//
// Exit code 0 when every query agreed, 1 on divergence, 2 on setup error.

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "difftest/harness.h"

int main(int argc, char** argv) {
  orq::HarnessOptions options;
  bool reference_parallel = false;
  bool test_parallel = false;
  int threads = 4;
  for (int i = 1; i < argc; ++i) {
    auto next_int = [&](const char* flag) -> long long {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        std::exit(2);
      }
      return std::atoll(argv[++i]);
    };
    if (std::strcmp(argv[i], "--seed") == 0) {
      options.seed = static_cast<uint64_t>(next_int("--seed"));
    } else if (std::strcmp(argv[i], "--queries") == 0) {
      options.num_queries = static_cast<int>(next_int("--queries"));
    } else if (std::strcmp(argv[i], "--max-failures") == 0) {
      options.max_failures = static_cast<int>(next_int("--max-failures"));
    } else if (std::strcmp(argv[i], "--verbose") == 0) {
      options.verbose = true;
    } else if (std::strcmp(argv[i], "--plan-cache") == 0) {
      options.plan_cache_check = true;
    } else if (std::strcmp(argv[i], "--timeout-ms") == 0) {
      options.timeout_ms = static_cast<int64_t>(next_int("--timeout-ms"));
      if (options.timeout_ms < 0) {
        std::fprintf(stderr, "--timeout-ms expects a non-negative value\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      threads = static_cast<int>(next_int("--threads"));
      if (threads < 1) {
        std::fprintf(stderr, "--threads expects a positive count\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--table-encoding") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--table-encoding requires plain|dict|rle|auto\n");
        return 2;
      }
      const char* enc = argv[++i];
      if (std::strcmp(enc, "plain") == 0) {
        options.test_table_encoding = orq::TableEncoding::kPlain;
      } else if (std::strcmp(enc, "dict") == 0) {
        options.test_table_encoding = orq::TableEncoding::kDict;
      } else if (std::strcmp(enc, "rle") == 0) {
        options.test_table_encoding = orq::TableEncoding::kRle;
      } else if (std::strcmp(enc, "auto") == 0) {
        options.test_table_encoding = orq::TableEncoding::kAuto;
      } else {
        std::fprintf(stderr,
                     "--table-encoding expects plain|dict|rle|auto, got %s\n",
                     enc);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--reference-exec") == 0 ||
               std::strcmp(argv[i], "--test-exec") == 0) {
      const char* flag = argv[i];
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires row|batch|columnar|parallel\n", flag);
        return 2;
      }
      const char* mode = argv[++i];
      bool batched;
      bool columnar = false;
      bool parallel = false;
      if (std::strcmp(mode, "row") == 0) {
        batched = false;
      } else if (std::strcmp(mode, "batch") == 0) {
        batched = true;
      } else if (std::strcmp(mode, "columnar") == 0) {
        batched = true;
        columnar = true;
      } else if (std::strcmp(mode, "parallel") == 0) {
        batched = true;
        parallel = true;
      } else {
        std::fprintf(stderr,
                     "%s expects row|batch|columnar|parallel, got %s\n",
                     flag, mode);
        return 2;
      }
      if (std::strcmp(flag, "--reference-exec") == 0) {
        options.reference_batched = batched;
        options.reference_columnar = columnar;
        reference_parallel = parallel;
      } else {
        options.test_batched = batched;
        options.test_columnar = columnar;
        test_parallel = parallel;
      }
    } else {
      std::fprintf(stderr,
                   "unknown argument %s\nusage: difftest [--seed N] "
                   "[--queries N] [--max-failures N] [--verbose] "
                   "[--reference-exec row|batch|columnar|parallel] "
                   "[--test-exec row|batch|columnar|parallel] "
                   "[--threads N] "
                   "[--table-encoding plain|dict|rle|auto] "
                   "[--timeout-ms N] [--plan-cache]\n",
                   argv[i]);
      return 2;
    }
  }
  options.reference_threads = reference_parallel ? threads : 0;
  options.test_threads = test_parallel ? threads : 0;

  orq::Result<orq::HarnessReport> report = orq::RunDifftest(options);
  if (!report.ok()) {
    std::fprintf(stderr, "difftest setup failed: %s\n",
                 report.status().ToString().c_str());
    return 2;
  }
  std::fputs(report->Summary().c_str(), stdout);
  return report->ok() ? 0 : 1;
}
