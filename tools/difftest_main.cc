// Differential testing driver: dual-executes seeded random queries on the
// naive reference engine and the full rewrite pipeline, and reports any
// bag-comparison divergence with a minimized reproducer and both plans.
//
// Usage: difftest [--seed N] [--queries N] [--max-failures N] [--verbose]
//
// Exit code 0 when every query agreed, 1 on divergence, 2 on setup error.

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "difftest/harness.h"

int main(int argc, char** argv) {
  orq::HarnessOptions options;
  for (int i = 1; i < argc; ++i) {
    auto next_int = [&](const char* flag) -> long long {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        std::exit(2);
      }
      return std::atoll(argv[++i]);
    };
    if (std::strcmp(argv[i], "--seed") == 0) {
      options.seed = static_cast<uint64_t>(next_int("--seed"));
    } else if (std::strcmp(argv[i], "--queries") == 0) {
      options.num_queries = static_cast<int>(next_int("--queries"));
    } else if (std::strcmp(argv[i], "--max-failures") == 0) {
      options.max_failures = static_cast<int>(next_int("--max-failures"));
    } else if (std::strcmp(argv[i], "--verbose") == 0) {
      options.verbose = true;
    } else {
      std::fprintf(stderr,
                   "unknown argument %s\nusage: difftest [--seed N] "
                   "[--queries N] [--max-failures N] [--verbose]\n",
                   argv[i]);
      return 2;
    }
  }

  orq::Result<orq::HarnessReport> report = orq::RunDifftest(options);
  if (!report.ok()) {
    std::fprintf(stderr, "difftest setup failed: %s\n",
                 report.status().ToString().c_str());
    return 2;
  }
  std::fputs(report->Summary().c_str(), stdout);
  return report->ok() ? 0 : 1;
}
