// Load generator for the network query service: N concurrent sessions
// each run a deterministic stream of generated correlated-subquery queries
// (the difftest generator's mix) and report throughput plus latency
// percentiles.
//
// By default the tool self-hosts: it builds the difftest catalog, starts
// an in-process QueryServer on an ephemeral port, and connects its
// sessions over real TCP — one command, fully deterministic, which is how
// CI produces BENCH_serve.json. With --port it targets an external
// orq_serve instead (which must serve the difftest catalog with the same
// --seed for the generated queries to bind).
//
// Usage:
//   orq_loadgen [--sessions N] [--queries N] [--seed N] [--timeout-ms N]
//               [--workers N] [--max-concurrent N] [--max-queued N]
//               [--threads N] [--host H] [--port N] [--json PATH]
//               [--plan-cache] [--distinct N] [--prepared]
//               [--min-hit-rate PCT]
//
// --plan-cache turns each session's stream into a repeated one (query i
// is base[i % distinct], default 8 distinct shapes) and enables the
// server-side plan cache via SET, so steady state serves cached plans.
// --prepared instead PREPAREs one parameterized statement per session and
// EXECUTEs it with a varying key — the prepared-statement fast path.
// --min-hit-rate asserts the server-reported plan-cache hit rate at the
// end of the run (exit 1 below the bar); this is the CI gate.
//
// The --json report is one JSON-lines record in the BENCH_*.json schema
// (name/wall_ms/result_rows/rows_produced/error gate through
// bench_compare; qps, p50/p95/p99, and cache hit_rate ride along as
// extra counters).

#include <algorithm>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "difftest/dataset.h"
#include "difftest/qgen.h"
#include "obs/json.h"
#include "obs/stats.h"
#include "server/client.h"
#include "server/server.h"

namespace {

struct SessionStats {
  std::vector<int64_t> latencies_micros;
  int64_t ok = 0;
  int64_t errors = 0;    // engine errors (generated queries may error)
  int64_t timeouts = 0;  // Cancelled/DeadlineExceeded
  int64_t rejected = 0;  // admission Unavailable
  int64_t result_rows = 0;
  int64_t rows_produced = 0;
  orq::Status transport = orq::Status::OK();
};

/// Percentile over a sorted latency vector (nearest-rank on the closed
/// interval, so p100 is the max).
double PercentileMs(const std::vector<int64_t>& sorted, int pct) {
  if (sorted.empty()) return 0.0;
  const size_t index = (sorted.size() - 1) * static_cast<size_t>(pct) / 100;
  return static_cast<double>(sorted[index]) / 1000.0;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: orq_loadgen [--sessions N] [--queries N] [--seed N]\n"
      "                   [--timeout-ms N] [--workers N] [--max-concurrent "
      "N]\n"
      "                   [--max-queued N] [--threads N] [--host H] [--port "
      "N]\n"
      "                   [--json PATH] [--plan-cache] [--distinct N]\n"
      "                   [--prepared] [--min-hit-rate PCT]\n");
  return 2;
}

/// Reads the value of one `name value` line out of the server's metrics
/// text; 0 when the counter never fired (RenderMetrics omits zeros).
int64_t ParseMetric(const std::string& metrics, const std::string& name) {
  const size_t pos = metrics.find(name);
  if (pos == std::string::npos) return 0;
  return std::atoll(metrics.c_str() + pos + name.size());
}

}  // namespace

int main(int argc, char** argv) {
  int sessions = 8;
  int queries_per_session = 25;
  uint64_t seed = 20260806;
  std::string host = "127.0.0.1";
  int port = 0;  // 0 = self-host
  std::string json_path;
  bool plan_cache = false;
  bool prepared = false;
  int distinct = 8;
  double min_hit_rate = -1.0;  // percent; <0 = no gate
  orq::ServerOptions server_options;
  server_options.worker_threads = 4;
  server_options.admission.max_concurrent = 4;

  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--sessions") == 0) {
      sessions = std::atoi(next("--sessions"));
    } else if (std::strcmp(argv[i], "--queries") == 0) {
      queries_per_session = std::atoi(next("--queries"));
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      seed = static_cast<uint64_t>(std::atoll(next("--seed")));
    } else if (std::strcmp(argv[i], "--timeout-ms") == 0) {
      server_options.default_timeout_ms = std::atoll(next("--timeout-ms"));
    } else if (std::strcmp(argv[i], "--workers") == 0) {
      server_options.worker_threads = std::atoi(next("--workers"));
    } else if (std::strcmp(argv[i], "--max-concurrent") == 0) {
      server_options.admission.max_concurrent =
          std::atoi(next("--max-concurrent"));
    } else if (std::strcmp(argv[i], "--max-queued") == 0) {
      server_options.admission.max_queued = std::atoi(next("--max-queued"));
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      server_options.engine.exec.num_threads = std::atoi(next("--threads"));
    } else if (std::strcmp(argv[i], "--host") == 0) {
      host = next("--host");
    } else if (std::strcmp(argv[i], "--port") == 0) {
      port = std::atoi(next("--port"));
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json_path = next("--json");
    } else if (std::strcmp(argv[i], "--plan-cache") == 0) {
      plan_cache = true;
    } else if (std::strcmp(argv[i], "--prepared") == 0) {
      prepared = true;
      plan_cache = true;  // the EXECUTE fast path lives in the plan cache
    } else if (std::strcmp(argv[i], "--distinct") == 0) {
      distinct = std::atoi(next("--distinct"));
    } else if (std::strcmp(argv[i], "--min-hit-rate") == 0) {
      min_hit_rate = std::atof(next("--min-hit-rate"));
    } else {
      std::fprintf(stderr, "unknown argument %s\n", argv[i]);
      return Usage();
    }
  }
  if (sessions < 1 || queries_per_session < 1) {
    std::fprintf(stderr, "--sessions/--queries expect positive counts\n");
    return 2;
  }
  if (distinct < 1) {
    std::fprintf(stderr, "--distinct expects a positive count\n");
    return 2;
  }

  // Deterministic per-session query streams: session k draws from its own
  // generator seeded off (seed, k), so adding sessions never shifts the
  // queries existing sessions run. With --plan-cache the stream repeats a
  // small base set (query i is base[i % distinct]) — the steady-state
  // workload a plan cache exists for.
  std::vector<std::vector<std::string>> streams(sessions);
  for (int s = 0; s < sessions; ++s) {
    orq::QueryGenerator generator(seed + 7919u * static_cast<uint64_t>(s));
    const int base_count =
        plan_cache ? std::min(distinct, queries_per_session)
                   : queries_per_session;
    std::vector<std::string> base;
    for (int q = 0; q < base_count; ++q) {
      base.push_back(orq::RenderSql(generator.Generate()));
    }
    for (int q = 0; q < queries_per_session; ++q) {
      streams[s].push_back(base[static_cast<size_t>(q % base_count)]);
    }
  }

  // Self-host unless --port points at an external server.
  std::unique_ptr<orq::QueryServer> server;
  if (port == 0) {
    auto catalog = std::make_shared<orq::Catalog>();
    orq::Status built = orq::BuildDifftestCatalog(catalog.get(), seed);
    if (!built.ok()) {
      std::fprintf(stderr, "catalog build failed: %s\n",
                   built.ToString().c_str());
      return 2;
    }
    for (const std::string& name : catalog->TableNames()) {
      catalog->GetStats(*catalog->FindTable(name));
    }
    server = std::make_unique<orq::QueryServer>(catalog, server_options);
    orq::Status started = server->Start();
    if (!started.ok()) {
      std::fprintf(stderr, "server start failed: %s\n",
                   started.ToString().c_str());
      return 2;
    }
    port = server->port();
  }

  // All sessions connect first, then start querying together on a latch —
  // the measured window covers query traffic only, not connection setup.
  std::vector<SessionStats> stats(sessions);
  std::vector<orq::Client> clients;
  clients.reserve(sessions);
  for (int s = 0; s < sessions; ++s) {
    orq::Result<orq::Client> connected = orq::Client::Connect(host, port);
    if (!connected.ok()) {
      std::fprintf(stderr, "session %d connect failed: %s\n", s,
                   connected.status().ToString().c_str());
      return 1;
    }
    clients.push_back(std::move(connected.value()));
  }

  // Cache/prepared setup is part of connection setup, outside the
  // measured window: enable the session plan cache and register the
  // parameterized statement each prepared-mode session will execute.
  const char kPreparedName[] = "loadgen_stmt";
  const char kPreparedSql[] =
      "SELECT COUNT(*) FROM orders WHERE o_custkey < ?";
  if (plan_cache) {
    for (int s = 0; s < sessions; ++s) {
      orq::Status set = clients[static_cast<size_t>(s)].Set("plan_cache",
                                                            "on");
      if (!set.ok()) {
        std::fprintf(stderr, "session %d SET plan_cache failed: %s\n", s,
                     set.ToString().c_str());
        return 1;
      }
      if (prepared) {
        orq::Result<orq::WirePrepared> registered =
            clients[static_cast<size_t>(s)].Prepare(kPreparedName,
                                                    kPreparedSql);
        if (!registered.ok()) {
          std::fprintf(stderr, "session %d PREPARE failed: %s\n", s,
                       registered.status().ToString().c_str());
          return 1;
        }
      }
    }
  }

  std::mutex start_mu;
  std::condition_variable start_cv;
  bool start = false;
  std::vector<std::thread> threads;
  threads.reserve(sessions);
  for (int s = 0; s < sessions; ++s) {
    threads.emplace_back([&, s] {
      {
        std::unique_lock<std::mutex> lock(start_mu);
        start_cv.wait(lock, [&] { return start; });
      }
      orq::Client& client = clients[static_cast<size_t>(s)];
      SessionStats& mine = stats[static_cast<size_t>(s)];
      for (int q = 0; q < queries_per_session; ++q) {
        const int64_t t0 = orq::ObsNowNanos();
        // Prepared mode executes the registered statement with a varying
        // key; otherwise the session replays its generated stream.
        orq::Result<orq::WireResult> result =
            prepared
                ? client.ExecutePrepared(
                      kPreparedName, {orq::Value::Int64(1 + q % 50)})
                : client.Query(
                      streams[static_cast<size_t>(s)][static_cast<size_t>(q)]);
        mine.latencies_micros.push_back((orq::ObsNowNanos() - t0) / 1000);
        if (result.ok()) {
          ++mine.ok;
          mine.result_rows += static_cast<int64_t>(result->rows.size());
          mine.rows_produced += result->rows_produced;
        } else {
          // Log the server-minted id so the failure can be pulled back out
          // of the server's history/slow-query log after the run.
          std::fprintf(stderr, "loadgen: session %d query %d [%s]: %s\n", s,
                       q,
                       client.last_query_id().empty()
                           ? "no-id"
                           : client.last_query_id().c_str(),
                       result.status().ToString().c_str());
          switch (result.status().code()) {
            case orq::StatusCode::kCancelled:
            case orq::StatusCode::kDeadlineExceeded:
              ++mine.timeouts;
              break;
            case orq::StatusCode::kUnavailable:
              ++mine.rejected;
              // A rejected connection is still usable; an Unavailable from
              // a dead transport is not — probe and bail if the link died.
              if (!client.Ping().ok()) {
                mine.transport = result.status();
                return;
              }
              break;
            default:
              ++mine.errors;
              break;
          }
        }
      }
    });
  }

  const int64_t wall_start = orq::ObsNowNanos();
  {
    std::lock_guard<std::mutex> lock(start_mu);
    start = true;
  }
  start_cv.notify_all();
  for (std::thread& thread : threads) thread.join();
  const double wall_ms = (orq::ObsNowNanos() - wall_start) / 1e6;

  // Read the server's cache counters before tearing the sessions down.
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  if (plan_cache) {
    orq::Result<std::string> metrics = clients[0].Admin("metrics");
    if (metrics.ok()) {
      cache_hits = ParseMetric(*metrics, "plan_cache.hits");
      cache_misses = ParseMetric(*metrics, "plan_cache.misses");
    }
  }
  const double hit_rate =
      cache_hits + cache_misses > 0
          ? 100.0 * static_cast<double>(cache_hits) /
                static_cast<double>(cache_hits + cache_misses)
          : 0.0;

  clients.clear();  // disconnect before the server goes down
  if (server != nullptr) server->Stop();

  SessionStats total;
  std::vector<int64_t> all_latencies;
  for (const SessionStats& s : stats) {
    if (!s.transport.ok()) {
      std::fprintf(stderr, "transport failure: %s\n",
                   s.transport.ToString().c_str());
      return 1;
    }
    total.ok += s.ok;
    total.errors += s.errors;
    total.timeouts += s.timeouts;
    total.rejected += s.rejected;
    total.result_rows += s.result_rows;
    total.rows_produced += s.rows_produced;
    all_latencies.insert(all_latencies.end(), s.latencies_micros.begin(),
                         s.latencies_micros.end());
  }
  std::sort(all_latencies.begin(), all_latencies.end());
  const int64_t attempted = static_cast<int64_t>(all_latencies.size());
  const double qps =
      wall_ms > 0 ? static_cast<double>(attempted) * 1000.0 / wall_ms : 0.0;
  const double p50 = PercentileMs(all_latencies, 50);
  const double p95 = PercentileMs(all_latencies, 95);
  const double p99 = PercentileMs(all_latencies, 99);

  std::printf(
      "loadgen: sessions=%d queries=%lld ok=%lld error=%lld timeout=%lld "
      "rejected=%lld\n"
      "         wall=%.1f ms  qps=%.1f  p50=%.2f ms  p95=%.2f ms  "
      "p99=%.2f ms\n"
      "         result_rows=%lld rows_produced=%lld\n",
      sessions, static_cast<long long>(attempted),
      static_cast<long long>(total.ok), static_cast<long long>(total.errors),
      static_cast<long long>(total.timeouts),
      static_cast<long long>(total.rejected), wall_ms, qps, p50, p95, p99,
      static_cast<long long>(total.result_rows),
      static_cast<long long>(total.rows_produced));
  if (plan_cache) {
    std::printf("         plan_cache hits=%lld misses=%lld hit_rate=%.1f%%\n",
                static_cast<long long>(cache_hits),
                static_cast<long long>(cache_misses), hit_rate);
  }

  if (!json_path.empty()) {
    std::FILE* file = std::fopen(json_path.c_str(), "w");
    if (file == nullptr) {
      std::fprintf(stderr, "--json: cannot open %s\n", json_path.c_str());
      return 1;
    }
    const std::string mode =
        prepared ? "loadgen_prepared"
                 : (plan_cache ? "loadgen_cache" : "loadgen_mix");
    std::string line = "{\"name\":";
    orq::AppendJsonString(mode + "/sessions:" + std::to_string(sessions) +
                              "/queries:" +
                              std::to_string(queries_per_session),
                          &line);
    char buf[96];
    std::snprintf(buf, sizeof buf, ",\"iterations\":%lld",
                  static_cast<long long>(attempted));
    line += buf;
    std::snprintf(buf, sizeof buf, ",\"wall_ms\":%.6g", wall_ms);
    line += buf;
    std::snprintf(buf, sizeof buf, ",\"threads\":%d",
                  server_options.engine.exec.num_threads);
    line += buf;
    std::snprintf(buf, sizeof buf, ",\"result_rows\":%lld",
                  static_cast<long long>(total.result_rows));
    line += buf;
    std::snprintf(buf, sizeof buf, ",\"rows_produced\":%lld",
                  static_cast<long long>(total.rows_produced));
    line += buf;
    std::snprintf(buf, sizeof buf, ",\"query_errors\":%lld",
                  static_cast<long long>(total.errors));
    line += buf;
    std::snprintf(buf, sizeof buf, ",\"timeouts\":%lld",
                  static_cast<long long>(total.timeouts));
    line += buf;
    std::snprintf(buf, sizeof buf, ",\"rejected\":%lld",
                  static_cast<long long>(total.rejected));
    line += buf;
    std::snprintf(buf, sizeof buf, ",\"qps\":%.6g", qps);
    line += buf;
    std::snprintf(buf, sizeof buf, ",\"p50_ms\":%.6g", p50);
    line += buf;
    std::snprintf(buf, sizeof buf, ",\"p95_ms\":%.6g", p95);
    line += buf;
    std::snprintf(buf, sizeof buf, ",\"p99_ms\":%.6g", p99);
    line += buf;
    if (plan_cache) {
      std::snprintf(buf, sizeof buf, ",\"cache_hits\":%lld",
                    static_cast<long long>(cache_hits));
      line += buf;
      std::snprintf(buf, sizeof buf, ",\"cache_misses\":%lld",
                    static_cast<long long>(cache_misses));
      line += buf;
      std::snprintf(buf, sizeof buf, ",\"hit_rate\":%.6g", hit_rate);
      line += buf;
    }
    line += ",\"error\":false}";
    std::fprintf(file, "%s\n", line.c_str());
    std::fclose(file);
  }

  if (min_hit_rate >= 0.0 && hit_rate < min_hit_rate) {
    std::fprintf(stderr,
                 "plan-cache hit rate %.1f%% is below the --min-hit-rate "
                 "bar of %.1f%%\n",
                 hit_rate, min_hit_rate);
    return 1;
  }
  return 0;
}
