// CI perf-regression gate: compares a fresh `bench_* --json` report against
// the checked-in baseline (bench/baselines/BENCH_*.json). Row counts must
// match exactly; wall time may regress up to the tolerance factor.
//
// Usage: bench_compare <baseline.jsonl> <current.jsonl> [--tolerance X]
//        bench_compare --speedup <report.jsonl> [--slow TAG] [--fast TAG]
//                      [--min-ratio X] [--min-pairs N]
//
// The --speedup mode gates mode-vs-mode ratios within ONE report: every
// benchmark whose name contains the slow tag (default "/batch/") is paired
// with its fast-tag twin (default "/columnar/"), and at least --min-pairs
// pairs (default 2) must reach --min-ratio (default 1.5x). This is how
// ci.sh holds the columnar engine to its speedup over row-batch execution.
//
// The ORQ_BENCH_TOLERANCE environment variable overrides the default
// tolerance (the flag wins over the environment). A tolerance <= 0 skips
// wall-time checks entirely (row-count gating only) — useful on shared CI
// machines with unbounded timing noise.
//
// Exit code 0 when the gate passes, 1 on any failure, 2 on usage or I/O
// errors (including unreadable baselines: a gate that cannot read its
// baseline must not go green).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/bench_gate.h"

namespace {

bool ReadFile(const char* path, std::string* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  orq::BenchGateOptions options;
  orq::SpeedupGateOptions speedup_options;
  if (const char* env = std::getenv("ORQ_BENCH_TOLERANCE");
      env != nullptr && env[0] != '\0') {
    options.wall_tolerance = std::atof(env);
  }
  bool speedup_mode = false;
  const char* baseline_path = nullptr;
  const char* current_path = nullptr;
  auto flag_value = [&](int* i) -> const char* {
    if (*i + 1 >= argc) {
      std::fprintf(stderr, "%s requires a value\n", argv[*i]);
      std::exit(2);
    }
    return argv[++*i];
  };
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tolerance") == 0) {
      options.wall_tolerance = std::atof(flag_value(&i));
    } else if (std::strcmp(argv[i], "--speedup") == 0) {
      speedup_mode = true;
    } else if (std::strcmp(argv[i], "--slow") == 0) {
      speedup_options.slow_tag = flag_value(&i);
    } else if (std::strcmp(argv[i], "--fast") == 0) {
      speedup_options.fast_tag = flag_value(&i);
    } else if (std::strcmp(argv[i], "--min-ratio") == 0) {
      speedup_options.min_ratio = std::atof(flag_value(&i));
    } else if (std::strcmp(argv[i], "--min-pairs") == 0) {
      speedup_options.min_pairs = std::atoi(flag_value(&i));
    } else if (baseline_path == nullptr) {
      baseline_path = argv[i];
    } else if (current_path == nullptr) {
      current_path = argv[i];
    } else {
      std::fprintf(stderr, "unexpected argument %s\n", argv[i]);
      return 2;
    }
  }

  if (speedup_mode) {
    if (baseline_path == nullptr || current_path != nullptr) {
      std::fprintf(stderr,
                   "usage: bench_compare --speedup <report.jsonl> "
                   "[--slow TAG] [--fast TAG] [--min-ratio X] "
                   "[--min-pairs N]\n");
      return 2;
    }
    std::string report_jsonl;
    if (!ReadFile(baseline_path, &report_jsonl)) {
      std::fprintf(stderr, "bench_compare: cannot open %s\n", baseline_path);
      return 2;
    }
    orq::Result<orq::BenchGateReport> report =
        orq::CheckSpeedupJson(report_jsonl, speedup_options);
    if (!report.ok()) {
      std::fprintf(stderr, "bench_compare: %s\n",
                   report.status().ToString().c_str());
      return 2;
    }
    std::printf("bench_compare: %s speedup %s/%s >= %.2fx on >=%d pairs\n%s",
                baseline_path, speedup_options.slow_tag.c_str(),
                speedup_options.fast_tag.c_str(), speedup_options.min_ratio,
                speedup_options.min_pairs, report->Summary().c_str());
    return report->ok() ? 0 : 1;
  }

  if (baseline_path == nullptr || current_path == nullptr) {
    std::fprintf(stderr,
                 "usage: bench_compare <baseline.jsonl> <current.jsonl> "
                 "[--tolerance X]\n");
    return 2;
  }

  std::string baseline;
  std::string current;
  if (!ReadFile(baseline_path, &baseline)) {
    std::fprintf(stderr, "bench_compare: cannot open %s\n", baseline_path);
    return 2;
  }
  if (!ReadFile(current_path, &current)) {
    std::fprintf(stderr, "bench_compare: cannot open %s\n", current_path);
    return 2;
  }

  orq::Result<orq::BenchGateReport> report =
      orq::CompareBenchJson(baseline, current, options);
  if (!report.ok()) {
    std::fprintf(stderr, "bench_compare: %s\n",
                 report.status().ToString().c_str());
    return 2;
  }
  std::printf("bench_compare: %s vs %s (tolerance %.2fx)\n%s", current_path,
              baseline_path, options.wall_tolerance,
              report->Summary().c_str());
  return report->ok() ? 0 : 1;
}
