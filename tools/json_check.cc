// Validates that every non-empty line of a file is a well-formed JSON
// document (JSON-lines). Backs the bench_smoke ctest: benchmarks append
// per-query stats records under ORQ_STATS_JSON, and this keeps that
// pipeline emitting parseable output.
//
//   $ json_check stats.jsonl
#include <cstdio>
#include <fstream>
#include <string>

#include "obs/json.h"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: json_check <file.jsonl>\n");
    return 2;
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "json_check: cannot open %s\n", argv[1]);
    return 2;
  }
  std::string line;
  int valid = 0;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    std::string error;
    if (!orq::ValidateJson(line, &error)) {
      std::fprintf(stderr, "json_check: %s:%d: %s\n", argv[1], lineno,
                   error.c_str());
      return 1;
    }
    ++valid;
  }
  if (valid == 0) {
    std::fprintf(stderr, "json_check: %s contains no JSON lines\n", argv[1]);
    return 1;
  }
  std::printf("json_check: %d JSON line(s) OK\n", valid);
  return 0;
}
